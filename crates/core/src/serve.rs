//! `gcatch serve` — the crash-only analysis daemon.
//!
//! A long-running process serving a JSON-lines request/response protocol
//! over a unix socket (`--socket PATH`) or stdin/stdout (`--stdio`).
//! Requests are flat JSON objects, one per line, each carrying a
//! client-supplied `id` that is echoed back on the response line:
//!
//! ```text
//! {"id":"r1","op":"check","module":"examples/figure1.go"}
//! {"id":"r1","ok":true,"op":"check","module":"examples/figure1.go","result":{...}}
//! ```
//!
//! Ops: `check`, `explain`, `fix-dry-run` (work requests executed by a
//! bounded worker pool), `status` and `shutdown` (answered inline).
//!
//! Robustness contract:
//!
//! * **Isolation.** Every work request runs under [`catch_isolated`] with
//!   its own [`Budget`] deadline (`--request-timeout-ms`, overridable per
//!   request via `timeout_ms`). Panics and expired deadlines become
//!   structured incident responses, never a dead connection or a dead
//!   daemon.
//! * **Admission control.** Outstanding work (queued + executing) is
//!   bounded by `workers + max_queue`; past that, requests are shed
//!   immediately with an `overloaded` response carrying a deterministic
//!   `retry_after_ms` hint. The bound counts *outstanding* work, so the
//!   shed decision for a given request sequence does not depend on how
//!   far the pool happens to have drained the queue.
//! * **Graceful drain.** SIGTERM/SIGINT (via [`signals`]) or a
//!   `shutdown` request stops accepting new work, finishes everything
//!   in flight, flushes, and returns — the CLI exits 0.
//! * **Crash-only.** Responses for work requests are cached keyed by
//!   `(op, content hash of module source, effective deadline)` — the
//!   deadline is in the key because a tight budget can shape result bytes
//!   through the degradation ladder, and a deadline-shaped response must
//!   never be replayed to an untimed request — and persisted through an
//!   append-only, fsync'd journal-style index. On startup the index is
//!   reloaded with torn/corrupt/stale entries dropped (exactly like
//!   `--resume`'s torn-tail healing) and compacted atomically. A
//!   `kill -9` mid-request therefore loses at most warmth: the restarted
//!   daemon serves responses byte-identical to a cold single-shot
//!   `gcatch check`, because a cached response is the byte-for-byte
//!   result of a pure function of `(op, source, config)`.
//!
//! Fault sites [`SITE_SERVE_ACCEPT`](crate::faults::SITE_SERVE_ACCEPT)
//! (contained connection-setup panic),
//! [`SITE_SERVE_REQUEST`](crate::faults::SITE_SERVE_REQUEST) (injected
//! request panic / slow request, keys `exec` and `delay`), and
//! [`SITE_SERVE_CACHE`](crate::faults::SITE_SERVE_CACHE) (a cache index
//! entry written deliberately corrupt) drive every failure path
//! deterministically in `(seed, site, request id)`.

use crate::diagnostics::escape_json;
use crate::events::{Event, EventBus, EventKind, Field};
use crate::faults::{self, FaultPlan, SITE_SERVE_ACCEPT, SITE_SERVE_CACHE, SITE_SERVE_REQUEST};
use crate::resilience::{catch_isolated, Budget, Incident, IncidentKind};
use crate::signals;
use crate::sweep::write_file_atomic;
use crate::telemetry::{Counter, Telemetry};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// The three request ops executed by the worker pool (as opposed to
/// `status`/`shutdown`, which are answered inline by the reader).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkKind {
    /// Full detection; `result` is the exact `gcatch check --json` report.
    Check,
    /// Human-readable provenance; `result` is a JSON string.
    Explain,
    /// Patch synthesis without writing; `result` summarizes the patches.
    FixDryRun,
}

impl WorkKind {
    /// Stable wire name (also the cache-key prefix).
    pub fn name(self) -> &'static str {
        match self {
            WorkKind::Check => "check",
            WorkKind::Explain => "explain",
            WorkKind::FixDryRun => "fix-dry-run",
        }
    }
}

/// A parsed request op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// A pooled work request.
    Work(WorkKind),
    /// Inline: report daemon counters and queue state.
    Status,
    /// Inline: acknowledge, then drain gracefully.
    Shutdown,
}

impl Op {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Op::Work(w) => w.name(),
            Op::Status => "status",
            Op::Shutdown => "shutdown",
        }
    }
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-supplied correlation id, echoed on the response.
    pub id: String,
    /// What to do.
    pub op: Op,
    /// Module path for work ops.
    pub module: Option<String>,
    /// Per-request deadline override in milliseconds.
    pub timeout_ms: Option<u64>,
}

/// The work-request executor the CLI supplies: `(op, module path, module
/// source, budget) -> raw JSON result value`. Runs inside
/// [`catch_isolated`] on a pool thread; a panic becomes an incident
/// response. The result must be a deterministic pure function of its
/// inputs (plus the run configuration) — the cache depends on it.
pub type ExecutorFn<'e> =
    dyn Fn(WorkKind, &str, &str, &Budget) -> Result<String, String> + Sync + 'e;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker-pool size.
    pub workers: usize,
    /// Admission bound: outstanding work past `workers + max_queue` is
    /// shed with an `overloaded` response.
    pub max_queue: usize,
    /// Default per-request deadline; `None` (the default) leaves requests
    /// unbounded, which is what keeps responses byte-identical to a cold
    /// `gcatch check`.
    pub request_timeout: Option<Duration>,
    /// Directory holding the persistent response cache; `None` keeps the
    /// cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Cache capacity in entries; the oldest insertion is evicted first.
    pub cache_capacity: usize,
    /// Fingerprint of everything that affects results (alias mode, solver
    /// flags, …). A persisted index written under a different fingerprint
    /// is discarded wholesale on load.
    pub config_fingerprint: String,
    /// Deterministic fault plan for the `serve.*` sites.
    pub plan: Option<Arc<FaultPlan>>,
    /// Warm per-module session store (`--max-sessions`); `None` disables
    /// incremental re-analysis. The CLI shares this store with its
    /// executor closure; the daemon itself only reads it for `status`.
    pub warm: Option<Arc<crate::warm::WarmSessions>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            max_queue: 64,
            request_timeout: None,
            cache_dir: None,
            cache_capacity: 512,
            config_fingerprint: "default".to_string(),
            plan: None,
            warm: None,
        }
    }
}

/// What a finished daemon run reports back to the CLI.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests received (every parsed line, control ops included).
    pub requests: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests answered with an incident response.
    pub failed: u64,
    /// Requests answered from the response cache.
    pub cache_hits: u64,
    /// Cache index entries dropped as torn/corrupt/stale on startup.
    pub cache_dropped: usize,
    /// Cache entries restored from the persisted index on startup.
    pub cache_warm: usize,
}

// ---------------------------------------------------------------------------
// Minimal flat-JSON parsing (requests are one-level objects of strings and
// integers; the repo is dependency-free by policy, so no serde).
// ---------------------------------------------------------------------------

/// Decodes a JSON string literal at the head of `s` (including the
/// quotes); returns the decoded text and the rest of the input.
fn json_unquote(s: &str) -> Option<(String, &str)> {
    let rest = s.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &rest[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            _ => out.push(c),
        }
    }
    None
}

#[derive(Debug)]
enum Val {
    Str(String),
    Num(u64),
}

fn parse_flat_object(s: &str) -> Result<Vec<(String, Val)>, String> {
    let rest = s
        .trim()
        .strip_prefix('{')
        .ok_or("request must be a JSON object")?;
    let mut rest = rest.trim_start();
    let mut fields = Vec::new();
    if let Some(r) = rest.strip_prefix('}') {
        return if r.trim().is_empty() {
            Ok(fields)
        } else {
            Err("trailing data after object".to_string())
        };
    }
    loop {
        let (key, r) = json_unquote(rest.trim_start()).ok_or("expected a string key")?;
        let r = r
            .trim_start()
            .strip_prefix(':')
            .ok_or("expected `:` after key")?;
        let r = r.trim_start();
        let (val, r) = if r.starts_with('"') {
            let (v, r) = json_unquote(r).ok_or("unterminated string value")?;
            (Val::Str(v), r)
        } else {
            let end = r.find(|c: char| !c.is_ascii_digit()).unwrap_or(r.len());
            if end == 0 {
                return Err(format!("unsupported value for `{key}`"));
            }
            let n = r[..end]
                .parse()
                .map_err(|e| format!("bad number for `{key}`: {e}"))?;
            (Val::Num(n), &r[end..])
        };
        fields.push((key, val));
        let r = r.trim_start();
        if let Some(r2) = r.strip_prefix(',') {
            rest = r2;
            continue;
        }
        return match r.strip_prefix('}') {
            Some(r2) if r2.trim().is_empty() => Ok(fields),
            Some(_) => Err("trailing data after object".to_string()),
            None => Err("expected `,` or `}`".to_string()),
        };
    }
}

/// Parses one request line. Field order is free; unknown or mistyped
/// fields are errors (a typo'd `"timeout_ms":"50"` must not silently
/// become an unbounded request).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut id = None;
    let mut op = None;
    let mut module = None;
    let mut timeout_ms = None;
    for (key, val) in parse_flat_object(line)? {
        match (key.as_str(), val) {
            ("id", Val::Str(s)) => id = Some(s),
            ("op", Val::Str(s)) => op = Some(s),
            ("module", Val::Str(s)) => module = Some(s),
            ("timeout_ms", Val::Num(n)) => timeout_ms = Some(n),
            (k, _) => return Err(format!("unknown or mistyped field `{k}`")),
        }
    }
    let id = id.ok_or("missing `id`")?;
    let op_name = op.ok_or("missing `op`")?;
    let op = match op_name.as_str() {
        "check" => Op::Work(WorkKind::Check),
        "explain" => Op::Work(WorkKind::Explain),
        "fix-dry-run" => Op::Work(WorkKind::FixDryRun),
        "status" => Op::Status,
        "shutdown" => Op::Shutdown,
        other => {
            return Err(format!(
                "unknown op `{other}`; expected check|explain|fix-dry-run|status|shutdown"
            ))
        }
    };
    if matches!(op, Op::Work(_)) && module.is_none() {
        return Err(format!("op `{op_name}` requires `module`"));
    }
    Ok(Request {
        id,
        op,
        module,
        timeout_ms,
    })
}

// ---------------------------------------------------------------------------
// Response rendering.
// ---------------------------------------------------------------------------

fn response_head(id: &str, ok: bool, op: &str, module: Option<&str>) -> String {
    let mut out = String::from("{\"id\":\"");
    escape_json(id, &mut out);
    out.push_str("\",\"ok\":");
    out.push_str(if ok { "true" } else { "false" });
    out.push_str(",\"op\":\"");
    escape_json(op, &mut out);
    out.push('"');
    if let Some(m) = module {
        out.push_str(",\"module\":\"");
        escape_json(m, &mut out);
        out.push('"');
    }
    out
}

fn ok_response(id: &str, op: &str, module: Option<&str>, result_raw: &str) -> String {
    let mut out = response_head(id, true, op, module);
    out.push_str(",\"result\":");
    out.push_str(result_raw);
    out.push('}');
    out
}

fn incident_response(id: &str, op: &str, module: Option<&str>, incident: &Incident) -> String {
    let mut out = response_head(id, false, op, module);
    out.push_str(",\"incident\":{\"kind\":\"");
    escape_json(incident.kind.label(), &mut out);
    out.push_str("\",\"name\":\"");
    escape_json(&incident.name, &mut out);
    out.push_str("\",\"message\":\"");
    escape_json(&incident.message, &mut out);
    out.push_str(&format!("\",\"rung\":{}}}}}", incident.rung));
    out
}

fn overloaded_response(
    id: &str,
    op: &str,
    module: Option<&str>,
    depth: usize,
    retry_ms: u64,
) -> String {
    let mut out = response_head(id, false, op, module);
    out.push_str(&format!(
        ",\"overloaded\":true,\"queue_depth\":{depth},\"retry_after_ms\":{retry_ms}}}"
    ));
    out
}

fn request_incident(id: &str, message: impl Into<String>) -> Incident {
    Incident {
        kind: IncidentKind::Request,
        name: id.to_string(),
        message: message.into(),
        rung: 0,
        flight: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// The persistent response cache.
// ---------------------------------------------------------------------------

const CACHE_INDEX: &str = "index.jsonl";

/// What [`ResponseCache::open`] found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheLoad {
    /// Entries restored intact.
    pub restored: usize,
    /// Lines dropped as torn, corrupt, or written under a different
    /// config fingerprint.
    pub dropped: usize,
}

/// Content-addressed response cache with a journal-style on-disk index.
///
/// Each insert appends one fsync'd line; the load path drops anything
/// unparseable (torn tail from a crash mid-append, injected corruption)
/// and compacts the surviving entries atomically, so the index is *always*
/// either absent, or a valid prefix-healed journal — never a parse error.
pub struct ResponseCache {
    index: Option<PathBuf>,
    header: String,
    entries: BTreeMap<String, CacheEntry>,
    order: VecDeque<String>,
    capacity: usize,
}

/// One cached response plus the module path it was first computed for
/// (advisory — kept so the persisted index stays human-debuggable across
/// compactions; the key alone decides hits).
struct CacheEntry {
    module: String,
    result: String,
}

impl ResponseCache {
    /// Opens (and self-heals) the cache under `dir`, or an in-memory
    /// cache when `dir` is `None`.
    pub fn open(
        dir: Option<&Path>,
        capacity: usize,
        fingerprint: &str,
    ) -> Result<(ResponseCache, CacheLoad), String> {
        let capacity = capacity.max(1);
        let mut header = String::from("{\"gcatch_serve_cache\":1,\"config\":\"");
        escape_json(fingerprint, &mut header);
        header.push_str("\"}");
        let mut cache = ResponseCache {
            index: None,
            header,
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            capacity,
        };
        let Some(dir) = dir else {
            return Ok((cache, CacheLoad::default()));
        };
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache dir `{}`: {e}", dir.display()))?;
        let index = dir.join(CACHE_INDEX);
        let mut load = CacheLoad::default();
        match std::fs::read_to_string(&index) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(format!(
                    "cannot read cache index `{}`: {e}",
                    index.display()
                ))
            }
            Ok(contents) => {
                let complete = contents.ends_with('\n');
                let lines: Vec<&str> = contents.lines().collect();
                if lines.first() != Some(&cache.header.as_str()) {
                    // Different fingerprint (or garbage where the header
                    // should be): the whole index is stale.
                    load.dropped = lines.len();
                } else {
                    for (i, line) in lines.iter().enumerate().skip(1) {
                        let torn_tail = i + 1 == lines.len() && !complete;
                        match (torn_tail, parse_cache_entry(line)) {
                            (false, Some((key, module, result))) => {
                                let entry = CacheEntry { module, result };
                                if cache.entries.insert(key.clone(), entry).is_none() {
                                    cache.order.push_back(key);
                                } else {
                                    cache.order.retain(|k| *k != key);
                                    cache.order.push_back(key);
                                }
                                load.restored += 1;
                            }
                            _ => load.dropped += 1,
                        }
                    }
                }
            }
        }
        while cache.order.len() > capacity {
            if let Some(old) = cache.order.pop_front() {
                cache.entries.remove(&old);
                load.restored -= 1;
                load.dropped += 1;
            }
        }
        cache.index = Some(index);
        // Compact: the rewritten index holds exactly the surviving
        // entries, atomically (tmp + fsync + rename + dir fsync).
        cache
            .rewrite()
            .map_err(|e| format!("cannot rewrite cache index: {e}"))?;
        Ok((cache, load))
    }

    /// Looks a response up by cache key.
    pub fn get(&self, key: &str) -> Option<&String> {
        self.entries.get(key).map(|e| &e.result)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn render_entry(key: &str, module: &str, result: &str) -> String {
        let mut line = String::from("{\"key\":\"");
        escape_json(key, &mut line);
        line.push_str("\",\"module\":\"");
        escape_json(module, &mut line);
        line.push_str("\",\"result\":");
        line.push_str(result);
        line.push('}');
        line
    }

    fn rewrite(&self) -> std::io::Result<()> {
        let Some(index) = &self.index else {
            return Ok(());
        };
        let mut contents = self.header.clone();
        contents.push('\n');
        for key in &self.order {
            if let Some(entry) = self.entries.get(key) {
                contents.push_str(&Self::render_entry(key, &entry.module, &entry.result));
                contents.push('\n');
            }
        }
        write_file_atomic(index, &contents)
    }

    /// Inserts a response, appending one fsync'd index line. With
    /// `corrupt` (the [`SITE_SERVE_CACHE`] injection) the persisted line
    /// is deliberately truncated — the in-memory entry stays correct, and
    /// the next startup drops the bad line and recomputes. Returns the
    /// number of evicted entries. Disk errors degrade the cache to
    /// memory-only for this entry (the response is already correct);
    /// the caller surfaces them — [`Server::execute`] warns once on
    /// stderr and emits an `incident` event per failed append.
    pub fn insert(
        &mut self,
        key: &str,
        module: &str,
        result: &str,
        corrupt: bool,
    ) -> std::io::Result<usize> {
        if self.entries.contains_key(key) {
            return Ok(0);
        }
        let mut io_result = Ok(());
        if let Some(index) = &self.index {
            let line = Self::render_entry(key, module, result);
            let persisted = if corrupt {
                // Keep the newline so later appends stay line-aligned;
                // the half-line itself can never parse back. The midpoint
                // may fall inside a multibyte character — back up to a
                // boundary so the slice cannot panic.
                let mut mid = line.len() / 2;
                while !line.is_char_boundary(mid) {
                    mid -= 1;
                }
                format!("{}\n", &line[..mid])
            } else {
                format!("{line}\n")
            };
            io_result = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(index)
                .and_then(|mut f| {
                    f.write_all(persisted.as_bytes())?;
                    f.sync_data()
                });
        }
        let entry = CacheEntry {
            module: module.to_string(),
            result: result.to_string(),
        };
        self.entries.insert(key.to_string(), entry);
        self.order.push_back(key.to_string());
        let mut evicted = 0;
        while self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
                evicted += 1;
            }
        }
        if evicted > 0 {
            // Keep the on-disk index bounded too.
            self.rewrite()?;
        }
        io_result.map(|()| evicted)
    }
}

fn parse_cache_entry(line: &str) -> Option<(String, String, String)> {
    let rest = line.strip_prefix("{\"key\":")?;
    let (key, rest) = json_unquote(rest)?;
    let rest = rest.strip_prefix(",\"module\":")?;
    let (module, rest) = json_unquote(rest)?;
    let rest = rest.strip_prefix(",\"result\":")?;
    let raw = rest.strip_suffix('}')?;
    if raw.is_empty() {
        return None;
    }
    Some((key, module, raw.to_string()))
}

/// The cache key of one work request: op name + FNV of the module source,
/// plus the effective deadline when one applies. The deadline is part of
/// the key because it shapes result bytes — the degradation ladder can
/// complete early with a degraded report under a tight budget, and
/// replaying that to an untimed request would break byte-identity with a
/// cold `gcatch check --json`. Untimed requests keep the bare
/// `op:hash` key, so persisted indexes from untimed runs stay valid.
pub fn cache_key(op: WorkKind, source: &str, timeout_ms: Option<u64>) -> String {
    let h = crate::faults::fnv(0xcbf2_9ce4_8422_2325, source.as_bytes());
    match timeout_ms {
        None => format!("{}:{h:016x}", op.name()),
        Some(ms) => format!("{}:{h:016x}:t{ms}", op.name()),
    }
}

// ---------------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------------

type Reply = (u64, String);

struct QueuedWork {
    seq: u64,
    arrival: u64,
    id: String,
    op: WorkKind,
    module: String,
    source: String,
    key: String,
    timeout_ms: Option<u64>,
    reply: Sender<Reply>,
}

#[derive(Default)]
struct QueueState {
    items: VecDeque<QueuedWork>,
    executing: usize,
    closed: bool,
}

struct Server<'a> {
    config: &'a ServeConfig,
    executor: &'a ExecutorFn<'a>,
    telemetry: &'a Telemetry,
    bus: Option<Arc<EventBus>>,
    queue: Mutex<QueueState>,
    cond: Condvar,
    /// Shared with the caller's line source (stdin pump, socket poll) so a
    /// `shutdown` request handled here is observable by an iterator that
    /// is blocked waiting for the next line.
    drain: Arc<AtomicBool>,
    cache: Mutex<ResponseCache>,
    cache_warned: AtomicBool,
    arrivals: AtomicU64,
    load: CacheLoad,
}

fn lock<'m, T>(m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<'a> Server<'a> {
    fn new(
        config: &'a ServeConfig,
        executor: &'a ExecutorFn<'a>,
        telemetry: &'a Telemetry,
        bus: Option<Arc<EventBus>>,
        drain: Arc<AtomicBool>,
    ) -> Result<Server<'a>, String> {
        let (cache, load) = ResponseCache::open(
            config.cache_dir.as_deref(),
            config.cache_capacity,
            &config.config_fingerprint,
        )?;
        Ok(Server {
            config,
            executor,
            telemetry,
            bus,
            queue: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
            drain,
            cache: Mutex::new(cache),
            cache_warned: AtomicBool::new(false),
            arrivals: AtomicU64::new(0),
            load,
        })
    }

    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst) || signals::shutdown_signaled()
    }

    /// The deadline a work request will actually run under, in ms: the
    /// per-request override, else the daemon default. Feeds the cache key,
    /// so it must match what [`Server::execute`] derives.
    fn effective_timeout_ms(&self, request_override: Option<u64>) -> Option<u64> {
        request_override.or_else(|| self.config.request_timeout.map(|t| t.as_millis() as u64))
    }

    fn begin_drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
        self.cond.notify_all();
    }

    fn close_queue(&self) {
        lock(&self.queue).closed = true;
        self.cond.notify_all();
    }

    fn emit(&self, kind: EventKind, arrival: u64, id: &str, fields: Vec<(&'static str, Field)>) {
        if let Some(bus) = &self.bus {
            bus.emit(Event {
                kind,
                group: arrival,
                job: Some(id.to_string()),
                attempt: None,
                channel: None,
                fields,
            });
        }
    }

    fn status_result(&self) -> String {
        let q = lock(&self.queue);
        let outstanding = q.items.len() + q.executing;
        drop(q);
        let cached = lock(&self.cache).len();
        let sessions = match &self.config.warm {
            Some(warm) => warm.status_json(),
            None => concat!(
                "{\"capacity\":0,\"resident\":0,\"hits\":0,",
                "\"misses\":0,\"evictions\":0,\"modules\":[]}"
            )
            .to_string(),
        };
        format!(
            "{{\"requests_total\":{},\"requests_shed\":{},\"requests_failed\":{},\
             \"cache_hits\":{},\"cache_evictions\":{},\"cache_entries\":{cached},\
             \"sessions\":{sessions},\
             \"outstanding\":{outstanding},\"workers\":{},\"draining\":{}}}",
            self.telemetry.get(Counter::RequestsTotal),
            self.telemetry.get(Counter::RequestsShed),
            self.telemetry.get(Counter::RequestsFailed),
            self.telemetry.get(Counter::CacheHits),
            self.telemetry.get(Counter::CacheEvictions),
            self.config.workers,
            self.draining(),
        )
    }

    /// Handles one request line from a connection; inline responses go
    /// straight to `reply`, work requests are enqueued (their response is
    /// sent by a pool worker under the same `seq`).
    fn handle_line(&self, line: &str, seq: u64, reply: &Sender<Reply>) {
        self.telemetry.add(Counter::RequestsTotal, 1);
        let arrival = self.arrivals.fetch_add(1, Ordering::Relaxed);
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(msg) => {
                self.telemetry.add(Counter::RequestsFailed, 1);
                self.emit(
                    EventKind::RequestFailed,
                    arrival,
                    "",
                    vec![("message", Field::Str(msg.clone()))],
                );
                let incident = request_incident("", format!("bad request: {msg}"));
                let _ = reply.send((seq, incident_response("", "invalid", None, &incident)));
                return;
            }
        };
        self.emit(
            EventKind::RequestReceived,
            arrival,
            &req.id,
            vec![("op", Field::Str(req.op.name().to_string()))],
        );
        match req.op {
            Op::Status => {
                let _ = reply.send((
                    seq,
                    ok_response(&req.id, "status", None, &self.status_result()),
                ));
            }
            Op::Shutdown => {
                let _ = reply.send((
                    seq,
                    ok_response(&req.id, "shutdown", None, "{\"draining\":true}"),
                ));
                self.emit(EventKind::RequestDone, arrival, &req.id, Vec::new());
                self.begin_drain();
            }
            Op::Work(op) => self.handle_work(req, op, arrival, seq, reply),
        }
    }

    fn handle_work(
        &self,
        req: Request,
        op: WorkKind,
        arrival: u64,
        seq: u64,
        reply: &Sender<Reply>,
    ) {
        let module = req.module.clone().unwrap_or_default();
        let op_name = op.name();
        if self.draining() {
            // Late arrival during drain: shed, with an honest hint.
            self.telemetry.add(Counter::RequestsShed, 1);
            self.emit(
                EventKind::RequestShed,
                arrival,
                &req.id,
                vec![("draining", Field::Bool(true))],
            );
            let _ = reply.send((
                seq,
                overloaded_response(&req.id, op_name, Some(&module), 0, 0),
            ));
            return;
        }
        let source = match std::fs::read_to_string(&module) {
            Ok(s) => s,
            Err(e) => {
                self.telemetry.add(Counter::RequestsFailed, 1);
                self.emit(
                    EventKind::RequestFailed,
                    arrival,
                    &req.id,
                    vec![("message", Field::Str(format!("cannot read module: {e}")))],
                );
                let incident = request_incident(&req.id, format!("cannot read `{module}`: {e}"));
                let _ = reply.send((
                    seq,
                    incident_response(&req.id, op_name, Some(&module), &incident),
                ));
                return;
            }
        };
        let key = cache_key(op, &source, self.effective_timeout_ms(req.timeout_ms));
        if let Some(result) = lock(&self.cache).get(&key).cloned() {
            self.telemetry.add(Counter::CacheHits, 1);
            self.emit(
                EventKind::CacheHit,
                arrival,
                &req.id,
                vec![("key", Field::Str(key))],
            );
            let _ = reply.send((seq, ok_response(&req.id, op_name, Some(&module), &result)));
            return;
        }
        let mut q = lock(&self.queue);
        let outstanding = q.items.len() + q.executing;
        if q.closed || outstanding >= self.config.workers + self.config.max_queue {
            drop(q);
            self.telemetry.add(Counter::RequestsShed, 1);
            self.emit(
                EventKind::RequestShed,
                arrival,
                &req.id,
                vec![("outstanding", Field::U64(outstanding as u64))],
            );
            // A deterministic function of the load the client just saw.
            let retry_ms = 50 * (outstanding as u64 + 1);
            let _ = reply.send((
                seq,
                overloaded_response(&req.id, op_name, Some(&module), outstanding, retry_ms),
            ));
            return;
        }
        q.items.push_back(QueuedWork {
            seq,
            arrival,
            id: req.id,
            op,
            module,
            source,
            key,
            timeout_ms: req.timeout_ms,
            reply: reply.clone(),
        });
        drop(q);
        self.cond.notify_one();
    }

    fn worker_loop(&self) {
        loop {
            let work = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(w) = q.items.pop_front() {
                        q.executing += 1;
                        break Some(w);
                    }
                    if q.closed {
                        break None;
                    }
                    q = self.cond.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            let Some(work) = work else { return };
            let response = self.execute(&work);
            let _ = work.reply.send((work.seq, response));
            lock(&self.queue).executing -= 1;
            self.cond.notify_all();
        }
    }

    /// Executes one work request on a pool thread: fault scope armed for
    /// the request id, panics contained, deadline checked, result cached.
    fn execute(&self, work: &QueuedWork) -> String {
        let timeout = work
            .timeout_ms
            .map(Duration::from_millis)
            .or(self.config.request_timeout);
        let budget = Budget::new(timeout, None);
        let body = || {
            let result = catch_isolated(|| {
                faults::maybe_delay(SITE_SERVE_REQUEST, "delay");
                faults::maybe_panic(SITE_SERVE_REQUEST, "exec");
                (self.executor)(work.op, &work.module, &work.source, &budget)
            });
            // The deadline verdict outranks the payload: a partial result
            // from an expired budget must not be cached or returned as
            // authoritative (it would differ from a cold `gcatch check`).
            if timeout.is_some() && budget.expired() {
                let ms = timeout.map(|t| t.as_millis() as u64).unwrap_or(0);
                return Err(format!("request deadline of {ms} ms expired"));
            }
            match result {
                Ok(Ok(raw)) => {
                    let corrupt = faults::should_inject(SITE_SERVE_CACHE, &work.key);
                    let inserted = {
                        let mut cache = lock(&self.cache);
                        cache.insert(&work.key, &work.module, &raw, corrupt)
                    };
                    let evicted = match inserted {
                        Ok(n) => n,
                        Err(e) => {
                            // The response itself is correct; only its
                            // persistence failed. Degrading to memory-only
                            // silently would hide a full disk — warn once
                            // and surface every failure as an incident
                            // event so telemetry consumers see it.
                            if !self.cache_warned.swap(true, Ordering::Relaxed) {
                                eprintln!(
                                    "gcatch: warning: response cache index append failed \
                                     (cache degrades to memory-only): {e}"
                                );
                            }
                            self.emit(
                                EventKind::IncidentRecorded,
                                work.arrival,
                                &work.id,
                                vec![
                                    ("kind", Field::Str("cache".to_string())),
                                    (
                                        "message",
                                        Field::Str(format!("cache index append failed: {e}")),
                                    ),
                                ],
                            );
                            0
                        }
                    };
                    if evicted > 0 {
                        self.telemetry.add(Counter::CacheEvictions, evicted as u64);
                        self.emit(
                            EventKind::CacheEvicted,
                            work.arrival,
                            &work.id,
                            vec![("evicted", Field::U64(evicted as u64))],
                        );
                    }
                    Ok(raw)
                }
                Ok(Err(e)) => Err(e),
                Err(panic_msg) => Err(panic_msg),
            }
        };
        let outcome = match &self.config.plan {
            Some(plan) => faults::with_scope(plan.clone(), &work.id, 1, body),
            None => body(),
        };
        match outcome {
            Ok(raw) => {
                self.emit(EventKind::RequestDone, work.arrival, &work.id, Vec::new());
                ok_response(&work.id, work.op.name(), Some(&work.module), &raw)
            }
            Err(message) => {
                self.telemetry.add(Counter::RequestsFailed, 1);
                self.emit(
                    EventKind::RequestFailed,
                    work.arrival,
                    &work.id,
                    vec![("message", Field::Str(message.clone()))],
                );
                let incident = request_incident(&work.id, message);
                incident_response(&work.id, work.op.name(), Some(&work.module), &incident)
            }
        }
    }

    /// Reads request lines from one connection until EOF (or until the
    /// line source observes the drain), tagging each with a per-connection
    /// sequence number so the writer can reorder responses into arrival
    /// order regardless of pool scheduling.
    fn reader_loop(&self, lines: impl Iterator<Item = String>, reply: Sender<Reply>) {
        let mut seq = 0u64;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            self.handle_line(&line, seq, &reply);
            seq += 1;
        }
    }

    /// The contained `serve.accept` probe: returns the incident response
    /// line to send (and drop the connection) when the injected
    /// connection-setup panic fires.
    fn accept_fault(&self, conn_id: &str) -> Option<String> {
        let plan = self.config.plan.clone()?;
        let caught = faults::with_scope(plan, conn_id, 1, || {
            catch_isolated(|| faults::maybe_panic(SITE_SERVE_ACCEPT, "accept"))
        });
        let message = caught.err()?;
        self.telemetry.add(Counter::RequestsFailed, 1);
        let arrival = self.arrivals.fetch_add(1, Ordering::Relaxed);
        self.emit(
            EventKind::RequestFailed,
            arrival,
            conn_id,
            vec![("message", Field::Str(message.clone()))],
        );
        let incident = request_incident(conn_id, message);
        Some(incident_response(conn_id, "accept", None, &incident))
    }

    fn summary(&self) -> ServeSummary {
        ServeSummary {
            requests: self.telemetry.get(Counter::RequestsTotal),
            shed: self.telemetry.get(Counter::RequestsShed),
            failed: self.telemetry.get(Counter::RequestsFailed),
            cache_hits: self.telemetry.get(Counter::CacheHits),
            cache_dropped: self.load.dropped,
            cache_warm: self.load.restored,
        }
    }
}

/// Writes `(seq, line)` replies in strict `seq` order, buffering any that
/// complete early. Write failures mean the client went away — the writer
/// just stops; work already queued for this connection still completes
/// (its sends go nowhere) and the daemon is unaffected.
fn write_ordered(out: &mut (dyn Write + Send), rx: Receiver<Reply>) {
    let mut next = 0u64;
    let mut pending: BTreeMap<u64, String> = BTreeMap::new();
    for (seq, line) in rx {
        pending.insert(seq, line);
        while let Some(line) = pending.remove(&next) {
            if out
                .write_all(line.as_bytes())
                .and_then(|()| out.write_all(b"\n"))
                .and_then(|()| out.flush())
                .is_err()
            {
                return;
            }
            next += 1;
        }
    }
}

/// Serves a fixed line source to a single writer — the engine behind
/// `--stdio` and the in-crate tests. Returns after the source is
/// exhausted (EOF or drain) and every in-flight request has answered.
pub fn serve_lines(
    config: &ServeConfig,
    executor: &ExecutorFn<'_>,
    telemetry: &Telemetry,
    bus: Option<Arc<EventBus>>,
    lines: impl Iterator<Item = String>,
    out: &mut (dyn Write + Send),
) -> Result<ServeSummary, String> {
    serve_lines_shared(
        config,
        executor,
        telemetry,
        bus,
        lines,
        out,
        Arc::new(AtomicBool::new(false)),
    )
}

/// Like [`serve_lines`], but the server's drain flag *is* the
/// caller-supplied `AtomicBool`: a `shutdown` request handled by the
/// server flips the very flag the external line source (stdin pump)
/// polls, so an iterator blocked waiting for the next line still
/// observes the drain and terminates — there is no mirror to race.
fn serve_lines_shared(
    config: &ServeConfig,
    executor: &ExecutorFn<'_>,
    telemetry: &Telemetry,
    bus: Option<Arc<EventBus>>,
    lines: impl Iterator<Item = String>,
    out: &mut (dyn Write + Send),
    drain: Arc<AtomicBool>,
) -> Result<ServeSummary, String> {
    let server = Server::new(config, executor, telemetry, bus, drain)?;
    if let Some(line) = server.accept_fault("conn-0") {
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
        let _ = out.flush();
        return Ok(server.summary());
    }
    std::thread::scope(|s| {
        for _ in 0..config.workers.max(1) {
            s.spawn(|| server.worker_loop());
        }
        let (tx, rx) = mpsc::channel::<Reply>();
        let writer = s.spawn(move || write_ordered(out, rx));
        server.reader_loop(lines, tx);
        // Reader done: no new work can arrive. Let the pool drain what is
        // queued, then release the workers and the writer.
        server.close_queue();
        let _ = writer.join();
    });
    Ok(server.summary())
}

/// An iterator over stdin lines that also honors the drain flag: stdin is
/// pumped by a detached thread (a blocked `read_line` cannot be
/// interrupted), and `next` polls the drain between lines so a SIGTERM
/// with an idle stdin still winds the daemon down.
struct DrainingLines<'a> {
    rx: Receiver<String>,
    drain: &'a dyn Fn() -> bool,
}

impl Iterator for DrainingLines<'_> {
    type Item = String;
    fn next(&mut self) -> Option<String> {
        loop {
            if (self.drain)() {
                return None;
            }
            match self.rx.recv_timeout(Duration::from_millis(25)) {
                Ok(line) => return Some(line),
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => return None,
            }
        }
    }
}

/// Runs the daemon over stdin/stdout until EOF, SIGTERM/SIGINT, or a
/// `shutdown` request; finishes in flight work before returning.
pub fn serve_stdio(
    config: &ServeConfig,
    executor: &ExecutorFn<'_>,
    telemetry: &Telemetry,
    bus: Option<Arc<EventBus>>,
) -> Result<ServeSummary, String> {
    signals::install_shutdown_handler();
    let drain_flag = Arc::new(AtomicBool::new(false));
    let (line_tx, line_rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in std::io::stdin().lock().lines() {
            let Ok(line) = line else { break };
            if line_tx.send(line).is_err() {
                break;
            }
        }
    });
    // The server drains through the SAME flag the line iterator polls:
    // a `shutdown` request flips it from inside `handle_line`, so the
    // iterator wakes within one poll interval even while stdin stays
    // open and idle — the daemon never waits for another line to notice.
    let flag = drain_flag.clone();
    let drain = move || flag.load(Ordering::SeqCst) || signals::shutdown_signaled();
    let lines = DrainingLines {
        rx: line_rx,
        drain: &drain,
    };
    let mut stdout = std::io::stdout();
    serve_lines_shared(
        config,
        executor,
        telemetry,
        bus,
        lines,
        &mut stdout,
        drain_flag,
    )
}

/// Binds `socket_path` and serves connections until SIGTERM/SIGINT or a
/// `shutdown` request, then drains gracefully: stop accepting, half-close
/// every connection's read side, finish in-flight work, remove the
/// socket file.
pub fn serve_socket(
    socket_path: &Path,
    config: &ServeConfig,
    executor: &ExecutorFn<'_>,
    telemetry: &Telemetry,
    bus: Option<Arc<EventBus>>,
) -> Result<ServeSummary, String> {
    signals::install_shutdown_handler();
    // A stale socket file from a `kill -9` would make bind fail; crash-only
    // startup removes it (connections to the dead daemon are gone anyway).
    match std::fs::remove_file(socket_path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            return Err(format!(
                "cannot remove stale socket `{}`: {e}",
                socket_path.display()
            ))
        }
    }
    let listener = UnixListener::bind(socket_path)
        .map_err(|e| format!("cannot bind `{}`: {e}", socket_path.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure listener: {e}"))?;
    let server = Server::new(
        config,
        executor,
        telemetry,
        bus,
        Arc::new(AtomicBool::new(false)),
    )?;
    // Live connections only: each writer removes its own entry when the
    // connection finishes, so a long-running daemon holds fds for open
    // connections, not for every connection it ever accepted.
    let streams: Mutex<BTreeMap<u64, UnixStream>> = Mutex::new(BTreeMap::new());
    std::thread::scope(|s| {
        for _ in 0..config.workers.max(1) {
            s.spawn(|| server.worker_loop());
        }
        let mut readers = Vec::new();
        let mut conn = 0u64;
        let mut last_accept_err: Option<std::io::ErrorKind> = None;
        while !server.draining() {
            // Finished connections joined lazily here; the scope joins
            // whatever is still running at drain.
            readers.retain(|r: &std::thread::ScopedJoinHandle<'_, ()>| !r.is_finished());
            match listener.accept() {
                Ok((stream, _addr)) => {
                    last_accept_err = None;
                    conn += 1;
                    let conn_id = format!("conn-{conn}");
                    if let Some(line) = server.accept_fault(&conn_id) {
                        let mut stream = stream;
                        let _ = stream.write_all(line.as_bytes());
                        let _ = stream.write_all(b"\n");
                        continue;
                    }
                    let Ok(read_half) = stream.try_clone() else {
                        continue;
                    };
                    if let Ok(clone) = stream.try_clone() {
                        lock(&streams).insert(conn, clone);
                    }
                    let (tx, rx) = mpsc::channel::<Reply>();
                    let server = &server;
                    let streams = &streams;
                    s.spawn(move || {
                        let mut write_half = stream;
                        write_ordered(&mut write_half, rx);
                        // The drain registry holds a dup of this socket, so
                        // dropping `write_half` alone would never EOF a
                        // client reading to connection close — half-close
                        // explicitly once every response is out.
                        let _ = write_half.shutdown(std::net::Shutdown::Write);
                        // Connection done: release its registry fd.
                        lock(streams).remove(&conn);
                    });
                    readers.push(s.spawn(move || {
                        let lines = BufReader::new(read_half).lines().map_while(Result::ok);
                        server.reader_loop(lines, tx);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(e) => {
                    // Transient accept failures (EMFILE under fd pressure,
                    // ECONNABORTED, EINTR) shed that one connection; a
                    // long-running daemon must not die over them. Warn once
                    // per error kind to avoid log storms, then keep
                    // accepting — drain remains the only exit.
                    if last_accept_err != Some(e.kind()) {
                        last_accept_err = Some(e.kind());
                        eprintln!("gcatch: warning: accept failed (will keep serving): {e}");
                    }
                    std::thread::sleep(Duration::from_millis(15));
                }
            }
        }
        // Drain: half-close every live connection so blocked readers see
        // EOF, join them, then let the pool finish what is queued.
        for stream in lock(&streams).values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        for reader in readers {
            let _ = reader.join();
        }
        server.close_queue();
    });
    let _ = std::fs::remove_file(socket_path);
    Ok(server.summary())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gcatch-serve-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_request_accepts_any_field_order() {
        let a = parse_request(r#"{"id":"r1","op":"check","module":"m.go"}"#).unwrap();
        let b = parse_request(r#"{"module":"m.go","op":"check","id":"r1"}"#).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.op, Op::Work(WorkKind::Check));
        let c = parse_request(r#"{"id":"r2","op":"explain","module":"m.go","timeout_ms":250}"#)
            .unwrap();
        assert_eq!(c.timeout_ms, Some(250));
        let d = parse_request(r#"{"id":"s","op":"status"}"#).unwrap();
        assert_eq!(d.op, Op::Status);
        assert_eq!(d.module, None);
    }

    #[test]
    fn parse_request_rejects_malformed_lines() {
        assert!(parse_request("").is_err());
        assert!(parse_request("not json").is_err());
        assert!(
            parse_request(r#"{"op":"check","module":"m.go"}"#).is_err(),
            "missing id"
        );
        assert!(
            parse_request(r#"{"id":"r","op":"fly"}"#).is_err(),
            "unknown op"
        );
        assert!(
            parse_request(r#"{"id":"r","op":"check"}"#).is_err(),
            "missing module"
        );
        assert!(
            parse_request(r#"{"id":"r","op":"status","bogus":"x"}"#).is_err(),
            "unknown field"
        );
        assert!(
            parse_request(r#"{"id":"r","op":"check","module":"m","timeout_ms":"50"}"#).is_err(),
            "mistyped timeout"
        );
        assert!(parse_request(r#"{"id":"r","op":"status"} trailing"#).is_err());
    }

    #[test]
    fn json_unquote_handles_escapes() {
        let (s, rest) = json_unquote(r#""a\"b\\c\nA" tail"#).unwrap();
        assert_eq!(s, "a\"b\\c\nA");
        assert_eq!(rest, " tail");
        assert!(json_unquote("\"unterminated").is_none());
        assert!(json_unquote("no quote").is_none());
    }

    #[test]
    fn cache_round_trips_and_heals_corruption() {
        let dir = scratch("cache");
        {
            let (mut cache, load) = ResponseCache::open(Some(&dir), 8, "fp1").unwrap();
            assert_eq!(load, CacheLoad::default());
            cache
                .insert("check:aaaa", "m1.go", "{\"bugs\":1}", false)
                .unwrap();
            cache
                .insert("check:bbbb", "m2.go", "{\"bugs\":0}", false)
                .unwrap();
            // Injected corruption: persisted torn, in-memory intact.
            cache
                .insert("check:cccc", "m3.go", "{\"bugs\":2}", true)
                .unwrap();
            assert_eq!(cache.len(), 3);
        }
        // Simulate a crash mid-append: torn final line.
        let index = dir.join(CACHE_INDEX);
        let mut contents = std::fs::read_to_string(&index).unwrap();
        contents.push_str("{\"key\":\"check:dddd\",\"mod");
        std::fs::write(&index, &contents).unwrap();

        let (cache, load) = ResponseCache::open(Some(&dir), 8, "fp1").unwrap();
        assert_eq!(load.restored, 2, "intact entries survive");
        assert_eq!(load.dropped, 2, "corrupt + torn entries dropped");
        assert_eq!(cache.get("check:aaaa").unwrap(), "{\"bugs\":1}");
        assert_eq!(cache.get("check:bbbb").unwrap(), "{\"bugs\":0}");
        assert!(cache.get("check:cccc").is_none());

        // The compacted index reloads cleanly byte-for-byte.
        let first = std::fs::read_to_string(&index).unwrap();
        let (_, load2) = ResponseCache::open(Some(&dir), 8, "fp1").unwrap();
        assert_eq!(load2.dropped, 0);
        assert_eq!(load2.restored, 2);
        assert_eq!(first, std::fs::read_to_string(&index).unwrap());

        // A different config fingerprint discards everything.
        let (cache, load3) = ResponseCache::open(Some(&dir), 8, "fp2").unwrap();
        assert!(cache.is_empty());
        assert_eq!(load3.restored, 0);
        assert!(load3.dropped >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_injection_truncates_at_a_char_boundary() {
        let dir = scratch("utf8");
        let (mut cache, _) = ResponseCache::open(Some(&dir), 8, "fp").unwrap();
        // Multibyte result text: growing a run of 2-byte characters one
        // character at a time moves the line midpoint by one byte per
        // step, so consecutive lengths are guaranteed to put the midpoint
        // inside a character at least once — the truncation must back up
        // to a boundary instead of panicking.
        // The run must dominate the line so the midpoint lands inside it:
        // the fixed prefix (key + module + field syntax) is 74 bytes, so
        // an 80+ byte run puts the midpoint in the run, and stepping the
        // length makes its run-relative offset hit both parities.
        for i in 0..4 {
            let key = format!("check:{i:016x}");
            let result = format!("{{\"text\":\"{}\"}}", "é".repeat(40 + i));
            cache.insert(&key, "mödülé.go", &result, true).unwrap();
        }
        assert_eq!(cache.len(), 4, "in-memory entries stay intact");
        // Every persisted line was torn: the reload drops them all.
        let (reloaded, load) = ResponseCache::open(Some(&dir), 8, "fp").unwrap();
        assert!(reloaded.is_empty());
        assert_eq!(load.dropped, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_key_separates_deadlines_from_untimed_requests() {
        let src = "package m\n";
        let untimed = cache_key(WorkKind::Check, src, None);
        let timed = cache_key(WorkKind::Check, src, Some(50));
        assert_ne!(untimed, timed, "a deadline shapes result bytes");
        assert_ne!(timed, cache_key(WorkKind::Check, src, Some(51)));
        assert!(timed.starts_with(&untimed), "untimed key format unchanged");
    }

    #[test]
    fn timed_requests_never_replay_untimed_cache_entries() {
        crate::signals::reset_for_tests();
        let dir = scratch("timedkey");
        let m = module_file(&dir, "m.go", "package m\n");
        let config = ServeConfig {
            workers: 1,
            cache_dir: Some(dir.join("cache")),
            ..ServeConfig::default()
        };
        // Untimed first: populates the bare-key entry.
        let (lines, summary) = run(
            &config,
            vec![format!(r#"{{"id":"r1","op":"check","module":"{m}"}}"#)],
        );
        assert!(lines[0].contains(r#""ok":true"#), "{}", lines[0]);
        assert_eq!(summary.cache_hits, 0);
        // Same module under a deadline, on a warm restart: must be
        // computed fresh, not served from the untimed entry.
        let timed = format!(r#"{{"id":"r2","op":"check","module":"{m}","timeout_ms":5000}}"#);
        let (lines, summary) = run(&config, vec![timed.clone()]);
        assert!(lines[0].contains(r#""ok":true"#), "{}", lines[0]);
        assert_eq!(summary.cache_warm, 1, "untimed entry restored");
        assert_eq!(summary.cache_hits, 0, "a deadline never replays untimed");
        // An identical timed request does hit the timed entry.
        let (_, summary) = run(&config, vec![timed]);
        assert_eq!(summary.cache_warm, 2);
        assert_eq!(summary.cache_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_evicts_oldest_past_capacity() {
        let dir = scratch("evict");
        let (mut cache, _) = ResponseCache::open(Some(&dir), 2, "fp").unwrap();
        assert_eq!(cache.insert("k1", "m", "1", false).unwrap(), 0);
        assert_eq!(cache.insert("k2", "m", "2", false).unwrap(), 0);
        assert_eq!(
            cache.insert("k3", "m", "3", false).unwrap(),
            1,
            "k1 evicted"
        );
        assert!(cache.get("k1").is_none());
        assert!(cache.get("k2").is_some() && cache.get("k3").is_some());
        // Eviction compacts the on-disk index too.
        let (reloaded, load) = ResponseCache::open(Some(&dir), 2, "fp").unwrap();
        assert_eq!(load.restored, 2);
        assert!(reloaded.get("k1").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn module_file(dir: &Path, name: &str, body: &str) -> String {
        let path = dir.join(name);
        std::fs::write(&path, body).unwrap();
        path.to_string_lossy().into_owned()
    }

    /// An executor that answers instantly, panics on modules containing
    /// "boom", and sleeps on modules containing "slow".
    fn stub_executor() -> Box<ExecutorFn<'static>> {
        Box::new(|op, module, source, _budget| {
            if source.contains("boom") {
                panic!("stub exploded on {module}");
            }
            if source.contains("slow") {
                std::thread::sleep(Duration::from_millis(300));
            }
            Ok(format!(
                "{{\"op\":\"{}\",\"len\":{}}}",
                op.name(),
                source.len()
            ))
        })
    }

    fn run(config: &ServeConfig, lines: Vec<String>) -> (Vec<String>, ServeSummary) {
        let telemetry = Telemetry::new();
        let executor = stub_executor();
        let mut out: Vec<u8> = Vec::new();
        let summary = serve_lines(
            config,
            &*executor,
            &telemetry,
            None,
            lines.into_iter(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(str::to_string).collect(), summary)
    }

    #[test]
    fn responses_echo_ids_in_request_order() {
        crate::signals::reset_for_tests();
        let dir = scratch("order");
        let m1 = module_file(&dir, "a.go", "package a\n");
        let m2 = module_file(&dir, "b.go", "package b // longer\n");
        let config = ServeConfig::default();
        let (lines, summary) = run(
            &config,
            vec![
                format!(r#"{{"id":"r1","op":"check","module":"{m1}"}}"#),
                format!(r#"{{"id":"r2","op":"explain","module":"{m2}"}}"#),
                r#"{"id":"r3","op":"status"}"#.to_string(),
            ],
        );
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].starts_with(r#"{"id":"r1","ok":true,"op":"check""#),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with(r#"{"id":"r2","ok":true,"op":"explain""#),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains(r#""op":"status""#), "{}", lines[2]);
        assert!(lines[2].contains(r#""requests_total":"#));
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.failed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panic_is_contained_and_later_requests_still_answer() {
        crate::signals::reset_for_tests();
        let dir = scratch("panic");
        let bad = module_file(&dir, "bad.go", "package bad // boom\n");
        let good = module_file(&dir, "good.go", "package good\n");
        let config = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let (lines, summary) = run(
            &config,
            vec![
                format!(r#"{{"id":"r1","op":"check","module":"{bad}"}}"#),
                format!(r#"{{"id":"r2","op":"check","module":"{good}"}}"#),
            ],
        );
        assert!(lines[0].contains(r#""ok":false"#), "{}", lines[0]);
        assert!(lines[0].contains("stub exploded"), "{}", lines[0]);
        assert!(lines[0].contains(r#""kind":"request""#), "{}", lines[0]);
        assert!(lines[1].contains(r#""ok":true"#), "{}", lines[1]);
        assert_eq!(summary.failed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_identical_request_is_a_cache_hit_with_identical_bytes() {
        crate::signals::reset_for_tests();
        let dir = scratch("hit");
        let m = module_file(&dir, "m.go", "package m\n");
        let config = ServeConfig {
            cache_dir: Some(dir.join("cache")),
            ..ServeConfig::default()
        };
        let req = format!(r#"{{"id":"r1","op":"check","module":"{m}"}}"#);
        let (cold, summary) = run(&config, vec![req.clone()]);
        assert_eq!(summary.cache_hits, 0);
        assert_eq!(summary.cache_warm, 0);
        // A fresh daemon on the same cache dir starts warm and answers
        // from the cache with the exact bytes the cold daemon computed.
        let (warm, summary2) = run(&config, vec![req]);
        assert_eq!(summary2.cache_warm, 1);
        assert_eq!(summary2.cache_hits, 1);
        assert_eq!(cold, warm, "warm response is byte-identical to cold");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_expiry_is_a_deterministic_incident() {
        crate::signals::reset_for_tests();
        let dir = scratch("deadline");
        let slow = module_file(&dir, "slow.go", "package slow\n");
        let config = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let req = format!(r#"{{"id":"r1","op":"check","module":"{slow}","timeout_ms":20}}"#);
        let (lines, summary) = run(&config, vec![req]);
        assert!(
            lines[0].contains("request deadline of 20 ms expired"),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains(r#""ok":false"#));
        assert_eq!(summary.failed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outstanding_work_past_the_bound_is_shed_deterministically() {
        crate::signals::reset_for_tests();
        let dir = scratch("shed");
        let s1 = module_file(&dir, "s1-slow.go", "package s1 // slow\n");
        let s2 = module_file(&dir, "s2-slow.go", "package s2 // slow\n");
        let s3 = module_file(&dir, "s3-slow.go", "package s3 // slow\n");
        let config = ServeConfig {
            workers: 1,
            max_queue: 1,
            ..ServeConfig::default()
        };
        // Bound = workers + max_queue = 2: r1 and r2 admitted, r3 shed —
        // regardless of how quickly the pool dequeues r1.
        let lines_in = vec![
            format!(r#"{{"id":"r1","op":"check","module":"{s1}"}}"#),
            format!(r#"{{"id":"r2","op":"check","module":"{s2}"}}"#),
            format!(r#"{{"id":"r3","op":"check","module":"{s3}"}}"#),
        ];
        let (first, summary) = run(&config, lines_in.clone());
        assert!(first[2].contains(r#""overloaded":true"#), "{}", first[2]);
        assert!(first[2].contains("retry_after_ms"), "{}", first[2]);
        assert!(first[0].contains(r#""ok":true"#));
        assert!(first[1].contains(r#""ok":true"#));
        assert_eq!(summary.shed, 1);
        // Deterministic: the same request sequence sheds the same request
        // with the same response bytes.
        let (second, _) = run(&config, lines_in);
        assert_eq!(first[2], second[2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_request_drains_and_sheds_late_arrivals() {
        crate::signals::reset_for_tests();
        let dir = scratch("shutdown");
        let m = module_file(&dir, "m.go", "package m\n");
        let config = ServeConfig::default();
        let (lines, _) = run(
            &config,
            vec![
                r#"{"id":"q","op":"shutdown"}"#.to_string(),
                format!(r#"{{"id":"late","op":"check","module":"{m}"}}"#),
            ],
        );
        assert!(lines[0].contains(r#""draining":true"#), "{}", lines[0]);
        // The work request arriving after the shutdown ack is shed, not
        // silently dropped: the client still gets an answer per line.
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains(r#""overloaded":true"#), "{}", lines[1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_are_deterministic_per_request_id() {
        crate::signals::reset_for_tests();
        let dir = scratch("faults");
        // One module per request: identical sources share a cache key, and
        // a response served from the cache never reaches the fault site,
        // which would make the injection pattern depend on completion
        // timing rather than on (seed, site, request id).
        let modules: Vec<String> = (0..8)
            .map(|i| module_file(&dir, &format!("m{i}.go"), &format!("package m{i}\n")))
            .collect();
        let plan = Arc::new(FaultPlan::new(0.5, 11).with_sites([SITE_SERVE_REQUEST]));
        let config = ServeConfig {
            workers: 1,
            plan: Some(plan),
            ..ServeConfig::default()
        };
        let lines_in: Vec<String> = (0..8)
            .map(|i| format!(r#"{{"id":"r{i}","op":"check","module":"{}"}}"#, modules[i]))
            .collect();
        let (first, summary) = run(&config, lines_in.clone());
        let (second, _) = run(&config, lines_in);
        assert_eq!(first, second, "same seed, same faults, same bytes");
        assert!(summary.failed > 0, "rate 0.5 over 8 requests must fire");
        assert!(
            first.iter().any(|l| l.contains("injected fault")),
            "incident responses carry the injection marker"
        );
        assert!(
            first.iter().any(|l| l.contains(r#""ok":true"#)),
            "rate 0.5 must also let some requests through"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn accept_fault_is_contained_into_a_response_line() {
        crate::signals::reset_for_tests();
        let plan = Arc::new(FaultPlan::new(1.0, 1).with_sites([SITE_SERVE_ACCEPT]));
        let config = ServeConfig {
            plan: Some(plan),
            ..ServeConfig::default()
        };
        let (lines, _) = run(&config, vec![r#"{"id":"r1","op":"status"}"#.to_string()]);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains(r#""op":"accept""#), "{}", lines[0]);
        assert!(lines[0].contains("injected fault"), "{}", lines[0]);
    }

    #[test]
    fn unparseable_lines_get_an_incident_response() {
        crate::signals::reset_for_tests();
        let (lines, summary) = run(
            &ServeConfig::default(),
            vec!["this is not json".to_string()],
        );
        assert!(lines[0].contains(r#""ok":false"#), "{}", lines[0]);
        assert!(lines[0].contains("bad request"), "{}", lines[0]);
        assert_eq!(summary.failed, 1);
    }
}
