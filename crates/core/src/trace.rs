//! Hierarchical span tracing, log-bucketed histograms, and trace export.
//!
//! This module is the observability substrate layered on top of
//! [`Telemetry`](crate::telemetry::Telemetry): where telemetry answers "how
//! much, in total", tracing answers "which channel, which path enumeration,
//! which solver query". A [`Tracer`] lives on the
//! [`AnalysisSession`](crate::session::AnalysisSession); each worker thread
//! opens a [`Lane`] (a thread-confined event buffer, merged into the tracer
//! when the lane drops — no lock is held while recording), and the pipeline
//! records nested spans:
//!
//! ```text
//! session
//! ├── analysis                     (points-to / call graph / primitives)
//! ├── disentangle                  (dependency graph + scopes)
//! └── checker:bmoc
//!     └── bmoc_channel{chan}       (one per channel, on its worker's lane)
//!         ├── build_combos
//!         │   └── enumerate_paths
//!         └── solve{group}
//!             └── dpll             (steps/decisions/conflicts attributes)
//! ```
//!
//! plus point events (`branch_pruned`, `report_emitted`, `dedup_dropped`) at
//! [`TraceLevel::Full`]. [`TraceSnapshot::render_chrome`] exports the whole
//! run in Chrome trace-event format (loadable in `chrome://tracing` or
//! Perfetto) with one lane per BMOC worker; `gcatch check --trace out.json`
//! writes it. Tracing at [`TraceLevel::Off`] records nothing and costs one
//! branch per call site, so the detection pipeline stays untouched when
//! observability is not requested. Because lanes only buffer locally and the
//! diagnostic-facing data (provenance, histograms of deterministic counts)
//! is merged in channel order, `--jobs N` stays bit-identical in diagnostic
//! output for every `N`.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- levels

/// How much the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Record nothing (the default; near-zero overhead).
    #[default]
    Off,
    /// Record hierarchical spans only.
    Spans,
    /// Record spans plus point events (branch pruned, report emitted,
    /// dedup dropped).
    Full,
}

impl TraceLevel {
    /// Parses a level name as accepted by `GCATCH_TRACE_LEVEL`.
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted names.
    pub fn parse(s: &str) -> Result<TraceLevel, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Ok(TraceLevel::Off),
            "spans" | "1" => Ok(TraceLevel::Spans),
            "full" | "2" => Ok(TraceLevel::Full),
            other => Err(format!(
                "bad trace level `{other}` (accepted: off, spans, full)"
            )),
        }
    }

    /// Whether any recording happens at this level.
    pub fn enabled(self) -> bool {
        self != TraceLevel::Off
    }
}

// ---------------------------------------------------------------- events

/// Chrome trace-event phase of one recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span open (`ph: "B"`).
    Begin,
    /// Span close (`ph: "E"`).
    End,
    /// Complete span with a duration (`ph: "X"`).
    Complete,
    /// Point event (`ph: "i"`).
    Instant,
}

impl Phase {
    fn chrome(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Complete => "X",
            Phase::Instant => "i",
        }
    }
}

/// An event argument value (rendered into the Chrome `args` object).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// An unsigned integer argument.
    U64(u64),
    /// A string argument.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::U64(v as u64)
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Global sequence number (total order across all lanes).
    pub seq: u64,
    /// Nanoseconds since the tracer's epoch.
    pub ts_ns: u64,
    /// Duration for [`Phase::Complete`] events.
    pub dur_ns: u64,
    /// Event phase.
    pub phase: Phase,
    /// Span or event name.
    pub name: Cow<'static, str>,
    /// Arguments (stable key order: as recorded).
    pub args: Vec<(&'static str, ArgValue)>,
}

// ---------------------------------------------------------------- tracer

struct LaneBuffer {
    tid: u32,
    thread_name: Cow<'static, str>,
    events: Vec<TraceEvent>,
}

/// The session-wide trace sink: hands out per-worker [`Lane`]s and merges
/// their buffers at snapshot time.
#[derive(Debug)]
pub struct Tracer {
    level: TraceLevel,
    epoch: Instant,
    seq: AtomicU64,
    done: Mutex<Vec<LaneBuffer>>,
}

impl std::fmt::Debug for LaneBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneBuffer")
            .field("tid", &self.tid)
            .field("thread_name", &self.thread_name)
            .field("events", &self.events.len())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new(TraceLevel::Off)
    }
}

impl Tracer {
    /// A tracer recording at `level`.
    pub fn new(level: TraceLevel) -> Tracer {
        Tracer {
            level,
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            done: Mutex::new(Vec::new()),
        }
    }

    /// A tracer that records nothing.
    pub fn disabled() -> Tracer {
        Tracer::new(TraceLevel::Off)
    }

    /// The recording level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Whether spans are recorded at all.
    pub fn enabled(&self) -> bool {
        self.level.enabled()
    }

    /// Whether point events are recorded too.
    pub fn full(&self) -> bool {
        self.level == TraceLevel::Full
    }

    /// Opens a lane: a thread-confined event buffer tagged with a Chrome
    /// thread id. Lane 0 is the main thread; BMOC workers use `1 + index`.
    /// The buffer is merged into the tracer when the lane drops.
    pub fn lane(&self, tid: u32, thread_name: impl Into<Cow<'static, str>>) -> Lane<'_> {
        Lane {
            tracer: self,
            tid,
            thread_name: thread_name.into(),
            events: Vec::new(),
            open_spans: 0,
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Freezes everything recorded so far into a [`TraceSnapshot`]. All
    /// lanes must have been dropped (their buffers merged) for their events
    /// to appear; a synthetic `session` span covering the tracer's whole
    /// lifetime is added on lane 0.
    pub fn snapshot(&self) -> TraceSnapshot {
        let done = self.done.lock().expect("trace buffers");
        let mut threads: Vec<(u32, String)> = vec![(0, "main".to_string())];
        let mut events: Vec<(u32, TraceEvent)> = Vec::new();
        if self.enabled() {
            events.push((
                0,
                TraceEvent {
                    seq: 0,
                    ts_ns: 0,
                    dur_ns: self.now_ns(),
                    phase: Phase::Complete,
                    name: Cow::Borrowed("session"),
                    args: Vec::new(),
                },
            ));
        }
        for buf in done.iter() {
            if !threads.iter().any(|(t, _)| *t == buf.tid) {
                threads.push((buf.tid, buf.thread_name.to_string()));
            }
            for e in &buf.events {
                events.push((buf.tid, e.clone()));
            }
        }
        threads.sort();
        // Within a lane the sequence is monotone; across lanes that share a
        // tid the global sequence recovers the real recording order.
        events.sort_by_key(|(tid, e)| (*tid, e.seq));
        TraceSnapshot { threads, events }
    }
}

// ------------------------------------------------------------------ lanes

/// A thread-confined trace buffer. Recording never takes a lock; the
/// buffer is pushed into the owning [`Tracer`] when the lane drops.
#[derive(Debug)]
pub struct Lane<'t> {
    tracer: &'t Tracer,
    tid: u32,
    thread_name: Cow<'static, str>,
    events: Vec<TraceEvent>,
    /// Depth of currently open Begin spans; lets [`Lane::rewind`] emit
    /// the matching End events after a contained panic.
    open_spans: u32,
}

impl Lane<'_> {
    /// Whether this lane records spans.
    pub fn enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Whether this lane records point events too.
    pub fn full(&self) -> bool {
        self.tracer.full()
    }

    fn push(&mut self, phase: Phase, name: Cow<'static, str>, args: Vec<(&'static str, ArgValue)>) {
        self.events.push(TraceEvent {
            seq: self.tracer.next_seq(),
            ts_ns: self.tracer.now_ns(),
            dur_ns: 0,
            phase,
            name,
            args,
        });
    }

    /// Opens a span. Pair with [`Lane::end`] (or use [`Lane::span`]).
    pub fn begin(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.enabled() {
            self.open_spans += 1;
            self.push(Phase::Begin, name.into(), args);
        }
    }

    /// Closes the innermost open span.
    pub fn end(&mut self) {
        if self.enabled() {
            self.open_spans = self.open_spans.saturating_sub(1);
            self.push(Phase::End, Cow::Borrowed(""), Vec::new());
        }
    }

    /// Closes every span still open on this lane.
    ///
    /// Used after a contained panic: the panicking unit never reached
    /// its [`Lane::end`] calls, and the Begin/End balance every lane
    /// guarantees must be restored before the buffer merges.
    pub fn rewind(&mut self) {
        while self.open_spans > 0 {
            self.end();
        }
    }

    /// Runs `f` inside a `name` span.
    pub fn span<T>(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        args: Vec<(&'static str, ArgValue)>,
        f: impl FnOnce(&mut Self) -> T,
    ) -> T {
        self.begin(name, args);
        let out = f(self);
        self.end();
        out
    }

    /// Records a complete span that just finished and took `dur` (used when
    /// the timed region reports its own duration, e.g. one solver call).
    pub fn complete(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        dur: Duration,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.enabled() {
            let dur_ns = dur.as_nanos() as u64;
            let now = self.tracer.now_ns();
            self.events.push(TraceEvent {
                seq: self.tracer.next_seq(),
                ts_ns: now.saturating_sub(dur_ns),
                dur_ns,
                phase: Phase::Complete,
                name: name.into(),
                args,
            });
        }
    }

    /// Records a point event ([`TraceLevel::Full`] only).
    pub fn instant(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.full() {
            self.push(Phase::Instant, name.into(), args);
        }
    }
}

impl Drop for Lane<'_> {
    fn drop(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let buf = LaneBuffer {
            tid: self.tid,
            thread_name: std::mem::replace(&mut self.thread_name, Cow::Borrowed("")),
            events: std::mem::take(&mut self.events),
        };
        self.tracer.done.lock().expect("trace buffers").push(buf);
    }
}

// -------------------------------------------------------------- snapshot

/// A frozen, mergeable view of everything a [`Tracer`] recorded.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// `(tid, thread name)` pairs, sorted by tid.
    pub threads: Vec<(u32, String)>,
    /// `(tid, event)` pairs, sorted by `(tid, seq)`.
    pub events: Vec<(u32, TraceEvent)>,
}

impl TraceSnapshot {
    /// The distinct span names recorded (Begin/Complete events).
    pub fn span_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .events
            .iter()
            .filter(|(_, e)| matches!(e.phase, Phase::Begin | Phase::Complete))
            .map(|(_, e)| e.name.as_ref())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// A copy with every timestamp, duration, and sequence number zeroed —
    /// the deterministic projection golden tests compare.
    pub fn zeroed(&self) -> TraceSnapshot {
        let mut out = self.clone();
        for (_, e) in &mut out.events {
            e.seq = 0;
            e.ts_ns = 0;
            e.dur_ns = 0;
        }
        out
    }

    /// Renders the snapshot in Chrome trace-event JSON (an object with a
    /// `traceEvents` array), loadable in `chrome://tracing` and Perfetto.
    /// Timestamps are microseconds with nanosecond precision; each lane
    /// becomes a named thread via `thread_name` metadata events.
    pub fn render_chrome(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push_event = |s: &str, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(s);
        };
        for (tid, name) in &self.threads {
            let mut e = String::new();
            e.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            e.push_str(&tid.to_string());
            e.push_str(",\"args\":{\"name\":\"");
            escape_json_into(name, &mut e);
            e.push_str("\"}}");
            push_event(&e, &mut out);
        }
        for (tid, ev) in &self.events {
            let mut e = String::new();
            e.push_str("{\"name\":\"");
            escape_json_into(&ev.name, &mut e);
            e.push_str("\",\"ph\":\"");
            e.push_str(ev.phase.chrome());
            e.push_str("\",\"ts\":");
            e.push_str(&micros(ev.ts_ns));
            if ev.phase == Phase::Complete {
                e.push_str(",\"dur\":");
                e.push_str(&micros(ev.dur_ns));
            }
            if ev.phase == Phase::Instant {
                e.push_str(",\"s\":\"t\"");
            }
            e.push_str(",\"pid\":1,\"tid\":");
            e.push_str(&tid.to_string());
            if !ev.args.is_empty() {
                e.push_str(",\"args\":{");
                for (i, (k, v)) in ev.args.iter().enumerate() {
                    if i > 0 {
                        e.push(',');
                    }
                    e.push('"');
                    e.push_str(k);
                    e.push_str("\":");
                    match v {
                        ArgValue::U64(n) => e.push_str(&n.to_string()),
                        ArgValue::Str(s) => {
                            e.push('"');
                            escape_json_into(s, &mut e);
                            e.push('"');
                        }
                    }
                }
                e.push('}');
            }
            e.push('}');
            push_event(&e, &mut out);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Nanoseconds rendered as decimal microseconds (`1234` → `1.234`), the
/// Chrome trace `ts` unit, without going through floats.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

// ------------------------------------------------------------- histogram

/// Number of bins in a [`Histogram`]: bin 0 holds the value 0, bin `k`
/// (1 ≤ k ≤ 64) holds values in `[2^(k-1), 2^k)`.
pub const HIST_BINS: usize = 65;

/// A thread-safe, log2-bucketed histogram of `u64` samples.
///
/// Fixed bins, integer keys, relaxed atomics: concurrent workers can record
/// without locks, and because bin counts commute under addition the merged
/// snapshot is independent of recording order (so `--jobs N` cannot change
/// a distribution built from deterministic per-channel counts).
#[derive(Debug)]
pub struct Histogram {
    bins: [AtomicU64; HIST_BINS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            bins: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bin a value lands in: 0 for 0, else `floor(log2(v)) + 1`.
pub fn bin_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive `[lo, hi]` value range of bin `i`.
pub fn bin_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.bins[bin_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds a frozen snapshot into this live histogram (bin-wise
    /// addition, like [`HistSnapshot::merge`] but onto the atomic side) —
    /// how the batch engine merges per-job session histograms into the
    /// run-wide telemetry.
    pub fn absorb(&self, snap: &HistSnapshot) {
        for (b, &n) in self.bins.iter().zip(snap.bins.iter()) {
            if n > 0 {
                b.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// Freezes the bins into a plain snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut bins = [0u64; HIST_BINS];
        for (i, b) in self.bins.iter().enumerate() {
            bins[i] = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            bins,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable [`Histogram`] snapshot with percentile queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bin sample counts (see [`bin_index`]).
    pub bins: [u64; HIST_BINS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample recorded.
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            bins: [0; HIST_BINS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// The `p`-th percentile (0–100): the upper bound of the bin containing
    /// the sample of that rank, clamped to the observed maximum (so `p100`
    /// is exactly the max). Returns 0 for an empty histogram.
    pub fn percentile(&self, p: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // rank = ceil(p/100 * count), clamped to [1, count].
        let rank = (u128::from(self.count) * u128::from(p.min(100))).div_ceil(100) as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bin_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds another snapshot into this one (bin-wise addition).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

// ------------------------------------------------------- JSON well-formed

/// Checks that `s` is one well-formed JSON document (objects, arrays,
/// strings, numbers, booleans, null). Used by trace tests and the CI
/// `trace_check` harness; this is a validator, not a parser — it builds no
/// value tree.
///
/// # Errors
///
/// Returns a byte offset and message for the first violation.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    validate_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn validate_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    let Some(&c) = b.get(*i) else {
        return Err(format!("unexpected end of input at byte {i}"));
    };
    match c {
        b'{' => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                validate_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected `:` at byte {i}"));
                }
                *i += 1;
                skip_ws(b, i);
                validate_value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {i}")),
                }
            }
        }
        b'[' => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                validate_value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {i}")),
                }
            }
        }
        b'"' => validate_string(b, i),
        b't' => validate_lit(b, i, "true"),
        b'f' => validate_lit(b, i, "false"),
        b'n' => validate_lit(b, i, "null"),
        b'-' | b'0'..=b'9' => validate_number(b, i),
        other => Err(format!("unexpected byte `{}` at byte {i}", other as char)),
    }
}

fn validate_lit(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn validate_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        if b.len() < *i + 5 || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {i}"));
                        }
                        *i += 5;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            0x00..=0x1f => return Err(format!("unescaped control byte at {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn validate_number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let mut lane = t.lane(0, "main");
            lane.begin("x", vec![]);
            lane.instant("y", vec![]);
            lane.end();
        }
        let snap = t.snapshot();
        assert!(snap.events.is_empty());
    }

    #[test]
    fn spans_nest_and_merge_across_lanes() {
        let t = Tracer::new(TraceLevel::Full);
        {
            let mut main = t.lane(0, "main");
            main.span("analysis", vec![], |_| ());
        }
        std::thread::scope(|s| {
            for w in 0..2u32 {
                let t = &t;
                s.spawn(move || {
                    let mut lane = t.lane(1 + w, format!("bmoc-worker-{w}"));
                    lane.span("bmoc_channel", vec![("chan", ArgValue::from("c"))], |l| {
                        l.instant("report_emitted", vec![]);
                    });
                });
            }
        });
        let snap = t.snapshot();
        assert_eq!(snap.threads.len(), 3);
        let names = snap.span_names();
        assert!(names.contains(&"session"));
        assert!(names.contains(&"analysis"));
        assert!(names.contains(&"bmoc_channel"));
        // Begin/End pairs balance on every lane.
        for tid in [0u32, 1, 2] {
            let mut depth = 0i64;
            for (t, e) in snap.events.iter().filter(|(t, _)| *t == tid) {
                let _ = t;
                match e.phase {
                    Phase::Begin => depth += 1,
                    Phase::End => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0);
            }
            assert_eq!(depth, 0, "unbalanced spans on tid {tid}");
        }
    }

    #[test]
    fn rewind_rebalances_open_spans() {
        let t = Tracer::new(TraceLevel::Spans);
        {
            let mut lane = t.lane(0, "main");
            lane.begin("a", vec![]);
            lane.begin("b", vec![]);
            // A panic would skip the matching end() calls; rewind restores
            // the balance.
            lane.rewind();
            lane.rewind(); // idempotent
        }
        let snap = t.snapshot();
        let begins = snap
            .events
            .iter()
            .filter(|(_, e)| e.phase == Phase::Begin)
            .count();
        let ends = snap
            .events
            .iter()
            .filter(|(_, e)| e.phase == Phase::End)
            .count();
        assert_eq!(begins, 2);
        assert_eq!(ends, 2);
    }

    #[test]
    fn spans_level_drops_instants() {
        let t = Tracer::new(TraceLevel::Spans);
        {
            let mut lane = t.lane(0, "main");
            lane.span("solve", vec![], |l| l.instant("branch_pruned", vec![]));
        }
        let snap = t.snapshot();
        assert!(snap.events.iter().all(|(_, e)| e.phase != Phase::Instant));
    }

    #[test]
    fn chrome_rendering_is_wellformed_json() {
        let t = Tracer::new(TraceLevel::Full);
        {
            let mut lane = t.lane(0, "main");
            lane.span("solve", vec![("group", ArgValue::U64(3))], |l| {
                l.complete(
                    "dpll",
                    Duration::from_micros(12),
                    vec![
                        ("steps", ArgValue::U64(99)),
                        ("why", ArgValue::from("a\"b")),
                    ],
                );
            });
        }
        let json = t.snapshot().render_chrome();
        validate_json(&json).expect("chrome trace is valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"steps\":99"));
    }

    #[test]
    fn zeroed_projection_is_deterministic() {
        let mk = || {
            let t = Tracer::new(TraceLevel::Spans);
            {
                let mut lane = t.lane(0, "main");
                lane.span("analysis", vec![], |_| ());
            }
            t.snapshot().zeroed().render_chrome()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn trace_level_parsing() {
        assert_eq!(TraceLevel::parse("off"), Ok(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("SPANS"), Ok(TraceLevel::Spans));
        assert_eq!(TraceLevel::parse(" full "), Ok(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("2"), Ok(TraceLevel::Full));
        assert!(TraceLevel::parse("verbose").is_err());
    }

    #[test]
    fn histogram_bin_boundaries() {
        assert_eq!(bin_index(0), 0);
        assert_eq!(bin_index(1), 1);
        assert_eq!(bin_index(2), 2);
        assert_eq!(bin_index(3), 2);
        assert_eq!(bin_index(4), 3);
        assert_eq!(bin_index(7), 3);
        assert_eq!(bin_index(8), 4);
        assert_eq!(bin_index(u64::MAX), 64);
        assert_eq!(bin_bounds(0), (0, 0));
        assert_eq!(bin_bounds(1), (1, 1));
        assert_eq!(bin_bounds(2), (2, 3));
        assert_eq!(bin_bounds(3), (4, 7));
        assert_eq!(bin_bounds(64), (1 << 63, u64::MAX));
        // Every bin's bounds round-trip through bin_index.
        for i in 0..HIST_BINS {
            let (lo, hi) = bin_bounds(i);
            assert_eq!(bin_index(lo), i, "lo of bin {i}");
            assert_eq!(bin_index(hi), i, "hi of bin {i}");
        }
    }

    #[test]
    fn histogram_percentile_math() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().percentile(50), 0, "empty histogram");
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 100);
        assert_eq!(s.percentile(100), 100);
        // The rank-50 sample (the value 50) lands in bin [32, 63].
        assert_eq!(s.percentile(50), 63);
        // The rank-90 sample (90) lands in bin [64, 127], clamped to max.
        assert_eq!(s.percentile(90), 100);
        assert_eq!(s.percentile(0), 1, "p0 is the smallest sample's bin");
        assert_eq!(s.mean(), 5050 / 100);
    }

    #[test]
    fn histogram_merge_is_binwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(1);
        a.record(4);
        b.record(4);
        b.record(1000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 4);
        assert_eq!(m.max, 1000);
        assert_eq!(m.bins[bin_index(4)], 2);
        assert_eq!(m.sum, 1 + 4 + 4 + 1000);
    }

    #[test]
    fn histogram_is_shareable_across_threads() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in 0..100u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 400);
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e+3",
            r#"{"a":[1,2,{"b":"c\n"}],"d":true}"#,
            "  [1]  ",
        ] {
            assert!(validate_json(good).is_ok(), "{good}");
        }
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\x\"", "{1:2}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad}");
        }
    }
}
