//! A supervised, checkpointed batch engine over module-level jobs.
//!
//! The paper's evaluation (§5) is a long batch run over 21 applications —
//! exactly the shape where one crash, one pathological module, or one
//! straggling solver query can cost the whole run. This module supplies
//! the fleet-style driver on top of the PR 3 resilience layer:
//!
//! * a **worker pool** over a shared work queue of [`BatchJob`]s, each
//!   attempt executed under [`catch_isolated`] so a panic becomes a
//!   classified failure, never a process abort;
//! * **retry with exponential backoff** and deterministic jitter
//!   ([`BackoffPolicy`], seeded from the `prng` crate): transient
//!   failures (including every [`faults`]-injected one) are re-dispatched
//!   with a fresh attempt number; a job that keeps failing — twice with
//!   the *same* non-injected message, or [`BatchConfig::max_attempts`]
//!   times in total — is **quarantined** as an
//!   [`Incident`]`{ kind: `[`IncidentKind::Quarantined`]` }` so the rest
//!   of the batch still finishes;
//! * **straggler hedging** ([`HedgePolicy`]): once enough jobs have
//!   completed, a job running past the p99 of completed wall-clock times
//!   gets a second dispatch of the same attempt; the first result wins
//!   and the loser is cancelled through the [`CancelToken`] on its
//!   [`JobCtx`] (cooperatively, via the budget it is attached to);
//! * an **append-only checkpoint journal** ([`Journal`]): one fsynced
//!   JSONL line per decided job, so a killed run can be resumed with the
//!   completed jobs restored instead of re-run. A truncated trailing
//!   line (the kill arrived mid-write) is detected and dropped.
//!
//! The engine itself is deterministic *in content*: job results land in
//! submission order in [`BatchOutcome::records`] regardless of worker
//! interleaving, so a report built from the records is bit-identical
//! across worker counts, interruptions, and (injected-)fault schedules —
//! the property the kill-and-resume tests pin down.

use crate::diagnostics::escape_json;
use crate::events::{Event as ObsEvent, EventBus, EventKind, Field, FlightRecorder};
use crate::faults::{self, FaultPlan};
use crate::progress::ProgressSnapshot;
use crate::resilience::{catch_isolated, CancelToken, Incident, IncidentKind};
use crate::telemetry::{Counter, Metric, Telemetry};
use crate::trace::{ArgValue, Tracer};
use prng::Prng;
use std::collections::{BTreeMap, VecDeque};
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

// ------------------------------------------------------------------ jobs

/// Ambient context handed to a job's work closure.
#[derive(Clone, Debug)]
pub struct JobCtx {
    /// The job's stable identifier (a module path in the CLI).
    pub job_id: String,
    /// 1-based attempt number (hedge twins share the attempt number).
    pub attempt: u32,
    /// Cancellation signal: set when a hedge twin already won. Attach it
    /// to the attempt's [`Budget`](crate::Budget) (via
    /// [`Budget::with_cancel`](crate::Budget::with_cancel)) so the losing
    /// twin stops at its next cooperative budget check.
    pub cancel: CancelToken,
    /// The job's submission index — the canonical event-ordering group
    /// for anything the job emits on an event bus.
    pub index: usize,
    /// The job's flight recorder: lifecycle lines pushed here end up in
    /// the quarantine postmortem if the job is given up on. The engine
    /// records attempt starts/ends and retry decisions itself; work
    /// closures may push additional context.
    pub flight: FlightRecorder,
}

/// One unit of batch work: a stable id plus the closure that produces a
/// payload (or a failure message). The closure must be callable from any
/// worker thread, and is re-invoked on retries and hedges — it should be
/// a pure function of `(job, attempt)` for deterministic reports.
pub struct BatchJob<'a, T> {
    /// Stable identifier; must be unique within one batch.
    pub id: String,
    /// The work itself. A returned `Err` and a contained panic are both
    /// treated as a failed attempt.
    #[allow(clippy::type_complexity)]
    pub work: Box<dyn Fn(&JobCtx) -> Result<T, String> + Send + Sync + 'a>,
}

impl<'a, T> BatchJob<'a, T> {
    /// Convenience constructor.
    pub fn new(
        id: impl Into<String>,
        work: impl Fn(&JobCtx) -> Result<T, String> + Send + Sync + 'a,
    ) -> BatchJob<'a, T> {
        BatchJob {
            id: id.into(),
            work: Box::new(work),
        }
    }
}

/// How a job ended up in the final record set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed in this run.
    Done,
    /// Restored from a checkpoint journal instead of re-run.
    Resumed,
    /// Set aside after exhausting its retry budget (see
    /// [`JobRecord::incident`]).
    Quarantined,
}

impl JobStatus {
    /// Stable lower-case label (journal lines, JSON output).
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Resumed => "resumed",
            JobStatus::Quarantined => "quarantined",
        }
    }
}

/// The decided outcome of one job.
#[derive(Clone, Debug)]
pub struct JobRecord<T> {
    /// The job's id.
    pub id: String,
    /// How the job was decided.
    pub status: JobStatus,
    /// Attempts launched (1 for a first-try success; 0 for a restored
    /// record, which carries the original count from the journal).
    pub attempts: u32,
    /// The payload, for [`JobStatus::Done`] / [`JobStatus::Resumed`].
    pub payload: Option<T>,
    /// The quarantine incident, for [`JobStatus::Quarantined`].
    pub incident: Option<Incident>,
    /// Wall-clock from first dispatch start to decision (zero for
    /// restored records).
    pub wall: Duration,
}

/// Everything a finished batch produced.
#[derive(Debug)]
pub struct BatchOutcome<T> {
    /// One record per submitted job, in submission order.
    pub records: Vec<JobRecord<T>>,
    /// Jobs restored from the journal.
    pub resumed: usize,
    /// Jobs actually executed this run.
    pub executed: usize,
    /// Jobs quarantined (this run or restored).
    pub quarantined: usize,
    /// First journal write error, if journaling broke mid-run (the batch
    /// still completes; later resume simply re-runs more jobs).
    pub journal_error: Option<String>,
}

// -------------------------------------------------------------- policies

/// Exponential backoff with deterministic jitter.
///
/// The delay before retry `n + 1` after `n` failed attempts is
/// `min(base · 2^(n-1), cap)` scaled by a jitter factor in `[0.5, 1.0)`
/// derived (via FNV + SplitMix) from `(seed, job, n)` — so a fixed seed
/// reproduces the exact retry schedule, while different jobs still
/// decorrelate.
#[derive(Clone, Debug)]
pub struct BackoffPolicy {
    /// First-retry delay.
    pub base: Duration,
    /// Upper bound on the un-jittered delay.
    pub cap: Duration,
    /// Seed for the jitter factor.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// The delay to sleep before the attempt that follows `failed_attempt`
    /// (1-based) failures of `job`.
    pub fn delay(&self, job: &str, failed_attempt: u32) -> Duration {
        let shift = failed_attempt.saturating_sub(1).min(20);
        let exp = self
            .base
            .saturating_mul(1u32 << shift.min(20))
            .min(self.cap);
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        h = faults::fnv(h, job.as_bytes());
        h = faults::fnv(h, &failed_attempt.to_le_bytes());
        let jitter = 0.5 + 0.5 * Prng::seed_from_u64(h).next_f64();
        exp.mul_f64(jitter)
    }
}

/// When to hedge a straggling job with a second dispatch.
#[derive(Clone, Debug)]
pub struct HedgePolicy {
    /// Completed jobs required before p99 is considered meaningful.
    pub min_completed: usize,
    /// Floor on the straggler threshold, so tiny corpora with fast jobs
    /// don't hedge everything.
    pub min_age: Duration,
}

impl Default for HedgePolicy {
    fn default() -> HedgePolicy {
        HedgePolicy {
            min_completed: 5,
            min_age: Duration::from_millis(50),
        }
    }
}

/// Batch engine configuration.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Attempts before a persistently failing job is quarantined.
    pub max_attempts: u32,
    /// Retry backoff policy.
    pub backoff: BackoffPolicy,
    /// Straggler hedging; `None` disables hedging.
    pub hedge: Option<HedgePolicy>,
    /// Fault-injection plan armed around every attempt; `None` (the
    /// default) leaves the fault layer completely inert.
    pub faults: Option<std::sync::Arc<FaultPlan>>,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            workers: 4,
            max_attempts: 3,
            backoff: BackoffPolicy::default(),
            hedge: Some(HedgePolicy::default()),
            faults: None,
        }
    }
}

// --------------------------------------------------------------- journal

/// Encodes/decodes a job payload to/from one raw JSON value for the
/// journal. `encode` must produce a self-contained JSON value (the
/// journal embeds it verbatim as the line's last field); `decode` gets
/// that exact text back and returns `None` if it cannot reconstruct the
/// payload (the job is then re-run on resume — safe, just slower).
pub struct JournalCodec<T> {
    /// Payload → raw JSON value.
    #[allow(clippy::type_complexity)]
    pub encode: Box<dyn Fn(&T) -> String + Send + Sync>,
    /// Raw JSON value → payload.
    #[allow(clippy::type_complexity)]
    pub decode: Box<dyn Fn(&str) -> Option<T> + Send + Sync>,
}

impl JournalCodec<String> {
    /// The identity codec: the payload *is* a raw JSON value.
    pub fn raw_json() -> JournalCodec<String> {
        JournalCodec {
            encode: Box::new(|s| s.clone()),
            decode: Box::new(|s| Some(s.to_string())),
        }
    }
}

/// Magic key of the journal header line.
const JOURNAL_MAGIC: &str = "gcatch_batch_journal";
/// Journal format version.
const JOURNAL_VERSION: u64 = 1;

/// FNV fingerprint of the submitted job-id set, written into the header
/// so `--resume` refuses a journal from a different job set.
pub(crate) fn fingerprint(ids: &[String]) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for id in ids {
        h = faults::fnv(h, id.as_bytes());
        h = faults::fnv(h, b"\x1f");
    }
    format!("{h:016x}")
}

/// An append-only, fsync-per-line JSONL checkpoint journal.
///
/// Line 1 is a header identifying the job set; every subsequent line is
/// one decided job. Appends are flushed and fsynced individually, so
/// after a kill at any instant the journal is a valid prefix plus at
/// most one truncated line, which [`Journal::open_resume`] drops.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl Journal {
    /// Creates (truncating) a journal for the given job set.
    pub fn create(path: &Path, ids: &[String]) -> std::io::Result<Journal> {
        let mut file = std::fs::File::create(path)?;
        let header = format!(
            "{{\"{JOURNAL_MAGIC}\":{JOURNAL_VERSION},\"jobs\":{},\"fingerprint\":\"{}\"}}\n",
            ids.len(),
            fingerprint(ids)
        );
        file.write_all(header.as_bytes())?;
        file.sync_data()?;
        // Durability of the *name*, not just the bytes: fsync the parent
        // directory so a metadata-losing crash cannot forget the journal
        // file itself (the file's own fsyncs only cover its contents).
        crate::sweep::fsync_parent(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Opens an existing journal for resumption: validates the header
    /// against the submitted job set, restores every decided job from the
    /// intact line prefix (a truncated or malformed tail is dropped), and
    /// reopens the file for appending.
    ///
    /// # Errors
    ///
    /// Reports an unreadable file, a missing/foreign header, or a job-set
    /// fingerprint mismatch. Restored-payload decode failures are *not*
    /// errors — the job is simply re-run.
    #[allow(clippy::type_complexity)]
    pub fn open_resume<T>(
        path: &Path,
        ids: &[String],
        codec: &JournalCodec<T>,
    ) -> Result<(Journal, BTreeMap<String, JobRecord<T>>), String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
        let mut lines = text.split_inclusive('\n');
        let header = lines.next().unwrap_or("");
        if !header.ends_with('\n') || !header.starts_with(&format!("{{\"{JOURNAL_MAGIC}\":")) {
            return Err(format!("{} is not a gcatch batch journal", path.display()));
        }
        let want = fingerprint(ids);
        if !header.contains(&format!("\"fingerprint\":\"{want}\"")) {
            return Err(format!(
                "journal {} was written for a different job set",
                path.display()
            ));
        }
        let mut restored = BTreeMap::new();
        let mut intact = header.len() as u64;
        for line in lines {
            // Only a complete, parseable line counts; the first bad line
            // is where the crash landed, so everything after it is noise.
            if !line.ends_with('\n') {
                break;
            }
            match parse_record_line(line.trim_end_matches('\n'), codec) {
                Some(rec) => {
                    restored.insert(rec.id.clone(), rec);
                    intact += line.len() as u64;
                }
                None => break,
            }
        }
        // Self-heal: chop the crashed partial line off before appending,
        // so the next record never concatenates onto garbage (which would
        // hide every later record from a second resume).
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("cannot append to journal {}: {e}", path.display()))?;
        file.set_len(intact)
            .map_err(|e| format!("cannot truncate journal {}: {e}", path.display()))?;
        let mut file = file;
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("cannot seek journal {}: {e}", path.display()))?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file: Mutex::new(file),
            },
            restored,
        ))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads a journal without opening it for appending: validates the
    /// header against `ids`, parses every intact record line, and drops a
    /// torn or malformed tail — but never truncates the file. The sweep
    /// merge uses this to fold every worker's journal into one record set
    /// while the files stay untouched for postmortem inspection.
    pub fn read_records<T>(
        path: &Path,
        ids: &[String],
        codec: &JournalCodec<T>,
    ) -> Result<Vec<JobRecord<T>>, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
        let mut lines = text.split_inclusive('\n');
        let header = lines.next().unwrap_or("");
        if !header.ends_with('\n') || !header.starts_with(&format!("{{\"{JOURNAL_MAGIC}\":")) {
            return Err(format!("{} is not a gcatch batch journal", path.display()));
        }
        let want = fingerprint(ids);
        if !header.contains(&format!("\"fingerprint\":\"{want}\"")) {
            return Err(format!(
                "journal {} was written for a different job set",
                path.display()
            ));
        }
        let mut records = Vec::new();
        for line in lines {
            if !line.ends_with('\n') {
                break;
            }
            match parse_record_line(line.trim_end_matches('\n'), codec) {
                Some(rec) => records.push(rec),
                None => break,
            }
        }
        Ok(records)
    }

    /// Appends one decided job and fsyncs.
    pub fn record<T>(&self, rec: &JobRecord<T>, codec: &JournalCodec<T>) -> std::io::Result<()> {
        let mut line = String::from("{\"job\":\"");
        escape_json(&rec.id, &mut line);
        line.push_str("\",\"status\":\"");
        // Resumed records are not re-journaled; callers only pass
        // Done/Quarantined, but keep the label honest either way.
        line.push_str(match rec.status {
            JobStatus::Quarantined => "quarantined",
            _ => "done",
        });
        line.push_str("\",\"attempts\":");
        line.push_str(&rec.attempts.to_string());
        if let Some(inc) = &rec.incident {
            line.push_str(",\"incident\":\"");
            escape_json(&inc.message, &mut line);
            line.push('"');
            // The flight dump rides along so a resumed run reconstructs
            // the quarantine postmortem byte-for-byte.
            if !inc.flight.is_empty() {
                line.push_str(",\"flight\":[");
                for (i, fl) in inc.flight.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    line.push('"');
                    escape_json(fl, &mut line);
                    line.push('"');
                }
                line.push(']');
            }
        }
        line.push_str(",\"payload\":");
        match &rec.payload {
            Some(p) => line.push_str(&(codec.encode)(p)),
            None => line.push_str("null"),
        }
        line.push_str("}\n");
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.write_all(line.as_bytes())?;
        file.sync_data()
    }
}

/// Parses one JSON string literal starting at `s` (which must begin with
/// the opening quote's *content*, i.e. just after `"`). Returns the
/// unescaped string and the rest after the closing quote.
pub(crate) fn parse_json_string(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let (j, _) = chars.next()?;
                    let hex = s.get(j..j + 4)?;
                    let code = u32::from_str_radix(hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                    // Consume the remaining three hex digits.
                    for _ in 0..3 {
                        chars.next()?;
                    }
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Parses one journal record line (without the trailing newline).
pub(crate) fn parse_record_line<T>(line: &str, codec: &JournalCodec<T>) -> Option<JobRecord<T>> {
    let rest = line.strip_prefix("{\"job\":\"")?;
    let (id, rest) = parse_json_string(rest)?;
    let rest = rest.strip_prefix(",\"status\":\"")?;
    let (status, rest) = parse_json_string(rest)?;
    let rest = rest.strip_prefix(",\"attempts\":")?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    let attempts: u32 = digits.parse().ok()?;
    let rest = &rest[digits.len()..];
    let (incident, rest) = match rest.strip_prefix(",\"incident\":\"") {
        Some(r) => {
            let (msg, r) = parse_json_string(r)?;
            let (flight, r) = match r.strip_prefix(",\"flight\":[") {
                Some(mut fl_rest) => {
                    let mut lines = Vec::new();
                    match fl_rest.strip_prefix(']') {
                        Some(after) => (lines, after),
                        None => loop {
                            let body = fl_rest.strip_prefix('"')?;
                            let (fl, after) = parse_json_string(body)?;
                            lines.push(fl);
                            if let Some(more) = after.strip_prefix(',') {
                                fl_rest = more;
                            } else {
                                break (lines, after.strip_prefix(']')?);
                            }
                        },
                    }
                }
                None => (Vec::new(), r),
            };
            (
                Some(Incident {
                    kind: IncidentKind::Quarantined,
                    name: id.clone(),
                    message: msg,
                    rung: 0,
                    flight,
                }),
                r,
            )
        }
        None => (None, rest),
    };
    let payload_raw = rest.strip_prefix(",\"payload\":")?.strip_suffix('}')?;
    match status.as_str() {
        "done" => {
            let payload = (codec.decode)(payload_raw)?;
            Some(JobRecord {
                id,
                status: JobStatus::Done,
                attempts,
                payload: Some(payload),
                incident: None,
                wall: Duration::ZERO,
            })
        }
        "quarantined" => Some(JobRecord {
            id,
            status: JobStatus::Quarantined,
            attempts,
            payload: None,
            incident,
            wall: Duration::ZERO,
        }),
        _ => None,
    }
}

// ---------------------------------------------------------------- engine

/// One queued execution of a job attempt.
struct Dispatch {
    index: usize,
    attempt: u32,
    hedge: bool,
    /// Backoff to sleep (on the worker) before a retry attempt runs.
    backoff: Option<Duration>,
    cancel: CancelToken,
    /// The job's shared flight recorder (same ring for every attempt).
    flight: FlightRecorder,
}

/// Worker → supervisor events.
enum Event<T> {
    Started {
        index: usize,
        at: Instant,
    },
    Finished {
        index: usize,
        attempt: u32,
        result: Result<T, String>,
    },
}

/// The shared work queue.
struct Queue {
    items: VecDeque<Dispatch>,
    shutdown: bool,
}

/// Supervisor-side per-job bookkeeping.
struct JobState {
    attempts_launched: u32,
    /// Dispatches queued or running for the current attempt.
    active: u32,
    hedged: bool,
    first_started: Option<Instant>,
    started: Option<Instant>,
    cancels: Vec<CancelToken>,
    last_failure: Option<String>,
    identical_failures: u32,
    done: bool,
    /// Lifecycle ring shared with every dispatch of this job; dumped into
    /// the incident if the job is quarantined.
    flight: FlightRecorder,
}

impl JobState {
    fn new() -> JobState {
        JobState {
            attempts_launched: 1,
            active: 1,
            hedged: false,
            first_started: None,
            started: None,
            cancels: Vec::new(),
            last_failure: None,
            identical_failures: 0,
            done: false,
            flight: FlightRecorder::new(),
        }
    }
}

/// Supervisor-side counters backing `--progress` snapshots.
struct Meter {
    total: usize,
    resumed: usize,
    retried: u64,
    hedged: u64,
    quarantined: u64,
}

/// Exact p99 (in the [`crate::trace::HistSnapshot::percentile`] sense:
/// the sample at rank `ceil(0.99 n)`) of the completed wall times.
fn p99(walls: &[Duration]) -> Duration {
    if walls.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = walls.to_vec();
    sorted.sort_unstable();
    let rank = (walls.len() * 99).div_ceil(100).clamp(1, walls.len());
    sorted[rank - 1]
}

/// The supervised batch engine. See the [module docs](self).
pub struct BatchEngine<'t> {
    config: BatchConfig,
    telemetry: &'t Telemetry,
    tracer: &'t Tracer,
    /// How a worker waits out a backoff delay; tests install a recorder.
    #[allow(clippy::type_complexity)]
    sleeper: Box<dyn Fn(&str, u32, Duration) + Send + Sync + 't>,
    /// Supervisor tick: how often the hedge scan runs while idle.
    tick: Duration,
    /// Structured event sink (`--events-out`); `None` leaves it inert.
    events: Option<&'t EventBus>,
    /// Progress callback plus its minimum emission interval
    /// (`--progress`); `None` leaves it inert.
    #[allow(clippy::type_complexity)]
    progress: Option<(Box<dyn Fn(&ProgressSnapshot) + Send + Sync + 't>, Duration)>,
}

impl<'t> BatchEngine<'t> {
    /// An engine recording into `telemetry`/`tracer` (pass
    /// [`Tracer::disabled`] when not tracing).
    pub fn new(config: BatchConfig, telemetry: &'t Telemetry, tracer: &'t Tracer) -> Self {
        BatchEngine {
            config,
            telemetry,
            tracer,
            sleeper: Box::new(|_job, _attempt, d| std::thread::sleep(d)),
            tick: Duration::from_millis(5),
            events: None,
            progress: None,
        }
    }

    /// Replaces the backoff sleep (deterministic tests record the exact
    /// schedule instead of sleeping through it).
    pub fn with_sleeper(
        mut self,
        sleeper: impl Fn(&str, u32, Duration) + Send + Sync + 't,
    ) -> Self {
        self.sleeper = Box::new(sleeper);
        self
    }

    /// Attaches a structured event bus: every attempt start/end, fault
    /// injection, retry, hedge, quarantine, and resume is emitted with
    /// the job's id and submission index as correlation keys.
    pub fn with_events(mut self, events: &'t EventBus) -> Self {
        self.events = Some(events);
        self
    }

    /// Attaches a live progress callback, invoked from the supervisor at
    /// most once per `every` (plus once at start and once at the end).
    pub fn with_progress(
        mut self,
        callback: impl Fn(&ProgressSnapshot) + Send + Sync + 't,
        every: Duration,
    ) -> Self {
        self.progress = Some((Box::new(callback), every));
        self
    }

    /// Emits one job-correlated event when a bus is attached.
    fn emit(
        &self,
        kind: EventKind,
        index: usize,
        job: &str,
        attempt: Option<u32>,
        fields: Vec<(&'static str, Field)>,
    ) {
        if let Some(bus) = self.events {
            bus.emit(ObsEvent {
                kind,
                group: index as u64,
                job: Some(job.to_string()),
                attempt,
                channel: None,
                fields,
            });
        }
    }

    /// Hands a progress snapshot to the callback, throttled to its
    /// configured interval unless `force`d (start/end of the run).
    fn emit_progress(&self, meter: &Meter, remaining: usize, last: &mut Instant, force: bool) {
        let Some((callback, every)) = &self.progress else {
            return;
        };
        if !force && last.elapsed() < *every {
            return;
        }
        *last = Instant::now();
        let hist = self.telemetry.hist(Metric::JobWallNs).snapshot();
        let eta_ms = (hist.count > 0 && remaining > 0).then(|| {
            let per_job_ms = hist.mean() as f64 / 1e6;
            (per_job_ms * remaining as f64 / self.config.workers.max(1) as f64) as u64
        });
        callback(&ProgressSnapshot {
            total: meter.total,
            done: meter.total - remaining,
            resumed: meter.resumed,
            retried: meter.retried,
            hedged: meter.hedged,
            quarantined: meter.quarantined,
            p50_ms: hist.percentile(50) as f64 / 1e6,
            p99_ms: hist.percentile(99) as f64 / 1e6,
            eta_ms,
            ..ProgressSnapshot::default()
        });
    }

    /// Runs the batch to completion and returns one record per job in
    /// submission order. Jobs present in `restored` (from
    /// [`Journal::open_resume`]) are not re-run. Every decided job is
    /// appended to `journal` if one is given.
    pub fn run<'a, T: Send>(
        &self,
        jobs: &[BatchJob<'a, T>],
        journal: Option<(&Journal, &JournalCodec<T>)>,
        mut restored: BTreeMap<String, JobRecord<T>>,
    ) -> BatchOutcome<T> {
        self.telemetry.add(Counter::JobsTotal, jobs.len() as u64);
        let mut records: Vec<Option<JobRecord<T>>> = Vec::with_capacity(jobs.len());
        let mut states: Vec<JobState> = Vec::with_capacity(jobs.len());
        let mut pending: Vec<usize> = Vec::new();
        let mut resumed = 0usize;
        let mut sup_lane = self.tracer.lane(0, "batch-supervisor");
        for (i, job) in jobs.iter().enumerate() {
            if let Some(mut rec) = restored.remove(&job.id) {
                if rec.status == JobStatus::Done {
                    rec.status = JobStatus::Resumed;
                }
                self.telemetry.add(Counter::JobsResumed, 1);
                resumed += 1;
                sup_lane.instant(
                    "job_resumed",
                    vec![("job", ArgValue::from(job.id.as_str()))],
                );
                self.emit(
                    EventKind::JobResumed,
                    i,
                    &job.id,
                    None,
                    vec![("attempts", Field::U64(u64::from(rec.attempts)))],
                );
                records.push(Some(rec));
            } else {
                pending.push(i);
                records.push(None);
            }
            states.push(JobState::new());
        }
        let executed = pending.len();
        let mut journal_error: Option<String> = None;

        if executed > 0 {
            let queue = Mutex::new(Queue {
                items: VecDeque::new(),
                shutdown: false,
            });
            let ready = Condvar::new();
            {
                let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                for &i in &pending {
                    let cancel = CancelToken::new();
                    states[i].cancels.push(cancel.clone());
                    q.items.push_back(Dispatch {
                        index: i,
                        attempt: 1,
                        hedge: false,
                        backoff: None,
                        cancel,
                        flight: states[i].flight.clone(),
                    });
                }
            }
            let (tx, rx) = mpsc::channel::<Event<T>>();
            let workers = self.config.workers.max(1).min(executed.max(1));
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let tx = tx.clone();
                    let queue = &queue;
                    let ready = &ready;
                    scope.spawn(move || self.worker_loop(w, jobs, queue, ready, tx));
                }
                drop(tx);
                self.supervise(
                    jobs,
                    &queue,
                    &ready,
                    rx,
                    &mut states,
                    &mut records,
                    executed,
                    resumed,
                    journal,
                    &mut journal_error,
                    &mut sup_lane,
                );
                // Release the workers.
                let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                q.shutdown = true;
                ready.notify_all();
            });
        }

        let records: Vec<JobRecord<T>> = records
            .into_iter()
            .map(|r| r.expect("every job decided"))
            .collect();
        let quarantined = records
            .iter()
            .filter(|r| r.status == JobStatus::Quarantined)
            .count();
        BatchOutcome {
            records,
            resumed,
            executed,
            quarantined,
            journal_error,
        }
    }

    /// One worker: pop dispatches, run attempts under isolation (and
    /// under the fault scope when a plan is armed), report events.
    fn worker_loop<'a, T: Send>(
        &self,
        worker: usize,
        jobs: &[BatchJob<'a, T>],
        queue: &Mutex<Queue>,
        ready: &Condvar,
        tx: mpsc::Sender<Event<T>>,
    ) {
        let mut lane = self
            .tracer
            .lane(1 + worker as u32, format!("batch-worker-{worker}"));
        loop {
            let dispatch = {
                let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(d) = q.items.pop_front() {
                        break Some(d);
                    }
                    if q.shutdown {
                        break None;
                    }
                    q = ready.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            let Some(d) = dispatch else { return };
            if let Some(delay) = d.backoff {
                (self.sleeper)(&jobs[d.index].id, d.attempt, delay);
            }
            if d.cancel.is_cancelled() {
                // The job was decided while this dispatch sat in queue.
                let _ = tx.send(Event::Finished {
                    index: d.index,
                    attempt: d.attempt,
                    result: Err("cancelled before start".to_string()),
                });
                continue;
            }
            let _ = tx.send(Event::Started {
                index: d.index,
                at: Instant::now(),
            });
            let job = &jobs[d.index];
            let ctx = JobCtx {
                job_id: job.id.clone(),
                attempt: d.attempt,
                cancel: d.cancel.clone(),
                index: d.index,
                flight: d.flight.clone(),
            };
            // Hedge twins race the original attempt, so their lifecycle is
            // schedule-dependent; they go to the event bus (operators want
            // them) but never into the flight ring, which must stay
            // deterministic for byte-identical quarantine postmortems.
            if !d.hedge {
                d.flight.push(format!("attempt {}: started", d.attempt));
            }
            self.emit(
                EventKind::AttemptStart,
                d.index,
                &job.id,
                Some(d.attempt),
                vec![("hedge", Field::Bool(d.hedge))],
            );
            lane.begin(
                "batch_job",
                vec![
                    ("job", ArgValue::from(job.id.as_str())),
                    ("attempt", ArgValue::from(u64::from(d.attempt))),
                    ("hedge", ArgValue::from(u64::from(d.hedge))),
                ],
            );
            let attempt_result = match &self.config.faults {
                Some(plan) => {
                    let plan = plan.clone();
                    catch_isolated(|| {
                        faults::with_scope(plan, &job.id, d.attempt, || {
                            faults::maybe_delay(faults::SITE_BATCH_DELAY, &job.id);
                            faults::maybe_panic(faults::SITE_BATCH_JOB, &job.id);
                            (job.work)(&ctx)
                        })
                    })
                }
                None => catch_isolated(|| (job.work)(&ctx)),
            };
            let result = match attempt_result {
                Ok(r) => r,
                Err(panic_message) => Err(panic_message),
            };
            lane.rewind();
            match &result {
                Ok(_) => {
                    if !d.hedge {
                        d.flight.push(format!("attempt {}: succeeded", d.attempt));
                    }
                    self.emit(
                        EventKind::AttemptEnd,
                        d.index,
                        &job.id,
                        Some(d.attempt),
                        vec![("ok", Field::Bool(true)), ("hedge", Field::Bool(d.hedge))],
                    );
                }
                Err(message) => {
                    if let Some(site) = faults::injected_site(message) {
                        self.emit(
                            EventKind::FaultInjected,
                            d.index,
                            &job.id,
                            Some(d.attempt),
                            vec![("site", Field::Str(site.to_string()))],
                        );
                    }
                    if !d.hedge {
                        d.flight
                            .push(format!("attempt {}: failed: {message}", d.attempt));
                    }
                    self.emit(
                        EventKind::AttemptEnd,
                        d.index,
                        &job.id,
                        Some(d.attempt),
                        vec![
                            ("ok", Field::Bool(false)),
                            ("hedge", Field::Bool(d.hedge)),
                            ("error", Field::Str(message.clone())),
                        ],
                    );
                }
            }
            let _ = tx.send(Event::Finished {
                index: d.index,
                attempt: d.attempt,
                result,
            });
        }
    }

    /// The supervisor: consume worker events, decide retries, hedges,
    /// quarantines; journal every decision.
    #[allow(clippy::too_many_arguments)]
    fn supervise<'a, T: Send>(
        &self,
        jobs: &[BatchJob<'a, T>],
        queue: &Mutex<Queue>,
        ready: &Condvar,
        rx: mpsc::Receiver<Event<T>>,
        states: &mut [JobState],
        records: &mut [Option<JobRecord<T>>],
        mut remaining: usize,
        resumed: usize,
        journal: Option<(&Journal, &JournalCodec<T>)>,
        journal_error: &mut Option<String>,
        lane: &mut crate::trace::Lane<'_>,
    ) {
        let mut walls: Vec<Duration> = Vec::new();
        let mut meter = Meter {
            total: records.len(),
            resumed,
            retried: 0,
            hedged: 0,
            quarantined: 0,
        };
        let mut last_progress = Instant::now();
        self.emit_progress(&meter, remaining, &mut last_progress, true);
        while remaining > 0 {
            let event = match rx.recv_timeout(self.tick) {
                Ok(ev) => ev,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    self.scan_stragglers(jobs, queue, ready, states, &walls, &mut meter, lane);
                    self.emit_progress(&meter, remaining, &mut last_progress, false);
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            };
            match event {
                Event::Started { index, at } => {
                    let st = &mut states[index];
                    st.first_started.get_or_insert(at);
                    st.started.get_or_insert(at);
                }
                Event::Finished {
                    index,
                    attempt,
                    result,
                } => {
                    let st = &mut states[index];
                    st.active = st.active.saturating_sub(1);
                    if st.done {
                        continue; // a twin already decided this job
                    }
                    match result {
                        Ok(payload) => {
                            st.done = true;
                            remaining -= 1;
                            for c in &st.cancels {
                                c.cancel();
                            }
                            let wall = st.first_started.map(|s| s.elapsed()).unwrap_or_default();
                            walls.push(wall);
                            self.telemetry
                                .observe(Metric::JobWallNs, wall.as_nanos() as u64);
                            let rec = JobRecord {
                                id: jobs[index].id.clone(),
                                status: JobStatus::Done,
                                attempts: attempt,
                                payload: Some(payload),
                                incident: None,
                                wall,
                            };
                            self.journal_record(&rec, journal, journal_error);
                            records[index] = Some(rec);
                            self.emit(
                                EventKind::JobDone,
                                index,
                                &jobs[index].id,
                                Some(attempt),
                                vec![("attempts", Field::U64(u64::from(attempt)))],
                            );
                            self.emit_progress(&meter, remaining, &mut last_progress, false);
                        }
                        Err(message) => {
                            if message == st.last_failure.as_deref().unwrap_or("") {
                                st.identical_failures += 1;
                            } else {
                                st.identical_failures = 1;
                                st.last_failure = Some(message.clone());
                            }
                            if st.active > 0 {
                                continue; // a hedge twin is still in flight
                            }
                            let injected = faults::is_injected(&message);
                            let deterministic = !injected && st.identical_failures >= 2;
                            if st.attempts_launched >= self.config.max_attempts || deterministic {
                                st.done = true;
                                remaining -= 1;
                                meter.quarantined += 1;
                                self.telemetry.add(Counter::JobsQuarantined, 1);
                                lane.instant(
                                    "job_quarantined",
                                    vec![
                                        ("job", ArgValue::from(jobs[index].id.as_str())),
                                        (
                                            "attempts",
                                            ArgValue::from(u64::from(st.attempts_launched)),
                                        ),
                                    ],
                                );
                                let wall =
                                    st.first_started.map(|s| s.elapsed()).unwrap_or_default();
                                st.flight.push(format!(
                                    "quarantined after {} attempt(s)",
                                    st.attempts_launched
                                ));
                                self.emit(
                                    EventKind::JobQuarantined,
                                    index,
                                    &jobs[index].id,
                                    Some(st.attempts_launched),
                                    vec![
                                        ("attempts", Field::U64(u64::from(st.attempts_launched))),
                                        ("error", Field::Str(message.clone())),
                                    ],
                                );
                                let rec = JobRecord {
                                    id: jobs[index].id.clone(),
                                    status: JobStatus::Quarantined,
                                    attempts: st.attempts_launched,
                                    payload: None,
                                    incident: Some(Incident {
                                        kind: IncidentKind::Quarantined,
                                        name: jobs[index].id.clone(),
                                        message,
                                        rung: 0,
                                        flight: st.flight.dump(),
                                    }),
                                    wall,
                                };
                                self.journal_record(&rec, journal, journal_error);
                                records[index] = Some(rec);
                                self.emit_progress(&meter, remaining, &mut last_progress, false);
                            } else {
                                let next = st.attempts_launched + 1;
                                st.attempts_launched = next;
                                st.active = 1;
                                st.hedged = false;
                                st.started = None;
                                meter.retried += 1;
                                self.telemetry.add(Counter::JobsRetried, 1);
                                lane.instant(
                                    "job_retry",
                                    vec![
                                        ("job", ArgValue::from(jobs[index].id.as_str())),
                                        ("attempt", ArgValue::from(u64::from(next))),
                                    ],
                                );
                                let cancel = CancelToken::new();
                                st.cancels = vec![cancel.clone()];
                                let backoff = self.config.backoff.delay(&jobs[index].id, next - 1);
                                st.flight.push(format!(
                                    "retry: attempt {next} scheduled (backoff {} ms)",
                                    backoff.as_millis()
                                ));
                                self.emit(
                                    EventKind::JobRetry,
                                    index,
                                    &jobs[index].id,
                                    Some(next),
                                    vec![("backoff_ms", Field::U64(backoff.as_millis() as u64))],
                                );
                                let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                                q.items.push_back(Dispatch {
                                    index,
                                    attempt: next,
                                    hedge: false,
                                    backoff: Some(backoff),
                                    cancel,
                                    flight: st.flight.clone(),
                                });
                                ready.notify_one();
                            }
                        }
                    }
                }
            }
        }
        self.emit_progress(&meter, remaining, &mut last_progress, true);
    }

    /// Hedge any job running past `max(p99, min_age)` once enough jobs
    /// have completed.
    #[allow(clippy::too_many_arguments)]
    fn scan_stragglers<'a, T>(
        &self,
        jobs: &[BatchJob<'a, T>],
        queue: &Mutex<Queue>,
        ready: &Condvar,
        states: &mut [JobState],
        walls: &[Duration],
        meter: &mut Meter,
        lane: &mut crate::trace::Lane<'_>,
    ) {
        let Some(hedge) = &self.config.hedge else {
            return;
        };
        if walls.len() < hedge.min_completed {
            return;
        }
        let threshold = p99(walls).max(hedge.min_age);
        for (i, st) in states.iter_mut().enumerate() {
            if st.done || st.hedged || st.active != 1 {
                continue;
            }
            let Some(started) = st.started else { continue };
            if started.elapsed() <= threshold {
                continue;
            }
            st.hedged = true;
            st.active += 1;
            meter.hedged += 1;
            self.telemetry.add(Counter::JobsHedged, 1);
            lane.instant(
                "job_hedged",
                vec![
                    ("job", ArgValue::from(jobs[i].id.as_str())),
                    ("attempt", ArgValue::from(u64::from(st.attempts_launched))),
                ],
            );
            // Bus only: hedge launches are schedule-dependent, so they
            // never enter the deterministic flight ring.
            self.emit(
                EventKind::JobHedged,
                i,
                &jobs[i].id,
                Some(st.attempts_launched),
                Vec::new(),
            );
            let cancel = CancelToken::new();
            st.cancels.push(cancel.clone());
            let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
            q.items.push_back(Dispatch {
                index: i,
                attempt: st.attempts_launched,
                hedge: true,
                backoff: None,
                cancel,
                flight: st.flight.clone(),
            });
            ready.notify_one();
        }
    }

    fn journal_record<T>(
        &self,
        rec: &JobRecord<T>,
        journal: Option<(&Journal, &JournalCodec<T>)>,
        journal_error: &mut Option<String>,
    ) {
        let Some((journal, codec)) = journal else {
            return;
        };
        if journal_error.is_some() {
            return; // journaling already broke; don't spam errors
        }
        if let Err(e) = journal.record(rec, codec) {
            *journal_error = Some(format!(
                "journal write failed at {}: {e}",
                journal.path().display()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceLevel;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn engine_parts() -> (Telemetry, Tracer) {
        (Telemetry::new(), Tracer::new(TraceLevel::Off))
    }

    fn no_hedge(mut config: BatchConfig) -> BatchConfig {
        config.hedge = None;
        config
    }

    #[test]
    fn backoff_schedule_is_exponential_jittered_and_deterministic() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 42,
        };
        for attempt in 1..=6u32 {
            let exp = Duration::from_millis(10 * (1 << (attempt - 1))).min(policy.cap);
            let d = policy.delay("job-x", attempt);
            assert_eq!(d, policy.delay("job-x", attempt), "deterministic");
            assert!(
                d >= exp.mul_f64(0.5) && d < exp,
                "jitter in [0.5, 1.0) of {exp:?}: {d:?}"
            );
        }
        assert_ne!(
            policy.delay("job-x", 1),
            policy.delay("job-y", 1),
            "jobs decorrelate"
        );
        let reseeded = BackoffPolicy {
            seed: 43,
            ..policy.clone()
        };
        assert_ne!(policy.delay("job-x", 1), reseeded.delay("job-x", 1));
    }

    #[test]
    fn failing_job_follows_the_exact_retry_schedule_then_succeeds() {
        let (telemetry, tracer) = engine_parts();
        let config = no_hedge(BatchConfig {
            workers: 1,
            max_attempts: 5,
            ..BatchConfig::default()
        });
        let backoff = config.backoff.clone();
        let slept: Arc<Mutex<Vec<(String, u32, Duration)>>> = Arc::default();
        let slept_rec = slept.clone();
        let engine = BatchEngine::new(config, &telemetry, &tracer).with_sleeper(
            move |job: &str, attempt: u32, d: Duration| {
                slept_rec
                    .lock()
                    .unwrap()
                    .push((job.to_string(), attempt, d));
            },
        );
        let calls = AtomicUsize::new(0);
        let jobs = vec![BatchJob::new("flaky", |ctx: &JobCtx| {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(format!("transient glitch on attempt {}", ctx.attempt))
            } else {
                Ok(ctx.attempt)
            }
        })];
        let outcome = engine.run(&jobs, None, BTreeMap::new());
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.records[0].status, JobStatus::Done);
        assert_eq!(outcome.records[0].attempts, 3);
        assert_eq!(outcome.records[0].payload, Some(3));
        let slept = slept.lock().unwrap().clone();
        assert_eq!(
            slept,
            vec![
                ("flaky".to_string(), 2, backoff.delay("flaky", 1)),
                ("flaky".to_string(), 3, backoff.delay("flaky", 2)),
            ],
            "exact, seed-reproducible retry schedule"
        );
        assert_eq!(telemetry.get(Counter::JobsRetried), 2);
        assert_eq!(telemetry.get(Counter::JobsQuarantined), 0);
        assert_eq!(telemetry.get(Counter::JobsTotal), 1);
    }

    #[test]
    fn repeated_identical_failures_quarantine_early_with_structured_incident() {
        let (telemetry, tracer) = engine_parts();
        let config = no_hedge(BatchConfig {
            workers: 2,
            max_attempts: 9,
            ..BatchConfig::default()
        });
        let engine = BatchEngine::new(config, &telemetry, &tracer).with_sleeper(|_, _, _| {});
        let jobs = vec![
            BatchJob::new("sick", |_: &JobCtx| -> Result<u32, String> {
                Err("segfault in module lowering".to_string())
            }),
            BatchJob::new("healthy", |_: &JobCtx| Ok(7)),
        ];
        let outcome = engine.run(&jobs, None, BTreeMap::new());
        let sick = &outcome.records[0];
        assert_eq!(sick.status, JobStatus::Quarantined);
        assert_eq!(sick.attempts, 2, "identical messages quarantine early");
        let incident = sick.incident.as_ref().expect("structured incident");
        assert_eq!(incident.kind, IncidentKind::Quarantined);
        assert_eq!(incident.name, "sick");
        assert_eq!(incident.message, "segfault in module lowering");
        assert_eq!(outcome.records[1].status, JobStatus::Done);
        assert_eq!(outcome.quarantined, 1);
        assert_eq!(telemetry.get(Counter::JobsQuarantined), 1);
    }

    #[test]
    fn varying_failures_quarantine_at_max_attempts() {
        let (telemetry, tracer) = engine_parts();
        let config = no_hedge(BatchConfig {
            workers: 1,
            max_attempts: 4,
            ..BatchConfig::default()
        });
        let engine = BatchEngine::new(config, &telemetry, &tracer).with_sleeper(|_, _, _| {});
        let jobs = vec![BatchJob::new(
            "doomed",
            |ctx: &JobCtx| -> Result<u32, String> {
                Err(format!("distinct failure #{}", ctx.attempt))
            },
        )];
        let outcome = engine.run(&jobs, None, BTreeMap::new());
        assert_eq!(outcome.records[0].status, JobStatus::Quarantined);
        assert_eq!(outcome.records[0].attempts, 4);
        assert_eq!(telemetry.get(Counter::JobsRetried), 3);
    }

    #[test]
    fn injected_marker_panics_are_transient_even_when_identical() {
        let (telemetry, tracer) = engine_parts();
        let config = no_hedge(BatchConfig {
            workers: 1,
            max_attempts: 4,
            ..BatchConfig::default()
        });
        let engine = BatchEngine::new(config, &telemetry, &tracer).with_sleeper(|_, _, _| {});
        let calls = AtomicUsize::new(0);
        let jobs = vec![BatchJob::new("glitchy", |_: &JobCtx| {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                // Same message both times; the marker keeps it transient.
                panic!("injected fault: synthetic");
            }
            Ok(1u32)
        })];
        let outcome = engine.run(&jobs, None, BTreeMap::new());
        assert_eq!(outcome.records[0].status, JobStatus::Done);
        assert_eq!(outcome.records[0].attempts, 3);
        assert_eq!(telemetry.get(Counter::JobsRetried), 2);
        assert_eq!(telemetry.get(Counter::JobsQuarantined), 0);
    }

    #[test]
    fn straggler_gets_hedged_and_the_loser_is_cancelled() {
        let (telemetry, tracer) = engine_parts();
        let config = BatchConfig {
            workers: 2,
            max_attempts: 3,
            hedge: Some(HedgePolicy {
                min_completed: 3,
                min_age: Duration::from_millis(20),
            }),
            ..BatchConfig::default()
        };
        let engine = BatchEngine::new(config, &telemetry, &tracer);
        let straggler_runs = AtomicUsize::new(0);
        let loser_saw_cancel = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let saw = loser_saw_cancel.clone();
        let mut jobs: Vec<BatchJob<'_, u32>> = (0..4)
            .map(|i| BatchJob::new(format!("fast-{i}"), |_: &JobCtx| Ok(0u32)))
            .collect();
        jobs.push(BatchJob::new("straggler", move |ctx: &JobCtx| {
            if straggler_runs.fetch_add(1, Ordering::SeqCst) == 0 {
                // First execution stalls until its hedge twin wins.
                let start = Instant::now();
                while !ctx.cancel.is_cancelled() {
                    if start.elapsed() > Duration::from_secs(10) {
                        return Err("never cancelled".to_string());
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                saw.store(true, Ordering::SeqCst);
                Err("cancelled".to_string())
            } else {
                Ok(99)
            }
        }));
        let outcome = engine.run(&jobs, None, BTreeMap::new());
        let rec = outcome
            .records
            .iter()
            .find(|r| r.id == "straggler")
            .unwrap();
        assert_eq!(rec.status, JobStatus::Done);
        assert_eq!(rec.payload, Some(99));
        assert_eq!(telemetry.get(Counter::JobsHedged), 1);
        assert!(
            loser_saw_cancel.load(Ordering::SeqCst),
            "losing twin observed its CancelToken"
        );
        assert_eq!(telemetry.get(Counter::JobsQuarantined), 0);
    }

    #[test]
    fn journal_round_trips_and_resume_skips_completed_jobs() {
        let dir = std::env::temp_dir().join(format!(
            "gcatch-batch-journal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        let ids: Vec<String> = (0..3).map(|i| format!("mod-{i}")).collect();
        let codec = JournalCodec::raw_json();
        let (telemetry, tracer) = engine_parts();
        let engine = BatchEngine::new(
            no_hedge(BatchConfig {
                workers: 2,
                ..BatchConfig::default()
            }),
            &telemetry,
            &tracer,
        );
        let jobs: Vec<BatchJob<'_, String>> = ids
            .iter()
            .map(|id| {
                let id = id.clone();
                BatchJob::new(id.clone(), move |_: &JobCtx| {
                    Ok(format!("{{\"module\":\"{id}\"}}"))
                })
            })
            .collect();
        {
            let journal = Journal::create(&path, &ids).unwrap();
            let outcome = engine.run(&jobs, Some((&journal, &codec)), BTreeMap::new());
            assert_eq!(outcome.executed, 3);
            assert!(outcome.journal_error.is_none());
        }

        // Full resume: everything restored, nothing re-run.
        let (telemetry2, tracer2) = engine_parts();
        let engine2 = BatchEngine::new(BatchConfig::default(), &telemetry2, &tracer2);
        let (journal2, restored) = Journal::open_resume(&path, &ids, &codec).unwrap();
        assert_eq!(restored.len(), 3);
        let poisoned: Vec<BatchJob<'_, String>> = ids
            .iter()
            .map(|id| {
                BatchJob::new(id.clone(), |_: &JobCtx| {
                    panic!("restored job must not re-run")
                })
            })
            .collect();
        let outcome = engine2.run(&poisoned, Some((&journal2, &codec)), restored);
        assert_eq!(outcome.resumed, 3);
        assert_eq!(outcome.executed, 0);
        assert!(outcome
            .records
            .iter()
            .all(|r| r.status == JobStatus::Resumed));
        assert_eq!(telemetry2.get(Counter::JobsResumed), 3);
        assert_eq!(
            outcome.records[1].payload.as_deref(),
            Some("{\"module\":\"mod-1\"}")
        );

        // Truncation mid-line: the torn record is dropped, its job re-runs.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 7);
        std::fs::write(&path, &bytes).unwrap();
        let (torn, partial) = Journal::open_resume(&path, &ids, &codec).unwrap();
        assert_eq!(partial.len(), 2, "torn trailing line dropped");

        // Self-healing: the torn tail is chopped before appending, so a
        // record written now is visible to the *next* resume too.
        torn.record(
            &JobRecord {
                id: "mod-2".to_string(),
                status: JobStatus::Done,
                attempts: 1,
                payload: Some("{\"module\":\"mod-2\"}".to_string()),
                incident: None,
                wall: Duration::ZERO,
            },
            &codec,
        )
        .unwrap();
        drop(torn);
        let (_, healed) = Journal::open_resume(&path, &ids, &codec).unwrap();
        assert_eq!(healed.len(), 3, "appended record survives a second resume");

        // A different job set is refused.
        let other: Vec<String> = vec!["unrelated".to_string()];
        let err = Journal::open_resume(&path, &other, &codec).unwrap_err();
        assert!(err.contains("different job set"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantined_records_survive_the_journal() {
        let dir = std::env::temp_dir().join(format!(
            "gcatch-batch-quarantine-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        let ids = vec!["bad \"name\"\n".to_string()];
        let codec: JournalCodec<String> = JournalCodec::raw_json();
        let journal = Journal::create(&path, &ids).unwrap();
        journal
            .record(
                &JobRecord {
                    id: ids[0].clone(),
                    status: JobStatus::Quarantined,
                    attempts: 3,
                    payload: None,
                    incident: Some(Incident {
                        kind: IncidentKind::Quarantined,
                        name: ids[0].clone(),
                        message: "panic: \"boom\"\nwith newline".to_string(),
                        rung: 0,
                        flight: vec![
                            "attempt 1: failed: panic: \"boom\"\nwith newline".to_string(),
                            "quarantined after 3 attempt(s)".to_string(),
                        ],
                    }),
                    wall: Duration::from_millis(5),
                },
                &codec,
            )
            .unwrap();
        let (_, restored) = Journal::open_resume(&path, &ids, &codec).unwrap();
        let rec = restored.get(ids[0].as_str()).expect("restored");
        assert_eq!(rec.status, JobStatus::Quarantined);
        assert_eq!(rec.attempts, 3);
        let inc = rec.incident.as_ref().unwrap();
        assert_eq!(inc.message, "panic: \"boom\"\nwith newline");
        assert_eq!(
            inc.flight,
            vec![
                "attempt 1: failed: panic: \"boom\"\nwith newline".to_string(),
                "quarantined after 3 attempt(s)".to_string(),
            ],
            "flight dump round-trips through the journal"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_job_fault_site_drives_retry_then_success() {
        let (telemetry, tracer) = engine_parts();
        let mut config = no_hedge(BatchConfig {
            workers: 2,
            max_attempts: 6,
            ..BatchConfig::default()
        });
        config.faults = Some(Arc::new(
            FaultPlan::new(0.5, 7)
                .with_sites([faults::SITE_BATCH_JOB])
                .with_delay(Duration::ZERO),
        ));
        let engine = BatchEngine::new(config, &telemetry, &tracer).with_sleeper(|_, _, _| {});
        let jobs: Vec<BatchJob<'_, u32>> = (0..8)
            .map(|i| BatchJob::new(format!("mod-{i}"), |ctx: &JobCtx| Ok(ctx.attempt)))
            .collect();
        let outcome = engine.run(&jobs, None, BTreeMap::new());
        assert!(outcome.records.iter().all(|r| r.status == JobStatus::Done));
        // With rate 0.5 over 8 jobs some first attempts must fire; all
        // injected faults are transient, so everything still completes.
        assert!(telemetry.get(Counter::JobsRetried) > 0);
        assert_eq!(telemetry.get(Counter::JobsQuarantined), 0);
        // And the same seed reproduces the same attempt counts.
        let (telemetry2, tracer2) = engine_parts();
        let mut config2 = no_hedge(BatchConfig {
            workers: 2,
            max_attempts: 6,
            ..BatchConfig::default()
        });
        config2.faults = Some(Arc::new(
            FaultPlan::new(0.5, 7)
                .with_sites([faults::SITE_BATCH_JOB])
                .with_delay(Duration::ZERO),
        ));
        let engine2 = BatchEngine::new(config2, &telemetry2, &tracer2).with_sleeper(|_, _, _| {});
        let outcome2 = engine2.run(&jobs, None, BTreeMap::new());
        let attempts =
            |o: &BatchOutcome<u32>| o.records.iter().map(|r| r.attempts).collect::<Vec<_>>();
        assert_eq!(attempts(&outcome), attempts(&outcome2));
    }

    #[test]
    fn exact_p99_matches_rank_definition() {
        assert_eq!(p99(&[]), Duration::ZERO);
        let walls: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(p99(&walls), Duration::from_millis(99));
        assert_eq!(p99(&walls[..10]), Duration::from_millis(10));
    }
}
