//! Counters and stage timers threaded through the detection pipeline.
//!
//! A [`Telemetry`] lives on the
//! [`AnalysisSession`](crate::session::AnalysisSession) and is written with
//! relaxed atomics so the per-channel BMOC workers can share it across
//! [`std::thread::scope`] threads without locks. [`Telemetry::snapshot`]
//! freezes the counters into a plain [`Stats`] value for reporting
//! (`gcatch check --stats`, the census harness, the bench binaries).

use crate::trace::{HistSnapshot, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Pipeline stages with an attributed wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Whole-module points-to / call-graph analysis + primitive discovery.
    Analysis,
    /// Scope computation and Pset construction (§3.2).
    Disentangle,
    /// Path enumeration and combination building (§3.3).
    Paths,
    /// Constraint encoding and solving (§3.4).
    Constraints,
    /// The five traditional checkers (§3.5).
    Traditional,
    /// GFix patch synthesis (§4); recorded by the fixing pipeline, not by
    /// detection itself.
    Fix,
}

impl Stage {
    const COUNT: usize = 6;

    fn index(self) -> usize {
        match self {
            Stage::Analysis => 0,
            Stage::Disentangle => 1,
            Stage::Paths => 2,
            Stage::Constraints => 3,
            Stage::Traditional => 4,
            Stage::Fix => 5,
        }
    }

    /// Stable lowercase stage name (JSON keys, `--stats` output).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Analysis => "analysis",
            Stage::Disentangle => "disentangle",
            Stage::Paths => "paths",
            Stage::Constraints => "constraints",
            Stage::Traditional => "traditional",
            Stage::Fix => "fix",
        }
    }

    /// All stages in reporting order.
    pub fn all() -> [Stage; Stage::COUNT] {
        [
            Stage::Analysis,
            Stage::Disentangle,
            Stage::Paths,
            Stage::Constraints,
            Stage::Traditional,
            Stage::Fix,
        ]
    }
}

/// Monotonic event counters recorded during detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Channels examined by the BMOC driver.
    ChannelsAnalyzed,
    /// Psets computed (one per disentangled channel).
    PsetsComputed,
    /// Total primitives across all computed Psets.
    PsetPrimsTotal,
    /// Execution paths enumerated.
    PathsEnumerated,
    /// Branches pruned as infeasible during path enumeration.
    BranchesPruned,
    /// Path combinations built.
    CombosBuilt,
    /// Suspicious groups submitted to the solver.
    GroupsChecked,
    /// Solver queries issued.
    SolverQueries,
    /// Total solver propagation/decision steps.
    SolverSteps,
    /// Total solver decisions.
    SolverDecisions,
    /// Total solver conflicts.
    SolverConflicts,
    /// Queries answered by reusing an already-built combination encoding
    /// (incremental strategy: one encoding per combination, one assumption
    /// query per group).
    SolverEncodingsReused,
    /// Learned clauses retained from earlier queries of the same
    /// combination at the moment a reusing query started.
    LearnedClausesKept,
    /// Bug reports emitted (before cross-checker dedup).
    ReportsEmitted,
    /// Reports dropped by cross-checker deduplication.
    DuplicatesDropped,
    /// Channels whose analysis gave up after exhausting every rung of
    /// the degradation ladder (results for them are partial).
    IncompleteChannels,
    /// Jobs submitted to the batch engine (restored + executed).
    JobsTotal,
    /// Batch job attempts re-dispatched after a contained failure.
    JobsRetried,
    /// Batch jobs that got a hedge twin after straggling past the
    /// completed-job p99.
    JobsHedged,
    /// Batch jobs set aside after exhausting their retry budget.
    JobsQuarantined,
    /// Batch jobs restored from a checkpoint journal instead of re-run.
    JobsResumed,
    /// Points-to component solves actually performed by the alias engine
    /// (demand mode solves one per queried reference component; eager
    /// mode reports a single whole-module solve).
    AliasQueriesSolved,
    /// Functions whose points-to constraints were never solved because no
    /// checker asked about them (demand mode only).
    AliasFunctionsSkipped,
    /// Channel verdicts answered from a structurally identical channel's
    /// cached encoding instead of fresh solver work.
    ChannelEncodingsShared,
    /// Sweep jobs released back to the queue after their lease expired or
    /// their worker died (each release makes the job claimable again).
    JobsReleases,
    /// Sweep leases whose deadline passed before the owner renewed them.
    LeasesExpired,
    /// Worker processes spawned by the sweep coordinator (initial fleet
    /// plus replacements).
    WorkersSpawned,
    /// Worker processes the coordinator declared dead (exited abnormally
    /// or missed the heartbeat deadline and were killed).
    WorkersLost,
    /// Requests received by the serve daemon (every parsed request line,
    /// control ops and shed requests included).
    RequestsTotal,
    /// Requests shed by admission control because the queue was at
    /// `--max-queue` depth (answered with an `overloaded` response).
    RequestsShed,
    /// Requests answered with an incident response (contained panic,
    /// expired deadline, executor error, or unparseable request line).
    RequestsFailed,
    /// Requests answered from the content-hashed response cache instead
    /// of re-running the analysis.
    CacheHits,
    /// Cache entries evicted after the cache exceeded `--max-cache`
    /// (oldest insertion first).
    CacheEvictions,
    /// Check requests answered with help from a warm per-module session
    /// (at least the diff ran against cached artifacts; see
    /// `channels_replayed` for how much work was actually skipped).
    SessionsReused,
    /// Channels re-analyzed from scratch on a warm check because the
    /// module diff could reach them.
    ChannelsReanalyzed,
    /// Channels whose verdict, witnesses, and provenance were replayed
    /// from a warm session instead of being re-analyzed.
    ChannelsReplayed,
    /// Warm sessions dropped: LRU pressure past `--max-sessions`, an
    /// injected `serve.session` fault, or an incomparable module shape.
    SessionEvictions,
}

impl Counter {
    const COUNT: usize = 37;

    fn index(self) -> usize {
        match self {
            Counter::ChannelsAnalyzed => 0,
            Counter::PsetsComputed => 1,
            Counter::PsetPrimsTotal => 2,
            Counter::PathsEnumerated => 3,
            Counter::BranchesPruned => 4,
            Counter::CombosBuilt => 5,
            Counter::GroupsChecked => 6,
            Counter::SolverQueries => 7,
            Counter::SolverSteps => 8,
            Counter::SolverDecisions => 9,
            Counter::SolverConflicts => 10,
            Counter::SolverEncodingsReused => 11,
            Counter::LearnedClausesKept => 12,
            Counter::ReportsEmitted => 13,
            Counter::DuplicatesDropped => 14,
            Counter::IncompleteChannels => 15,
            Counter::JobsTotal => 16,
            Counter::JobsRetried => 17,
            Counter::JobsHedged => 18,
            Counter::JobsQuarantined => 19,
            Counter::JobsResumed => 20,
            Counter::AliasQueriesSolved => 21,
            Counter::AliasFunctionsSkipped => 22,
            Counter::ChannelEncodingsShared => 23,
            Counter::JobsReleases => 24,
            Counter::LeasesExpired => 25,
            Counter::WorkersSpawned => 26,
            Counter::WorkersLost => 27,
            Counter::RequestsTotal => 28,
            Counter::RequestsShed => 29,
            Counter::RequestsFailed => 30,
            Counter::CacheHits => 31,
            Counter::CacheEvictions => 32,
            Counter::SessionsReused => 33,
            Counter::ChannelsReanalyzed => 34,
            Counter::ChannelsReplayed => 35,
            Counter::SessionEvictions => 36,
        }
    }

    /// Stable snake_case counter name (JSON keys, `--stats` output).
    pub fn name(self) -> &'static str {
        match self {
            Counter::ChannelsAnalyzed => "channels_analyzed",
            Counter::PsetsComputed => "psets_computed",
            Counter::PsetPrimsTotal => "pset_prims_total",
            Counter::PathsEnumerated => "paths_enumerated",
            Counter::BranchesPruned => "branches_pruned",
            Counter::CombosBuilt => "combos_built",
            Counter::GroupsChecked => "groups_checked",
            Counter::SolverQueries => "solver_queries",
            Counter::SolverSteps => "solver_steps",
            Counter::SolverDecisions => "solver_decisions",
            Counter::SolverConflicts => "solver_conflicts",
            Counter::SolverEncodingsReused => "solver_encodings_reused",
            Counter::LearnedClausesKept => "learned_clauses_kept",
            Counter::ReportsEmitted => "reports_emitted",
            Counter::DuplicatesDropped => "duplicates_dropped",
            Counter::IncompleteChannels => "incomplete_channels",
            Counter::JobsTotal => "jobs_total",
            Counter::JobsRetried => "jobs_retried",
            Counter::JobsHedged => "jobs_hedged",
            Counter::JobsQuarantined => "jobs_quarantined",
            Counter::JobsResumed => "jobs_resumed",
            Counter::AliasQueriesSolved => "alias_queries_solved",
            Counter::AliasFunctionsSkipped => "alias_functions_skipped",
            Counter::ChannelEncodingsShared => "channel_encodings_shared",
            Counter::JobsReleases => "jobs_releases",
            Counter::LeasesExpired => "leases_expired",
            Counter::WorkersSpawned => "workers_spawned",
            Counter::WorkersLost => "workers_lost",
            Counter::RequestsTotal => "requests_total",
            Counter::RequestsShed => "requests_shed",
            Counter::RequestsFailed => "requests_failed",
            Counter::CacheHits => "cache_hits",
            Counter::CacheEvictions => "cache_evictions",
            Counter::SessionsReused => "sessions_reused",
            Counter::ChannelsReanalyzed => "channels_reanalyzed",
            Counter::ChannelsReplayed => "channels_replayed",
            Counter::SessionEvictions => "session_evictions",
        }
    }

    /// The subsystem a counter belongs to (grouping for `--stats` text
    /// and the Prometheus metric HELP lines). Every counter maps to
    /// exactly one of [`Counter::subsystems`].
    pub fn subsystem(self) -> &'static str {
        match self {
            Counter::AliasQueriesSolved | Counter::AliasFunctionsSkipped => "alias",
            Counter::SolverQueries
            | Counter::SolverSteps
            | Counter::SolverDecisions
            | Counter::SolverConflicts
            | Counter::SolverEncodingsReused
            | Counter::LearnedClausesKept
            | Counter::ChannelEncodingsShared => "solver",
            Counter::JobsTotal
            | Counter::JobsRetried
            | Counter::JobsHedged
            | Counter::JobsQuarantined
            | Counter::JobsResumed => "batch",
            Counter::JobsReleases
            | Counter::LeasesExpired
            | Counter::WorkersSpawned
            | Counter::WorkersLost => "sweep",
            Counter::RequestsTotal
            | Counter::RequestsShed
            | Counter::RequestsFailed
            | Counter::CacheHits
            | Counter::CacheEvictions
            | Counter::SessionsReused
            | Counter::ChannelsReanalyzed
            | Counter::ChannelsReplayed
            | Counter::SessionEvictions => "serve",
            Counter::ChannelsAnalyzed
            | Counter::PsetsComputed
            | Counter::PsetPrimsTotal
            | Counter::PathsEnumerated
            | Counter::BranchesPruned
            | Counter::CombosBuilt
            | Counter::GroupsChecked
            | Counter::ReportsEmitted
            | Counter::DuplicatesDropped
            | Counter::IncompleteChannels => "detector",
        }
    }

    /// Subsystem display order for grouped `--stats` text.
    pub fn subsystems() -> [&'static str; 6] {
        ["alias", "solver", "batch", "sweep", "serve", "detector"]
    }

    /// All counters in reporting order.
    pub fn all() -> [Counter; Counter::COUNT] {
        [
            Counter::ChannelsAnalyzed,
            Counter::PsetsComputed,
            Counter::PsetPrimsTotal,
            Counter::PathsEnumerated,
            Counter::BranchesPruned,
            Counter::CombosBuilt,
            Counter::GroupsChecked,
            Counter::SolverQueries,
            Counter::SolverSteps,
            Counter::SolverDecisions,
            Counter::SolverConflicts,
            Counter::SolverEncodingsReused,
            Counter::LearnedClausesKept,
            Counter::ReportsEmitted,
            Counter::DuplicatesDropped,
            Counter::IncompleteChannels,
            Counter::JobsTotal,
            Counter::JobsRetried,
            Counter::JobsHedged,
            Counter::JobsQuarantined,
            Counter::JobsResumed,
            Counter::AliasQueriesSolved,
            Counter::AliasFunctionsSkipped,
            Counter::ChannelEncodingsShared,
            Counter::JobsReleases,
            Counter::LeasesExpired,
            Counter::WorkersSpawned,
            Counter::WorkersLost,
            Counter::RequestsTotal,
            Counter::RequestsShed,
            Counter::RequestsFailed,
            Counter::CacheHits,
            Counter::CacheEvictions,
            Counter::SessionsReused,
            Counter::ChannelsReanalyzed,
            Counter::ChannelsReplayed,
            Counter::SessionEvictions,
        ]
    }
}

/// Distributions recorded as log-bucketed [`Histogram`]s.
///
/// The two `*Ns` metrics are wall-clock samples in nanoseconds; the
/// remaining metrics are plain counts whose distributions are deterministic
/// (independent of `--jobs` and machine speed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Per-channel BMOC detection latency (ns; one sample per channel).
    ChannelDetectNs,
    /// Per-query solver time (ns; one sample per `minismt` query).
    SolverQueryNs,
    /// Paths enumerated per channel.
    PathsPerChannel,
    /// Path combinations built per channel.
    CombosPerChannel,
    /// Per-job wall-clock time in the batch engine (ns; one sample per
    /// completed job, hedges and retries included in the winner's time).
    JobWallNs,
    /// End-to-end wall-clock per checked module (ns; one sample per
    /// module — analysis through report rendering).
    ModuleWallNs,
}

impl Metric {
    const COUNT: usize = 6;

    fn index(self) -> usize {
        match self {
            Metric::ChannelDetectNs => 0,
            Metric::SolverQueryNs => 1,
            Metric::PathsPerChannel => 2,
            Metric::CombosPerChannel => 3,
            Metric::JobWallNs => 4,
            Metric::ModuleWallNs => 5,
        }
    }

    /// Stable snake_case metric name (JSON keys, `--stats` output).
    pub fn name(self) -> &'static str {
        match self {
            Metric::ChannelDetectNs => "channel_detect_ns",
            Metric::SolverQueryNs => "solver_query_ns",
            Metric::PathsPerChannel => "paths_per_channel",
            Metric::CombosPerChannel => "combos_per_channel",
            Metric::JobWallNs => "job_wall_ns",
            Metric::ModuleWallNs => "module_wall_ns",
        }
    }

    /// Whether samples are nanosecond durations (rendered as ms) rather
    /// than plain counts.
    pub fn is_time(self) -> bool {
        matches!(
            self,
            Metric::ChannelDetectNs
                | Metric::SolverQueryNs
                | Metric::JobWallNs
                | Metric::ModuleWallNs
        )
    }

    /// All metrics in reporting order.
    pub fn all() -> [Metric; Metric::COUNT] {
        [
            Metric::ChannelDetectNs,
            Metric::SolverQueryNs,
            Metric::PathsPerChannel,
            Metric::CombosPerChannel,
            Metric::JobWallNs,
            Metric::ModuleWallNs,
        ]
    }
}

/// Shared, thread-safe telemetry sink.
#[derive(Debug)]
pub struct Telemetry {
    counters: [AtomicU64; Counter::COUNT],
    stage_ns: [AtomicU64; Stage::COUNT],
    hists: [Histogram; Metric::COUNT],
}

impl Default for Telemetry {
    // Hand-written: `Default` for arrays stops at 32 elements and the
    // counter family is past that now.
    fn default() -> Telemetry {
        Telemetry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| Histogram::default()),
        }
    }
}

impl Telemetry {
    /// A zeroed telemetry sink.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Adds `n` to a counter.
    pub fn add(&self, counter: Counter, n: u64) {
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Attributes `d` of wall-clock time to a stage.
    pub fn record(&self, stage: Stage, d: Duration) {
        self.stage_ns[stage.index()].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Runs `f`, attributing its wall-clock time to `stage`.
    ///
    /// Stage times are additive: concurrent workers timing the same stage
    /// sum their individual durations (CPU-time-like, not elapsed).
    pub fn time<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(stage, start.elapsed());
        out
    }

    /// Accumulated time of one stage.
    pub fn stage_time(&self, stage: Stage) -> Duration {
        Duration::from_nanos(self.stage_ns[stage.index()].load(Ordering::Relaxed))
    }

    /// Records one sample into a metric's histogram.
    pub fn observe(&self, metric: Metric, v: u64) {
        self.hists[metric.index()].record(v);
    }

    /// The live histogram behind one metric.
    pub fn hist(&self, metric: Metric) -> &Histogram {
        &self.hists[metric.index()]
    }

    /// Folds another solver run's effort counters in, and samples its
    /// elapsed time into [`Metric::SolverQueryNs`].
    pub fn add_solver_stats(&self, stats: minismt::SolverStats) {
        self.add(Counter::SolverQueries, 1);
        self.add(Counter::SolverSteps, stats.steps);
        self.add(Counter::SolverDecisions, stats.decisions);
        self.add(Counter::SolverConflicts, stats.conflicts);
        self.observe(Metric::SolverQueryNs, stats.elapsed.as_nanos() as u64);
    }

    /// Folds a frozen [`Stats`] snapshot from another session into this
    /// sink: counters add, stage times add, histograms merge bin-wise.
    /// The batch engine uses this to aggregate each job's session stats
    /// into one run-wide view (the `--jobs` histogram-merge idea, one
    /// level up).
    pub fn absorb(&self, stats: &Stats) {
        for (c, v) in &stats.counters {
            if *v > 0 {
                self.add(*c, *v);
            }
        }
        for (s, d) in &stats.stages {
            if !d.is_zero() {
                self.record(*s, *d);
            }
        }
        for (m, h) in &stats.hists {
            self.hist(*m).absorb(h);
        }
    }

    /// Freezes all counters, timers, and histograms into a plain snapshot.
    pub fn snapshot(&self) -> Stats {
        Stats {
            counters: Counter::all().map(|c| (c, self.get(c))),
            stages: Stage::all().map(|s| (s, self.stage_time(s))),
            hists: Metric::all().map(|m| (m, self.hists[m.index()].snapshot())),
        }
    }
}

/// An immutable snapshot of a [`Telemetry`] sink.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Every counter with its value, in reporting order.
    pub counters: [(Counter, u64); Counter::COUNT],
    /// Every stage with its accumulated time, in reporting order.
    pub stages: [(Stage, Duration); Stage::COUNT],
    /// Every metric with its histogram snapshot, in reporting order.
    pub hists: [(Metric, HistSnapshot); Metric::COUNT],
}

impl Stats {
    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == c)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Accumulated time of one stage.
    pub fn stage(&self, s: Stage) -> Duration {
        self.stages
            .iter()
            .find(|(k, _)| *k == s)
            .map(|(_, v)| *v)
            .unwrap_or_default()
    }

    /// Total attributed time across all stages (detection and fixing).
    pub fn total_time(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }

    /// Attributed detection time: every stage except [`Stage::Fix`].
    pub fn detect_time(&self) -> Duration {
        self.stages
            .iter()
            .filter(|(s, _)| *s != Stage::Fix)
            .map(|(_, d)| *d)
            .sum()
    }

    /// Histogram snapshot of one metric.
    pub fn hist(&self, m: Metric) -> &HistSnapshot {
        self.hists
            .iter()
            .find(|(k, _)| *k == m)
            .map(|(_, v)| v)
            .expect("every metric is present in a snapshot")
    }

    /// Renders the snapshot as aligned `name  value` text lines.
    ///
    /// Durations are always milliseconds with three decimals (a fixed unit,
    /// so output stays diffable across magnitudes); histogram metrics are
    /// rendered as p50/p90/p99/max percentiles.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("stage timings:\n");
        for (s, d) in &self.stages {
            out.push_str(&format!("  {:<22} {:>12} ms\n", s.name(), fmt_ms(*d)));
        }
        out.push_str("counters:\n");
        for subsystem in Counter::subsystems() {
            out.push_str(&format!("  {subsystem}:\n"));
            for (c, v) in &self.counters {
                if c.subsystem() == subsystem {
                    out.push_str(&format!("    {:<24} {v:>12}\n", c.name()));
                }
            }
        }
        out.push_str("percentiles (p50/p90/p99/max):\n");
        for (m, h) in &self.hists {
            let cell = |v: u64| {
                if m.is_time() {
                    format!("{} ms", fmt_ms(Duration::from_nanos(v)))
                } else {
                    v.to_string()
                }
            };
            out.push_str(&format!(
                "  {:<22} {} / {} / {} / {}  (n={})\n",
                m.name(),
                cell(h.percentile(50)),
                cell(h.percentile(90)),
                cell(h.percentile(99)),
                cell(h.max),
                h.count,
            ));
        }
        out
    }
}

/// A duration as fixed-point milliseconds with three decimals (`1.234`).
fn fmt_ms(d: Duration) -> String {
    let us = d.as_micros();
    format!("{}.{:03}", us / 1_000, us % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = Telemetry::new();
        t.add(Counter::SolverQueries, 2);
        t.add(Counter::SolverQueries, 3);
        assert_eq!(t.get(Counter::SolverQueries), 5);
        assert_eq!(t.get(Counter::PathsEnumerated), 0);
    }

    #[test]
    fn stage_times_accumulate() {
        let t = Telemetry::new();
        t.record(Stage::Paths, Duration::from_millis(2));
        t.record(Stage::Paths, Duration::from_millis(3));
        assert_eq!(t.stage_time(Stage::Paths), Duration::from_millis(5));
    }

    #[test]
    fn absorb_merges_counters_stages_and_histograms() {
        let inner = Telemetry::new();
        inner.add(Counter::SolverQueries, 4);
        inner.record(Stage::Paths, Duration::from_millis(3));
        inner.observe(Metric::PathsPerChannel, 17);
        let outer = Telemetry::new();
        outer.add(Counter::SolverQueries, 1);
        outer.absorb(&inner.snapshot());
        assert_eq!(outer.get(Counter::SolverQueries), 5);
        assert_eq!(outer.stage_time(Stage::Paths), Duration::from_millis(3));
        let snap = outer.snapshot();
        assert_eq!(snap.hist(Metric::PathsPerChannel).count, 1);
        assert_eq!(snap.hist(Metric::PathsPerChannel).max, 17);
    }

    #[test]
    fn snapshot_is_stable_and_renders() {
        let t = Telemetry::new();
        t.add(Counter::CombosBuilt, 7);
        t.record(Stage::Constraints, Duration::from_micros(10));
        let s = t.snapshot();
        assert_eq!(s.counter(Counter::CombosBuilt), 7);
        assert_eq!(s.stage(Stage::Constraints), Duration::from_micros(10));
        let text = s.render_text();
        assert!(text.contains("combos_built"));
        assert!(text.contains("constraints"));
    }

    #[test]
    fn durations_render_as_fixed_ms() {
        assert_eq!(fmt_ms(Duration::from_micros(1_234_567)), "1234.567");
        assert_eq!(fmt_ms(Duration::from_nanos(999)), "0.000");
        assert_eq!(fmt_ms(Duration::ZERO), "0.000");
        assert_eq!(fmt_ms(Duration::from_millis(2)), "2.000");
    }

    #[test]
    fn histograms_surface_in_snapshot_and_text() {
        let t = Telemetry::new();
        t.observe(Metric::ChannelDetectNs, 1_000_000);
        t.observe(Metric::PathsPerChannel, 12);
        let s = t.snapshot();
        assert_eq!(s.hist(Metric::ChannelDetectNs).count, 1);
        assert_eq!(s.hist(Metric::PathsPerChannel).max, 12);
        assert_eq!(s.hist(Metric::SolverQueryNs).count, 0);
        let text = s.render_text();
        assert!(text.contains("percentiles (p50/p90/p99/max):"));
        assert!(text.contains("channel_detect_ns"));
        assert!(text.contains("solver_query_ns"));
    }

    /// A telemetry sink where every counter, stage, and metric carries a
    /// distinct nonzero value — the probe for the exhaustiveness guards.
    fn saturated() -> Telemetry {
        let t = Telemetry::new();
        for (i, c) in Counter::all().into_iter().enumerate() {
            t.add(c, i as u64 + 1);
        }
        for (i, s) in Stage::all().into_iter().enumerate() {
            t.record(s, Duration::from_micros(i as u64 + 1));
        }
        for (i, m) in Metric::all().into_iter().enumerate() {
            t.observe(m, i as u64 + 1);
        }
        t
    }

    #[test]
    fn every_counter_belongs_to_exactly_one_subsystem() {
        let subsystems = Counter::subsystems();
        for c in Counter::all() {
            assert!(
                subsystems.contains(&c.subsystem()),
                "{} maps to unknown subsystem {}",
                c.name(),
                c.subsystem()
            );
        }
        let grouped: usize = subsystems
            .iter()
            .map(|sub| {
                Counter::all()
                    .into_iter()
                    .filter(|c| c.subsystem() == *sub)
                    .count()
            })
            .sum();
        assert_eq!(grouped, Counter::all().len());
    }

    #[test]
    fn absorb_covers_every_counter_stage_and_histogram() {
        let inner = saturated();
        let outer = Telemetry::new();
        outer.absorb(&inner.snapshot());
        for (i, c) in Counter::all().into_iter().enumerate() {
            assert_eq!(outer.get(c), i as u64 + 1, "absorb dropped {}", c.name());
        }
        for (i, s) in Stage::all().into_iter().enumerate() {
            assert_eq!(
                outer.stage_time(s),
                Duration::from_micros(i as u64 + 1),
                "absorb dropped {}",
                s.name()
            );
        }
        let snap = outer.snapshot();
        for m in Metric::all() {
            assert_eq!(snap.hist(m).count, 1, "absorb dropped {}", m.name());
        }
    }

    #[test]
    fn render_stats_json_covers_every_counter_stage_and_histogram() {
        let json = crate::diagnostics::render_stats_json(&saturated().snapshot());
        for c in Counter::all() {
            assert!(
                json.contains(&format!("\"{}\":", c.name())),
                "render_stats_json missing counter {}",
                c.name()
            );
        }
        for s in Stage::all() {
            assert!(
                json.contains(&format!("\"{}\":", s.name())),
                "render_stats_json missing stage {}",
                s.name()
            );
        }
        for m in Metric::all() {
            assert!(
                json.contains(&format!("\"{}\":", m.name())),
                "render_stats_json missing histogram {}",
                m.name()
            );
        }
    }

    #[test]
    fn render_text_groups_counters_by_subsystem_and_covers_all() {
        let text = saturated().snapshot().render_text();
        for sub in Counter::subsystems() {
            assert!(text.contains(&format!("  {sub}:\n")), "missing group {sub}");
        }
        for c in Counter::all() {
            assert!(text.contains(c.name()), "missing counter {}", c.name());
        }
        // Subsystem groups appear in the documented stable order.
        let positions: Vec<usize> = Counter::subsystems()
            .iter()
            .map(|sub| text.find(&format!("  {sub}:\n")).unwrap())
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
        // PR-6 counters surface in the text output, not just JSON.
        assert!(text.contains("alias_queries_solved"));
        assert!(text.contains("alias_functions_skipped"));
        assert!(text.contains("channel_encodings_shared"));
    }

    #[test]
    fn telemetry_is_shareable_across_threads() {
        let t = Telemetry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        t.add(Counter::GroupsChecked, 1);
                    }
                });
            }
        });
        assert_eq!(t.get(Counter::GroupsChecked), 400);
    }
}
