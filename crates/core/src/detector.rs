//! The BMOC detector driver (Algorithm 1 of the paper).
//!
//! For every channel: compute its scope and Pset (disentangling, §3.2),
//! enumerate path combinations for the goroutines in scope (§3.3), compute
//! suspicious groups, and ask the constraint solver whether the group can
//! block forever (§3.4). The `disentangle` switch exists solely for the
//! paper's ablation (§5.2, ">115× slowdown without disentangling"): when
//! off, every channel is analyzed from `main` with *all* primitives in its
//! Pset.
//!
//! Channels are independent once the shared analyses are built, so the
//! per-channel work is sharded across `config.jobs` worker threads
//! ([`std::thread::scope`]); each worker returns its findings keyed by the
//! suspicious group, and a deterministic merge in channel order applies the
//! cross-channel deduplication. One channel's detection is fully
//! sequential, so `jobs = 1` and `jobs = N` produce identical reports.

use crate::constraints::{ChannelSolver, EncodingKind, SolverStrategy, Verdict};
use crate::disentangle::{influences, pset};
use crate::faults;
use crate::paths::{Enumerator, Event, Limits, Path};
use crate::primitives::{OpKind, PrimId};
use crate::report::{BugKind, BugReport, OpRef, Provenance};
use crate::resilience::{
    catch_isolated, ladder_limits, Budget, Incident, IncidentKind, LADDER_RUNGS,
};
use crate::session::AnalysisSession;
use crate::telemetry::{Counter, Metric, Stage};
use crate::trace::{ArgValue, Lane};
use golite_ir::ir::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use crate::session::Detector;

/// One goroutine of a path combination.
#[derive(Debug, Clone)]
pub struct GoroutinePath {
    /// The chosen execution path.
    pub path: Path,
    /// `(parent goroutine index, event index of the spawn)`, `None` for the
    /// root goroutine.
    pub spawned_at: Option<(usize, usize)>,
    /// The function the goroutine starts in.
    pub root_func: FuncId,
}

/// A path combination: one path per goroutine (Algorithm 1, line 12).
#[derive(Debug, Clone)]
pub struct Combo {
    /// Goroutines; index 0 is the scope root.
    pub gos: Vec<GoroutinePath>,
}

/// One member of a suspicious group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupMember {
    /// Goroutine index in the combination.
    pub goroutine: usize,
    /// Event index of the blocking operation (an `Op` or `Select`).
    pub event: usize,
}

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Path-enumeration limits.
    pub limits: Limits,
    /// Disentangling on (default) or off (ablation mode).
    pub disentangle: bool,
    /// Maximum path combinations examined per channel.
    pub max_combos: usize,
    /// Maximum goroutines per combination.
    pub max_goroutines: usize,
    /// Maximum suspicious-group size (the paper's bugs involve 1–2 blocked
    /// goroutines).
    pub max_group_size: usize,
    /// Solver step budget per query.
    pub solver_steps: u64,
    /// How solver queries are discharged: one incremental solver per
    /// channel reusing each combination's encoding across its groups (the
    /// default), or a fresh solver per query (`fresh`/`rescan`, the
    /// differential baselines). All strategies produce identical reports.
    pub solver_strategy: SolverStrategy,
    /// Worker threads sharding the per-channel detection; `0` (the
    /// default) uses all available cores. Reports are identical for every
    /// value.
    pub jobs: usize,
    /// Wall-clock deadline for the whole run (`--timeout`); anchored at
    /// the first detector call so it covers every checker. `None` (the
    /// default) leaves the run unbounded.
    pub timeout: Option<Duration>,
    /// Per-channel wall-clock deadline (`--channel-timeout`); each
    /// channel's budget is the tighter of this and the run deadline.
    pub channel_timeout: Option<Duration>,
    /// Global solver-step pool shared by every query of the run; each
    /// query draws up to `solver_steps` from it and refunds what it does
    /// not use. `None` (the default) leaves queries bounded only by
    /// `solver_steps`.
    pub solver_step_pool: Option<u64>,
    /// External cancellation attached to the run [`Budget`]: when the
    /// token fires, every cooperative budget check reports expiry and the
    /// run winds down with partial results. The batch engine uses this to
    /// stop the losing twin of a hedged job.
    pub cancel: Option<crate::resilience::CancelToken>,
    /// Cross-channel encoding reuse (the default): structurally identical
    /// channels share solver verdicts through the session's
    /// [`EncodingCache`](crate::constraints::EncodingCache). Reports are
    /// byte-identical either way; `--no-share-encodings` turns it off for
    /// differential testing. Sharing is automatically bypassed while a
    /// budget is active or fault injection is armed.
    pub share_encodings: bool,
    /// Observability context (`--events-out`, the batch flight recorder).
    /// Default is fully inert; the CLI and batch engine fill in the sinks
    /// and correlation ids. Detection results are identical either way.
    pub obs: crate::events::ObsScope,
    /// Warm-session context for `gcatch serve` incremental re-analysis
    /// (`None` everywhere else): carries the prior module's per-channel
    /// records and changed-function set in, and the fresh harvest out.
    /// Replay is byte-identity-preserving by construction — see
    /// [`crate::warm`].
    pub warm: Option<std::sync::Arc<crate::warm::WarmCheck>>,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            limits: Limits::default(),
            disentangle: true,
            max_combos: 192,
            max_goroutines: 5,
            max_group_size: 2,
            solver_steps: 400_000,
            solver_strategy: SolverStrategy::default(),
            jobs: 0,
            timeout: None,
            channel_timeout: None,
            solver_step_pool: None,
            cancel: None,
            share_encodings: true,
            obs: crate::events::ObsScope::default(),
            warm: None,
        }
    }
}

/// Cross-channel deduplication key of one suspicious group.
pub(crate) type GroupKey = (BugKind, Option<Loc>, Vec<Loc>);

/// One channel's detection result: findings keyed for the cross-channel
/// merge, plus the incident (panic or exhausted budget), if any.
pub(crate) type ChannelOutcome = (Vec<(GroupKey, BugReport)>, Option<Incident>);

/// Resolves the worker count: `0` means every available core, and there is
/// never a reason to spawn more workers than work items.
fn effective_jobs(requested: usize, work_items: usize) -> usize {
    let jobs = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    jobs.min(work_items.max(1))
}

impl<'m> AnalysisSession<'m> {
    /// Runs the BMOC detector over every channel (Algorithm 1, lines 8–25).
    ///
    /// Channels are processed by `config.jobs` workers; the merge is
    /// deterministic, so the result is independent of the worker count.
    pub fn detect_bmoc(&self, config: &DetectorConfig) -> Vec<BugReport> {
        // Force the shared disentangling artifacts once, outside the
        // workers, so their cost is attributed (and paid) exactly once.
        if config.disentangle {
            self.dependency_graph();
            self.scopes();
        }
        let channels: Vec<PrimId> = self
            .prims
            .channels()
            .filter(|c| c.buffer_size().is_some()) // dynamic capacity: not modeled
            .map(|c| c.id)
            .collect();
        self.telemetry
            .add(Counter::ChannelsAnalyzed, channels.len() as u64);

        let budget = self.run_budget(config).clone();
        let jobs = effective_jobs(config.jobs, channels.len());
        let per_channel: Vec<ChannelOutcome> = if jobs <= 1 {
            let mut lane = self.tracer().lane(1, "bmoc-worker-0");
            channels
                .iter()
                .map(|&c| self.detect_channel(c, config, &budget, &mut lane))
                .collect()
        } else {
            let slots: Vec<Mutex<ChannelOutcome>> = channels
                .iter()
                .map(|_| Mutex::new((Vec::new(), None)))
                .collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let (channels, slots, next, budget) = (&channels, &slots, &next, &budget);
                for w in 0..jobs {
                    scope.spawn(move || {
                        // One trace lane per worker: events land on their
                        // own Chrome thread row, buffered without locks.
                        let mut lane = self.tracer().lane(1 + w as u32, format!("bmoc-worker-{w}"));
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= channels.len() {
                                break;
                            }
                            let found = self.detect_channel(channels[i], config, budget, &mut lane);
                            // Panics are contained inside `detect_channel`,
                            // so a poisoned slot can only hold the default
                            // value; recover it rather than cascading.
                            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = found;
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
                .collect()
        };

        // Deterministic merge in channel order with cross-channel dedup.
        // Incidents are recorded here, not in the workers, so their order
        // (channel order) is independent of `jobs`.
        let mut merge_lane = self.tracer().lane(0, "main");
        let mut seen: HashSet<GroupKey> = HashSet::new();
        let mut reports: Vec<BugReport> = Vec::new();
        for (found, incident) in per_channel {
            if let Some(incident) = incident {
                self.record_incident(incident);
            }
            for (key, report) in found {
                if seen.insert(key) {
                    reports.push(report);
                } else {
                    self.telemetry.add(Counter::DuplicatesDropped, 1);
                    merge_lane.instant(
                        "dedup_dropped",
                        vec![("kind", ArgValue::from(report.kind.label()))],
                    );
                }
            }
        }
        reports
    }

    /// One channel's detection task, fault-isolated: a panic anywhere in
    /// the pipeline is contained here and converted into an [`Incident`]
    /// (with the worker's trace lane rebalanced), so one bad channel
    /// cannot take down the run or the other workers.
    fn detect_channel(
        &self,
        chan: PrimId,
        config: &DetectorConfig,
        budget: &Budget,
        lane: &mut Lane<'_>,
    ) -> ChannelOutcome {
        let started = Instant::now();
        let chan_name = self.prims.all[chan.0].name.clone();
        lane.begin(
            "bmoc_channel",
            vec![("chan", ArgValue::from(chan_name.as_str()))],
        );
        let attempt = catch_isolated(|| match config.warm.as_deref() {
            Some(warm) => self.detect_channel_warm(warm, chan, &chan_name, config, budget, lane),
            None => self.detect_channel_laddered(chan, &chan_name, config, budget, lane),
        });
        let (found, incident) = match attempt {
            Ok(outcome) => {
                lane.end();
                outcome
            }
            Err(message) => {
                // The panic left the lane mid-span; close every open span
                // so the trace stays well-formed.
                lane.rewind();
                self.telemetry.add(Counter::IncompleteChannels, 1);
                let incident = Incident {
                    kind: IncidentKind::Channel,
                    name: chan_name.clone(),
                    message,
                    rung: 0,
                    flight: Vec::new(),
                };
                (Vec::new(), Some(incident))
            }
        };
        if let Some(incident) = &incident {
            lane.instant(
                "incident",
                vec![
                    ("kind", ArgValue::from(incident.kind.label())),
                    ("name", ArgValue::from(incident.name.as_str())),
                ],
            );
        }
        if config.obs.enabled() {
            config
                .obs
                .channel_analyzed(chan.0 as u64, &chan_name, found.len() as u64);
            if let Some(incident) = &incident {
                config.obs.incident(
                    chan.0 as u64,
                    &chan_name,
                    incident.kind.label(),
                    &incident.message,
                );
            }
        }
        self.telemetry
            .observe(Metric::ChannelDetectNs, started.elapsed().as_nanos() as u64);
        (found, incident)
    }

    /// The warm-session wrapper around one channel's detection: decides
    /// replay vs re-analysis against the prior module's record, and
    /// harvests this channel's record (either way) for the next request.
    ///
    /// Replay requires *all* of: disentangling on, an inactive budget (the
    /// ladder changes outcomes), a prior record at the same creation site
    /// with identical metadata (kind/buffer/name/span), identical scope
    /// root and Pset member sites, identical Pset operation lists, and no
    /// changed function that can influence the channel — inside its scope,
    /// reaching into it (the memoized reverse-reachability), or holding a
    /// Pset operation. Anything less re-analyzes from scratch, which is
    /// always sound.
    fn detect_channel_warm(
        &self,
        warm: &crate::warm::WarmCheck,
        chan: PrimId,
        chan_name: &str,
        config: &DetectorConfig,
        budget: &Budget,
        lane: &mut Lane<'_>,
    ) -> ChannelOutcome {
        if !config.disentangle || budget.tightened(config.channel_timeout).is_active() {
            // No disentangling metadata to gate replay on, or a live
            // budget (whose draining is stateful): run cold, no harvest.
            return self.detect_channel_laddered(chan, chan_name, config, budget, lane);
        }
        let prim = &self.prims.all[chan.0];
        let scopes = self.scopes();
        let scope = &scopes[chan.0];
        let prim_set = pset(chan, self.dependency_graph(), scopes, &self.prims);
        let pset_sites: Vec<Loc> = prim_set.iter().map(|&p| self.prims.all[p.0].site).collect();
        let meta = crate::warm::channel_meta(prim);
        let ops_hash = crate::warm::ops_hash(&self.prims, &prim_set);
        let replay = warm.prior_record(prim.site).and_then(|old| {
            let same_shape = old.meta == meta
                && old.ops_hash == ops_hash
                && old.root == scope.root
                && old.pset_sites == pset_sites;
            let clean = same_shape
                && !warm
                    .changed()
                    .iter()
                    .any(|&f| influences(scope, &self.analysis, &self.prims, &prim_set, f));
            clean.then(|| (old.findings.clone(), old.incident.clone()))
        });
        let (outcome, replayed) = match replay {
            Some(outcome) => (outcome, true),
            None => (
                self.detect_channel_laddered(chan, chan_name, config, budget, lane),
                false,
            ),
        };
        warm.note(replayed);
        warm.record(crate::warm::ChannelRecord {
            site: prim.site,
            meta,
            ops_hash,
            root: scope.root,
            pset_sites,
            findings: outcome.0.clone(),
            incident: outcome.1.clone(),
        });
        outcome
    }

    /// Runs the channel pipeline under its budget, descending the
    /// degradation ladder (§3.3) on exhaustion: the configured limits
    /// first, then reduced unroll, then a minimal unroll with the Pset
    /// shrunk to the channel itself. Findings from every rung are kept
    /// (deduplicated by group key, fullest-limits rung first); only if
    /// the last rung still exhausts the budget does the channel give up,
    /// with an [`Incident`] recording the rung reached. With no budget in
    /// force this is a single rung-0 run — the legacy behavior.
    fn detect_channel_laddered(
        &self,
        chan: PrimId,
        chan_name: &str,
        config: &DetectorConfig,
        budget: &Budget,
        lane: &mut Lane<'_>,
    ) -> ChannelOutcome {
        faults::maybe_panic(faults::SITE_DETECT_CHANNEL, chan_name);
        let chan_budget = budget.tightened(config.channel_timeout);
        if !chan_budget.is_active() {
            let (found, _) = self.detect_channel_pipeline(
                chan,
                chan_name,
                config,
                &config.limits,
                0,
                &chan_budget,
                lane,
            );
            return (found, None);
        }
        let mut acc: Vec<(GroupKey, BugReport)> = Vec::new();
        let mut seen: HashSet<GroupKey> = HashSet::new();
        for rung in 0..LADDER_RUNGS {
            let limits = ladder_limits(&config.limits, rung);
            let (found, exhausted) = self.detect_channel_pipeline(
                chan,
                chan_name,
                config,
                &limits,
                rung,
                &chan_budget,
                lane,
            );
            for (key, report) in found {
                if seen.insert(key.clone()) {
                    acc.push((key, report));
                }
            }
            if !exhausted {
                return (acc, None);
            }
            if rung + 1 < LADDER_RUNGS {
                lane.instant(
                    "ladder_retry",
                    vec![("rung", ArgValue::U64(u64::from(rung + 1)))],
                );
            }
        }
        self.telemetry.add(Counter::IncompleteChannels, 1);
        config
            .obs
            .budget_exhausted(chan.0 as u64, chan_name, LADDER_RUNGS - 1);
        let incident = Incident {
            kind: IncidentKind::Channel,
            name: chan_name.to_string(),
            message: "analysis budget exhausted; results for this channel are partial".into(),
            rung: LADDER_RUNGS - 1,
            flight: Vec::new(),
        };
        (acc, Some(incident))
    }

    /// The full detection pipeline for one channel at one ladder rung:
    /// disentangle, enumerate, group, solve. Pure with respect to the
    /// session (telemetry and the caller's trace lane aside), so workers
    /// can run it concurrently; findings carry their group key for the
    /// cross-channel merge. The second return value reports whether the
    /// budget cut the work short (always `false` with an inactive budget).
    #[allow(clippy::too_many_arguments)]
    fn detect_channel_pipeline(
        &self,
        chan: PrimId,
        chan_name: &str,
        config: &DetectorConfig,
        limits: &Limits,
        rung: u32,
        budget: &Budget,
        lane: &mut Lane<'_>,
    ) -> (Vec<(GroupKey, BugReport)>, bool) {
        let (root, mut prim_set): (FuncId, Vec<PrimId>) = if config.disentangle {
            let scopes = self.scopes();
            let set = pset(chan, self.dependency_graph(), scopes, &self.prims);
            if rung == 0 {
                self.telemetry.add(Counter::PsetsComputed, 1);
                self.telemetry
                    .add(Counter::PsetPrimsTotal, set.len() as u64);
            }
            (scopes[chan.0].root, set)
        } else {
            // Ablation: whole program from main, all primitives.
            let Some(main) = self.module.func_by_name("main") else {
                return (Vec::new(), false);
            };
            (main.id, self.prims.all.iter().map(|p| p.id).collect())
        };
        if rung >= 2 {
            // Last rung of the ladder: shrink the Pset to the channel
            // itself, the cheapest analysis that can still find a bug.
            prim_set.retain(|&p| p == chan);
        }
        let pset_size = prim_set.len();
        let mut enumerator = Enumerator::new(
            self.module,
            &self.analysis,
            &self.prims,
            &prim_set,
            limits.clone(),
        )
        .with_budget(budget.clone());
        lane.begin("build_combos", vec![]);
        let combos = self.telemetry.time(Stage::Paths, || {
            self.build_combos(&mut enumerator, root, config, lane)
        });
        lane.end();
        let paths_enumerated = enumerator.paths_enumerated();
        let branches_pruned = enumerator.branches_pruned();
        self.telemetry
            .add(Counter::PathsEnumerated, paths_enumerated);
        self.telemetry.add(Counter::BranchesPruned, branches_pruned);
        self.telemetry
            .add(Counter::CombosBuilt, combos.len() as u64);
        self.telemetry
            .observe(Metric::PathsPerChannel, paths_enumerated);
        self.telemetry
            .observe(Metric::CombosPerChannel, combos.len() as u64);
        if branches_pruned > 0 {
            lane.instant(
                "branch_pruned",
                vec![("count", ArgValue::U64(branches_pruned))],
            );
        }
        let mut exhausted = enumerator.exhausted();
        if budget.is_active() && combos.len() >= config.max_combos {
            // Combination blowup under a budget counts as incomplete: the
            // ladder's tighter limits produce fewer, shorter paths.
            exhausted = true;
        }

        let mut groups_checked = 0u64;
        let mut local_seen: HashSet<GroupKey> = HashSet::new();
        let mut found: Vec<(GroupKey, BugReport)> = Vec::new();
        // One solving context for the whole channel: under the incremental
        // strategy the solver persists across combinations and each
        // combination's encoding is built once, in a push/pop scope, then
        // shared by every group query on it. The session's cross-channel
        // cache extends that reuse to structurally identical channels.
        let cache = config.share_encodings.then(|| self.encoding_cache());
        let mut solver = ChannelSolver::with_cache(&self.prims, config.solver_strategy, cache);
        for combo in &combos {
            if budget.is_active() && budget.expired() {
                exhausted = true;
                break;
            }
            let mut combo_open = false;
            for group in self.suspicious_groups(combo, chan, config.max_group_size) {
                let key = self.group_key(combo, &group);
                if local_seen.contains(&key) {
                    continue;
                }
                self.telemetry.add(Counter::GroupsChecked, 1);
                groups_checked += 1;
                lane.begin("solve", vec![("group", ArgValue::U64(groups_checked))]);
                let check = self.telemetry.time(Stage::Constraints, || {
                    if !combo_open {
                        solver.begin_combo(combo, EncodingKind::Group);
                        combo_open = true;
                    }
                    solver.check_group(combo, &group, config.solver_steps, budget)
                });
                let (verdict, solver_stats) = (check.verdict, check.stats);
                if let Some(s) = solver_stats {
                    self.telemetry.add_solver_stats(s);
                    lane.complete(
                        "dpll",
                        s.elapsed,
                        vec![
                            ("steps", ArgValue::U64(s.steps)),
                            ("decisions", ArgValue::U64(s.decisions)),
                            ("conflicts", ArgValue::U64(s.conflicts)),
                            ("solver_reuse", ArgValue::U64(u64::from(check.reused))),
                        ],
                    );
                }
                lane.end();
                match verdict {
                    Verdict::Blocking(witness) => {
                        local_seen.insert(key.clone());
                        self.telemetry.add(Counter::ReportsEmitted, 1);
                        lane.instant("report_emitted", vec![("chan", ArgValue::from(chan_name))]);
                        let mut report = self.make_report(chan, combo, &group, witness, root);
                        let s = solver_stats.unwrap_or_default();
                        report.provenance = Some(Provenance {
                            channel: chan_name.to_string(),
                            pset_size,
                            paths_enumerated,
                            branches_pruned,
                            combos_tried: combos.len(),
                            groups_checked,
                            solver_verdict: "blocking",
                            solver_steps: s.steps,
                            solver_decisions: s.decisions,
                            solver_conflicts: s.conflicts,
                            degradation_rung: rung,
                        });
                        found.push((key, report));
                    }
                    Verdict::Safe => {}
                    Verdict::Unknown => {
                        // Under a budget, an unknown verdict means the
                        // query ran out of steps or time — the channel's
                        // answer is incomplete at these limits.
                        if budget.is_active() {
                            exhausted = true;
                        }
                    }
                }
            }
            if combo_open {
                solver.end_combo();
            }
        }
        self.telemetry
            .add(Counter::SolverEncodingsReused, solver.encodings_reused);
        self.telemetry
            .add(Counter::LearnedClausesKept, solver.learned_kept);
        self.telemetry
            .add(Counter::ChannelEncodingsShared, solver.encodings_shared);
        (found, exhausted)
    }

    // ------------------------------------------------------- combinations

    fn build_combos(
        &self,
        enumerator: &mut Enumerator<'_>,
        root: FuncId,
        config: &DetectorConfig,
        lane: &mut Lane<'_>,
    ) -> Vec<Combo> {
        let mut out: Vec<Combo> = Vec::new();
        let root_paths = lane.span(
            "enumerate_paths",
            vec![("root", ArgValue::from(self.module.func(root).name.as_str()))],
            |_| enumerator.paths_of(root),
        );
        for rp in root_paths {
            let partial = vec![GoroutinePath {
                path: rp,
                spawned_at: None,
                root_func: root,
            }];
            self.expand_goroutine(enumerator, partial, 0, config, &mut out);
            if out.len() >= config.max_combos {
                break;
            }
        }
        out.truncate(config.max_combos);
        out
    }

    /// Expands spawn events of goroutine `gi`, then moves to `gi + 1`.
    fn expand_goroutine(
        &self,
        enumerator: &mut Enumerator<'_>,
        partial: Vec<GoroutinePath>,
        gi: usize,
        config: &DetectorConfig,
        out: &mut Vec<Combo>,
    ) {
        if out.len() >= config.max_combos {
            return;
        }
        if gi == partial.len() {
            out.push(Combo { gos: partial });
            return;
        }
        let spawns: Vec<(usize, FuncId)> = partial[gi]
            .path
            .events
            .iter()
            .enumerate()
            .filter_map(|(ei, e)| match e {
                Event::Spawn { target, .. } => Some((ei, *target)),
                _ => None,
            })
            .collect();
        self.choose_children(enumerator, partial, gi, &spawns, 0, config, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn choose_children(
        &self,
        enumerator: &mut Enumerator<'_>,
        partial: Vec<GoroutinePath>,
        gi: usize,
        spawns: &[(usize, FuncId)],
        si: usize,
        config: &DetectorConfig,
        out: &mut Vec<Combo>,
    ) {
        if out.len() >= config.max_combos {
            return;
        }
        if si == spawns.len() {
            self.expand_goroutine(enumerator, partial, gi + 1, config, out);
            return;
        }
        let (ev, target) = spawns[si];
        if partial.len() >= config.max_goroutines {
            // Goroutine budget exhausted: ignore further spawns.
            self.choose_children(enumerator, partial, gi, spawns, si + 1, config, out);
            return;
        }
        for child_path in enumerator.paths_of(target) {
            let mut next = partial.clone();
            next.push(GoroutinePath {
                path: child_path,
                spawned_at: Some((gi, ev)),
                root_func: target,
            });
            self.choose_children(enumerator, next, gi, spawns, si + 1, config, out);
            if out.len() >= config.max_combos {
                return;
            }
        }
    }

    // ----------------------------------------------------------- grouping

    /// Suspicious groups (Algorithm 1, line 15): up to `max_size` blocking
    /// operations from distinct goroutines, at least one on channel `c`,
    /// that cannot unblock each other.
    fn suspicious_groups(
        &self,
        combo: &Combo,
        c: PrimId,
        max_size: usize,
    ) -> Vec<Vec<GroupMember>> {
        // Candidates per goroutine.
        let mut per_go: Vec<Vec<GroupMember>> = Vec::new();
        for (gi, g) in combo.gos.iter().enumerate() {
            let cands: Vec<GroupMember> = g
                .path
                .blocking_candidates()
                .into_iter()
                .map(|event| GroupMember {
                    goroutine: gi,
                    event,
                })
                .collect();
            per_go.push(cands);
        }
        let on_channel =
            |m: &GroupMember| -> bool { self.member_ops(combo, m).iter().any(|(p, _)| *p == c) };

        let mut out: Vec<Vec<GroupMember>> = Vec::new();
        // Size 1.
        for cands in &per_go {
            for &m in cands {
                if on_channel(&m) {
                    out.push(vec![m]);
                }
            }
        }
        // Size 2 (distinct goroutines, non-complementary).
        if max_size >= 2 {
            for (gi, ci) in per_go.iter().enumerate() {
                for cj in per_go.iter().skip(gi + 1) {
                    for &a in ci {
                        for &b in cj {
                            if !(on_channel(&a) || on_channel(&b)) {
                                continue;
                            }
                            if self.can_unblock_each_other(combo, &a, &b) {
                                continue;
                            }
                            out.push(vec![a, b]);
                        }
                    }
                }
            }
        }
        out
    }

    /// The (primitive, kind) pairs a group member waits on.
    fn member_ops(&self, combo: &Combo, m: &GroupMember) -> Vec<(PrimId, OpKind)> {
        match &combo.gos[m.goroutine].path.events[m.event] {
            Event::Op(op) => vec![(op.prim, op.kind)],
            Event::Select { cases, .. } => cases.iter().map(|(_, op)| (op.prim, op.kind)).collect(),
            _ => vec![],
        }
    }

    /// Whether two blocked operations could unblock each other (a send and
    /// a receive on the same primitive) — such pairs are not suspicious.
    fn can_unblock_each_other(&self, combo: &Combo, a: &GroupMember, b: &GroupMember) -> bool {
        let oa = self.member_ops(combo, a);
        let ob = self.member_ops(combo, b);
        for (pa, ka) in &oa {
            for (pb, kb) in &ob {
                if pa == pb && ka != kb {
                    return true;
                }
            }
        }
        false
    }

    fn group_key(&self, combo: &Combo, group: &[GroupMember]) -> GroupKey {
        let mut locs: Vec<Loc> = group
            .iter()
            .filter_map(|m| match &combo.gos[m.goroutine].path.events[m.event] {
                Event::Op(op) => Some(op.loc),
                Event::Select { loc, .. } => Some(*loc),
                _ => None,
            })
            .collect();
        locs.sort_unstable();
        (BugKind::BmocChannel, None, locs)
    }

    fn make_report(
        &self,
        chan: PrimId,
        combo: &Combo,
        group: &[GroupMember],
        witness: Vec<String>,
        root: FuncId,
    ) -> BugReport {
        let prim = &self.prims.all[chan.0];
        // BMOC-M when any kept event in the combination touches a mutex.
        let involves_mutex = combo
            .gos
            .iter()
            .flat_map(|g| &g.path.events)
            .any(|e| match e {
                Event::Op(op) => op.from_mutex,
                Event::Select { cases, .. } => cases.iter().any(|(_, op)| op.from_mutex),
                _ => false,
            });
        let kind = if involves_mutex {
            BugKind::BmocChannelMutex
        } else {
            BugKind::BmocChannel
        };
        let ops: Vec<OpRef> = group
            .iter()
            .filter_map(|m| {
                let g = &combo.gos[m.goroutine];
                let func_name = self.module.func(g.root_func).name.to_string();
                match &g.path.events[m.event] {
                    Event::Op(op) => Some(OpRef {
                        loc: op.loc,
                        span: op.span,
                        what: format!(
                            "{} {}",
                            match (op.kind, op.from_mutex) {
                                (OpKind::Send, false) => "send on",
                                (OpKind::Recv, false) => "recv from",
                                (OpKind::Close, _) => "close of",
                                (OpKind::Send, true) => "lock of",
                                (OpKind::Recv, true) => "unlock of",
                            },
                            self.prims.all[op.prim.0].name
                        ),
                        func_name,
                    }),
                    Event::Select { loc, span, .. } => Some(OpRef {
                        loc: *loc,
                        span: *span,
                        what: "select with no runnable case".to_string(),
                        func_name,
                    }),
                    _ => None,
                }
            })
            .collect();
        BugReport {
            kind,
            primitive: Some(prim.site),
            primitive_span: prim.span,
            primitive_name: prim.name.clone(),
            ops,
            witness_order: witness,
            notes: format!("scope root: {}", self.module.func(root).name),
            provenance: None,
        }
    }
}

impl<'m> AnalysisSession<'m> {
    /// §6 extension: detects *non-blocking* misuse of channels — a send
    /// that some interleaving can execute after a close of the same channel
    /// (a guaranteed runtime panic). The paper describes this as a new bug
    /// constraint `O_close < O_send` over the same ΦR machinery.
    pub fn detect_send_on_closed(&self, config: &DetectorConfig) -> Vec<BugReport> {
        let dg = self.dependency_graph();
        let scopes = self.scopes();
        let budget = self.run_budget(config).clone();
        let mut lane = self.tracer().lane(0, "main");
        let mut reports = Vec::new();
        let mut seen: HashSet<(Loc, Loc)> = HashSet::new();

        for chan in self.prims.channels() {
            if chan.buffer_size().is_none() {
                continue;
            }
            // Fast filter: the channel must have both a send and a close.
            let has_send = self
                .prims
                .ops_of(chan.id)
                .any(|o| o.kind == crate::primitives::OpKind::Send);
            let has_close = self
                .prims
                .ops_of(chan.id)
                .any(|o| o.kind == crate::primitives::OpKind::Close);
            if !has_send || !has_close {
                continue;
            }
            let started = Instant::now();
            let chan_budget = budget.tightened(config.channel_timeout);
            lane.begin(
                "bmoc_channel",
                vec![("chan", ArgValue::from(chan.name.as_str()))],
            );
            // Same fault isolation as the BMOC workers: a panic while
            // analyzing one channel becomes an incident, not an abort.
            let attempt = catch_isolated(|| {
                let mut found: Vec<BugReport> = Vec::new();
                let root = scopes[chan.id.0].root;
                let prim_set = pset(chan.id, dg, scopes, &self.prims);
                let pset_size = prim_set.len();
                let mut enumerator = Enumerator::new(
                    self.module,
                    &self.analysis,
                    &self.prims,
                    &prim_set,
                    config.limits.clone(),
                )
                .with_budget(chan_budget.clone());
                lane.begin("build_combos", vec![]);
                let combos = self.telemetry.time(Stage::Paths, || {
                    self.build_combos(&mut enumerator, root, config, &mut lane)
                });
                lane.end();
                let paths_enumerated = enumerator.paths_enumerated();
                let branches_pruned = enumerator.branches_pruned();
                let mut exhausted = enumerator.exhausted();
                self.telemetry
                    .add(Counter::PathsEnumerated, paths_enumerated);
                self.telemetry.add(Counter::BranchesPruned, branches_pruned);
                self.telemetry
                    .add(Counter::CombosBuilt, combos.len() as u64);
                self.telemetry
                    .observe(Metric::PathsPerChannel, paths_enumerated);
                self.telemetry
                    .observe(Metric::CombosPerChannel, combos.len() as u64);
                let mut groups_checked = 0u64;
                // Same per-channel solving context as the BMOC pipeline:
                // the incremental strategy shares each combination's ΦR
                // encoding across every (send, close) pair queried on it,
                // and the session cache shares verdicts across channels.
                let cache = config.share_encodings.then(|| self.encoding_cache());
                let mut solver =
                    ChannelSolver::with_cache(&self.prims, config.solver_strategy, cache);
                for combo in &combos {
                    if chan_budget.is_active() && chan_budget.expired() {
                        exhausted = true;
                        break;
                    }
                    let mut combo_open = false;
                    // Collect sends and closes on this channel.
                    let mut sends = Vec::new();
                    let mut closes = Vec::new();
                    for (gi, g) in combo.gos.iter().enumerate() {
                        for (ei, event) in g.path.events.iter().enumerate() {
                            if let Event::Op(op) = event {
                                if op.prim == chan.id {
                                    match op.kind {
                                        crate::primitives::OpKind::Send => sends.push((
                                            GroupMember {
                                                goroutine: gi,
                                                event: ei,
                                            },
                                            op.clone(),
                                        )),
                                        crate::primitives::OpKind::Close => closes.push((
                                            GroupMember {
                                                goroutine: gi,
                                                event: ei,
                                            },
                                            op.clone(),
                                        )),
                                        _ => {}
                                    }
                                }
                            }
                        }
                    }
                    for (send_m, send_op) in &sends {
                        for (close_m, close_op) in &closes {
                            if !seen.insert((send_op.loc, close_op.loc)) {
                                continue;
                            }
                            self.telemetry.add(Counter::GroupsChecked, 1);
                            groups_checked += 1;
                            lane.begin("solve", vec![("group", ArgValue::U64(groups_checked))]);
                            let check = self.telemetry.time(Stage::Constraints, || {
                                if !combo_open {
                                    solver.begin_combo(combo, EncodingKind::Reach);
                                    combo_open = true;
                                }
                                solver.check_send_after_close(
                                    combo,
                                    *send_m,
                                    *close_m,
                                    config.solver_steps,
                                    &chan_budget,
                                )
                            });
                            let verdict = check.verdict;
                            let solver_stats = check.stats.unwrap_or_default();
                            self.telemetry.add_solver_stats(solver_stats);
                            lane.complete(
                                "dpll",
                                solver_stats.elapsed,
                                vec![
                                    ("steps", ArgValue::U64(solver_stats.steps)),
                                    ("decisions", ArgValue::U64(solver_stats.decisions)),
                                    ("conflicts", ArgValue::U64(solver_stats.conflicts)),
                                    ("solver_reuse", ArgValue::U64(u64::from(check.reused))),
                                ],
                            );
                            lane.end();
                            match verdict {
                                Verdict::Blocking(witness) => {
                                    self.telemetry.add(Counter::ReportsEmitted, 1);
                                    lane.instant(
                                        "report_emitted",
                                        vec![("chan", ArgValue::from(chan.name.as_str()))],
                                    );
                                    found.push(BugReport {
                                        kind: BugKind::SendOnClosedChannel,
                                        primitive: Some(chan.site),
                                        primitive_span: chan.span,
                                        primitive_name: chan.name.clone(),
                                        ops: vec![
                                            OpRef {
                                                loc: send_op.loc,
                                                span: send_op.span,
                                                what: format!("send on {} after close", chan.name),
                                                func_name: self
                                                    .module
                                                    .func(send_op.loc.func)
                                                    .name
                                                    .to_string(),
                                            },
                                            OpRef {
                                                loc: close_op.loc,
                                                span: close_op.span,
                                                what: format!("close of {}", chan.name),
                                                func_name: self
                                                    .module
                                                    .func(close_op.loc.func)
                                                    .name
                                                    .to_string(),
                                            },
                                        ],
                                        witness_order: witness,
                                        notes: "a schedule orders the close before the send \
                                            (runtime panic)"
                                            .into(),
                                        provenance: Some(Provenance {
                                            channel: chan.name.clone(),
                                            pset_size,
                                            paths_enumerated,
                                            branches_pruned,
                                            combos_tried: combos.len(),
                                            groups_checked,
                                            solver_verdict: "panic-schedule",
                                            solver_steps: solver_stats.steps,
                                            solver_decisions: solver_stats.decisions,
                                            solver_conflicts: solver_stats.conflicts,
                                            degradation_rung: 0,
                                        }),
                                    });
                                }
                                Verdict::Safe => {
                                    seen.remove(&(send_op.loc, close_op.loc));
                                }
                                Verdict::Unknown => {
                                    seen.remove(&(send_op.loc, close_op.loc));
                                    if chan_budget.is_active() {
                                        exhausted = true;
                                    }
                                }
                            }
                        }
                    }
                    if combo_open {
                        solver.end_combo();
                    }
                }
                self.telemetry
                    .add(Counter::SolverEncodingsReused, solver.encodings_reused);
                self.telemetry
                    .add(Counter::LearnedClausesKept, solver.learned_kept);
                self.telemetry
                    .add(Counter::ChannelEncodingsShared, solver.encodings_shared);
                (found, exhausted)
            });
            let incident = match attempt {
                Ok((found, exhausted)) => {
                    lane.end();
                    reports.extend(found);
                    exhausted.then(|| Incident {
                        kind: IncidentKind::Channel,
                        name: chan.name.clone(),
                        message: "analysis budget exhausted; results for this channel are partial"
                            .into(),
                        rung: 0,
                        flight: Vec::new(),
                    })
                }
                Err(message) => {
                    lane.rewind();
                    Some(Incident {
                        kind: IncidentKind::Channel,
                        name: chan.name.clone(),
                        message,
                        rung: 0,
                        flight: Vec::new(),
                    })
                }
            };
            if let Some(incident) = incident {
                self.telemetry.add(Counter::IncompleteChannels, 1);
                lane.instant(
                    "incident",
                    vec![
                        ("kind", ArgValue::from(incident.kind.label())),
                        ("name", ArgValue::from(incident.name.as_str())),
                    ],
                );
                config.obs.incident(
                    chan.id.0 as u64,
                    &incident.name,
                    incident.kind.label(),
                    &incident.message,
                );
                self.record_incident(incident);
            }
            self.telemetry
                .observe(Metric::ChannelDetectNs, started.elapsed().as_nanos() as u64);
        }
        reports
    }
}
