//! Bug reports produced by GCatch's detectors.

use golite::Span;
use golite_ir::Loc;
use std::fmt;

/// Which detector produced a report (Table 1's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugKind {
    /// Blocking misuse-of-channel bug involving only channels (BMOC-C).
    BmocChannel,
    /// Blocking misuse-of-channel bug involving channels and mutexes
    /// (BMOC-M).
    BmocChannelMutex,
    /// A lock acquired on some path without a matching unlock.
    MissingUnlock,
    /// The same mutex acquired twice by one goroutine.
    DoubleLock,
    /// Two mutexes acquired in conflicting orders.
    ConflictingLockOrder,
    /// A struct field usually accessed under a lock, accessed without it.
    StructFieldRace,
    /// `testing.T.Fatal` called from a goroutine other than the test's.
    FatalInChildGoroutine,
    /// A send that can execute after a close of the same channel — a
    /// runtime panic (§6's non-blocking misuse-of-channel extension).
    SendOnClosedChannel,
}

impl BugKind {
    /// Whether this is one of the two BMOC categories.
    pub fn is_bmoc(&self) -> bool {
        matches!(self, BugKind::BmocChannel | BugKind::BmocChannelMutex)
    }

    /// Short column label matching Table 1.
    pub fn label(&self) -> &'static str {
        match self {
            BugKind::BmocChannel => "BMOC-C",
            BugKind::BmocChannelMutex => "BMOC-M",
            BugKind::MissingUnlock => "ForgetUnlock",
            BugKind::DoubleLock => "DoubleLock",
            BugKind::ConflictingLockOrder => "ConflictLock",
            BugKind::StructFieldRace => "StructField",
            BugKind::FatalInChildGoroutine => "Fatal",
            BugKind::SendOnClosedChannel => "SendOnClosed",
        }
    }
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One operation participating in a bug (e.g. a blocking send).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRef {
    /// Instruction location in the IR.
    pub loc: Loc,
    /// Source span.
    pub span: Span,
    /// Human-readable description, e.g. `send on outDone`.
    pub what: String,
    /// Name of the containing function.
    pub func_name: String,
}

/// How a BMOC report came to be: the detection work behind one finding.
///
/// Built from per-channel analysis state at the moment the solver returns a
/// satisfying model, so it is deterministic (no wall-clock values) and
/// bit-identical across `--jobs` settings. Surfaced in `--json` as the
/// optional `provenance` object and rendered by `--explain`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Provenance {
    /// Name of the channel the detector was examining.
    pub channel: String,
    /// Size of the disentangled Pset (§3.2) for that channel.
    pub pset_size: usize,
    /// Execution paths enumerated within the channel's scope (§3.3).
    pub paths_enumerated: u64,
    /// Branches pruned as infeasible during that enumeration.
    pub branches_pruned: u64,
    /// Path combinations built for the channel.
    pub combos_tried: usize,
    /// Suspicious groups submitted to the solver for the channel.
    pub groups_checked: u64,
    /// Verdict of the satisfying query (`blocking` for BMOC,
    /// `panic-schedule` for send-on-closed).
    pub solver_verdict: &'static str,
    /// Propagation/decision steps of the satisfying solver query.
    pub solver_steps: u64,
    /// Decisions of the satisfying solver query.
    pub solver_decisions: u64,
    /// Conflicts of the satisfying solver query.
    pub solver_conflicts: u64,
    /// Degradation-ladder rung (§3.3 limit tightening) the finding was
    /// produced at: 0 means full limits, higher rungs mean the channel's
    /// budget forced reduced unrolling / a shrunken Pset first.
    pub degradation_rung: u32,
}

impl Provenance {
    /// Renders the record as indented human-readable lines (the body of
    /// the `--explain` output).
    pub fn render(&self) -> String {
        let mut text = format!(
            "  why: channel `{}` — Pset of {} primitive(s); {} path(s) enumerated \
             ({} branch(es) pruned), {} combo(s) built, {} group(s) checked;\n  \
             solver verdict `{}` after {} step(s), {} decision(s), {} conflict(s)\n",
            self.channel,
            self.pset_size,
            self.paths_enumerated,
            self.branches_pruned,
            self.combos_tried,
            self.groups_checked,
            self.solver_verdict,
            self.solver_steps,
            self.solver_decisions,
            self.solver_conflicts,
        );
        if self.degradation_rung > 0 {
            text.push_str(&format!(
                "  degraded: found at ladder rung {} (limits tightened under budget pressure)\n",
                self.degradation_rung
            ));
        }
        text
    }
}

/// A detected bug.
#[derive(Debug, Clone)]
pub struct BugReport {
    /// Which detector fired.
    pub kind: BugKind,
    /// Creation site of the primary primitive (channel/mutex), if any.
    pub primitive: Option<Loc>,
    /// Source span of the primitive's creation site.
    pub primitive_span: Span,
    /// Human-readable primitive description (e.g. variable name).
    pub primitive_name: String,
    /// The operations that block forever (the suspicious group), or the
    /// offending accesses for traditional bugs.
    pub ops: Vec<OpRef>,
    /// The witness interleaving from the solver: operation descriptions in
    /// execution order (empty for traditional detectors).
    pub witness_order: Vec<String>,
    /// Free-form notes: analysis scope, path combination, etc.
    pub notes: String,
    /// Detection provenance (BMOC-family detectors only). Excluded from
    /// [`BugReport::dedup_key`] and from stable diagnostic IDs.
    pub provenance: Option<Provenance>,
}

impl BugReport {
    /// A stable deduplication key: detector plus the involved op locations.
    pub fn dedup_key(&self) -> (BugKind, Option<Loc>, Vec<Loc>) {
        let mut locs: Vec<Loc> = self.ops.iter().map(|o| o.loc).collect();
        locs.sort_unstable();
        (self.kind, self.primitive, locs)
    }
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {} ({})",
            self.kind, self.primitive_name, self.primitive_span
        )?;
        for op in &self.ops {
            writeln!(
                f,
                "  blocked: {} at {} in {}",
                op.what, op.span, op.func_name
            )?;
        }
        if !self.witness_order.is_empty() {
            writeln!(f, "  witness: {}", self.witness_order.join(" -> "))?;
        }
        if !self.notes.is_empty() {
            writeln!(f, "  note: {}", self.notes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use golite_ir::{BlockId, FuncId};

    fn mk_report() -> BugReport {
        BugReport {
            kind: BugKind::BmocChannel,
            primitive: Some(Loc {
                func: FuncId(0),
                block: BlockId(0),
                idx: 0,
            }),
            primitive_span: Span::new(0, 5, 3, 5),
            primitive_name: "outDone".into(),
            ops: vec![OpRef {
                loc: Loc {
                    func: FuncId(1),
                    block: BlockId(0),
                    idx: 2,
                },
                span: Span::new(10, 12, 7, 5),
                what: "send on outDone".into(),
                func_name: "Exec$closure0".into(),
            }],
            witness_order: vec!["make".into(), "send".into()],
            notes: "scope: Exec".into(),
            provenance: None,
        }
    }

    #[test]
    fn display_mentions_everything() {
        let text = mk_report().to_string();
        assert!(text.contains("BMOC-C"));
        assert!(text.contains("outDone"));
        assert!(text.contains("send on outDone"));
        assert!(text.contains("witness"));
    }

    #[test]
    fn dedup_key_ignores_op_order() {
        let mut a = mk_report();
        let extra = OpRef {
            loc: Loc {
                func: FuncId(0),
                block: BlockId(1),
                idx: 0,
            },
            span: Span::synthetic(),
            what: "recv".into(),
            func_name: "main".into(),
        };
        a.ops.push(extra.clone());
        let mut b = a.clone();
        b.ops.reverse();
        assert_eq!(a.dedup_key(), b.dedup_key());
    }

    #[test]
    fn dedup_key_ignores_provenance() {
        let a = mk_report();
        let mut b = a.clone();
        b.provenance = Some(Provenance {
            channel: "outDone".into(),
            pset_size: 1,
            solver_verdict: "blocking",
            ..Provenance::default()
        });
        assert_eq!(a.dedup_key(), b.dedup_key());
    }

    #[test]
    fn provenance_renders_every_field() {
        let p = Provenance {
            channel: "outDone".into(),
            pset_size: 2,
            paths_enumerated: 7,
            branches_pruned: 1,
            combos_tried: 3,
            groups_checked: 4,
            solver_verdict: "blocking",
            solver_steps: 120,
            solver_decisions: 11,
            solver_conflicts: 2,
            degradation_rung: 1,
        };
        let text = p.render();
        assert!(text.contains("outDone"));
        assert!(text.contains("2 primitive(s)"));
        assert!(text.contains("7 path(s)"));
        assert!(text.contains("blocking"));
        assert!(text.contains("120 step(s)"));
        assert!(text.contains("ladder rung 1"));
    }

    #[test]
    fn provenance_omits_rung_line_at_full_limits() {
        let p = Provenance {
            channel: "outDone".into(),
            solver_verdict: "blocking",
            ..Provenance::default()
        };
        assert!(!p.render().contains("ladder rung"));
    }

    #[test]
    fn bmoc_classification() {
        assert!(BugKind::BmocChannel.is_bmoc());
        assert!(BugKind::BmocChannelMutex.is_bmoc());
        assert!(!BugKind::DoubleLock.is_bmoc());
    }
}
