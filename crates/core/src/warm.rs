//! Warm per-module analysis sessions for `gcatch serve` (incremental
//! re-analysis).
//!
//! PR 9's daemon caches final *responses*: any edit, however small, misses
//! the cache and pays full module cost. This module adds warmth below the
//! response level. After every eligible `check`, the daemon keeps a
//! [`WarmEntry`] for the module path: the diffable shape of the lowered IR
//! ([`golite_ir::diff::ModuleShape`]), one [`ChannelRecord`] per analyzed
//! channel (its disentangling metadata plus its full outcome — findings,
//! witnesses, provenance, incident), and a snapshot of the session's
//! cross-channel solver-verdict cache.
//!
//! On the next `check` of the same path, [`warm_check`] diffs the new IR
//! against the cached shape at function granularity and computes the dirty
//! set with the memoized reverse-reachability of the alias analysis: a
//! channel is re-analyzed only if its Pset/scope can reach a changed
//! function (see `disentangle::influences`); every other channel's outcome
//! is replayed verbatim from the warm entry, and the re-analyzed channels
//! reuse the imported solver verdicts instead of rebuilding encodings.
//!
//! # Soundness / byte-identity
//!
//! The correctness bar is the established one: a warm response must be
//! byte-identical to a cold daemon and to single-shot `gcatch check
//! --json`. Replay is therefore gated on *everything* a channel's analysis
//! reads being provably unchanged:
//!
//! * function fingerprints cover the CFG dump, all source spans, register
//!   names/types, and the `FuncId` itself, so a replayed report's `Loc`s
//!   and spans are valid in the new module;
//! * shapes are incomparable (full cold re-analysis) when module-level
//!   items change — globals, structs, or the function roster;
//! * the channel's scope root, Pset member sites, creation-site metadata,
//!   and the operation lists of every Pset member must be identical;
//! * no changed function may be inside the channel's scope, reach into it,
//!   or hold an operation of a Pset member.
//!
//! Sessions are memory-only by design (crash-only: a killed daemon
//! restarts cold and falls back to the persisted response cache), bounded
//! by `--max-sessions` with least-recently-used eviction, and bypassed
//! entirely for non-`check` ops, deadline-bearing requests, and fault
//! plans that can fire anywhere but the `serve.session` site.

use crate::detector::{DetectorConfig, GroupKey};
use crate::diagnostics::render_json_with;
use crate::faults;
use crate::primitives::{PrimId, Primitive, Primitives};
use crate::report::BugReport;
use crate::resilience::Incident;
use crate::trace::TraceLevel;
use crate::{checkers::Selection, GCatch};
use golite_ir::diff::{changed_funcs, module_shape, ModuleShape};
use golite_ir::ir::{FuncId, Loc};
use golite_ir::AliasMode;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;

fn fnv_u32(h: u64, v: u32) -> u64 {
    fnv(h, &v.to_le_bytes())
}

fn fnv_loc(mut h: u64, loc: Loc) -> u64 {
    h = fnv_u32(h, loc.func.0);
    h = fnv_u32(h, loc.block.0);
    fnv_u32(h, loc.idx)
}

/// Fingerprint of a channel's creation site: kind, buffer size, name, and
/// source span. Two records only match if the primitive itself is the same.
pub(crate) fn channel_meta(prim: &Primitive) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv(h, format!("{:?}", prim.kind).as_bytes());
    h = fnv(h, prim.name.as_bytes());
    h = fnv_loc(h, prim.site);
    h = fnv_u32(h, prim.span.start);
    h = fnv_u32(h, prim.span.end);
    h = fnv_u32(h, prim.span.line);
    fnv_u32(h, prim.span.col)
}

/// Fingerprint of the operation lists of every Pset member, in Pset order.
/// Operations are alias-analysis products, so comparing old vs new op
/// hashes catches points-to changes the function diff alone cannot see
/// (an edit far away adding or removing an aliased operation).
pub(crate) fn ops_hash(prims: &Primitives, pset: &[PrimId]) -> u64 {
    let mut h = FNV_OFFSET;
    for &p in pset {
        h = fnv(h, b"p");
        for op in prims.ops_of(p) {
            h = fnv(h, format!("{:?}", op.kind).as_bytes());
            h = fnv_loc(h, op.loc);
            h = fnv_u32(h, op.span.start);
            h = fnv_u32(h, op.span.end);
            h = fnv(
                h,
                format!("{:?}{}", op.select_case, op.from_mutex).as_bytes(),
            );
        }
    }
    h
}

/// One channel's cached analysis: the disentangling metadata replay is
/// gated on, plus the full outcome to replay.
#[derive(Debug, Clone)]
pub struct ChannelRecord {
    pub(crate) site: Loc,
    pub(crate) meta: u64,
    pub(crate) ops_hash: u64,
    pub(crate) root: FuncId,
    pub(crate) pset_sites: Vec<Loc>,
    pub(crate) findings: Vec<(GroupKey, BugReport)>,
    pub(crate) incident: Option<Incident>,
}

/// Everything the daemon keeps warm for one module path.
pub struct WarmEntry {
    /// Diffable shape of the lowered module this entry was built against.
    pub shape: ModuleShape,
    /// Per-channel outcomes keyed by creation site.
    pub(crate) records: HashMap<Loc, ChannelRecord>,
    /// Cross-channel solver-verdict snapshot
    /// ([`EncodingCache::export`](crate::constraints::EncodingCache::export)).
    pub encodings: Vec<(Vec<u64>, bool)>,
}

impl fmt::Debug for WarmEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WarmEntry")
            .field(
                "fingerprint",
                &format_args!("{:016x}", self.shape.fingerprint),
            )
            .field("channels", &self.records.len())
            .field("encodings", &self.encodings.len())
            .finish()
    }
}

/// Per-request incremental context, threaded to the BMOC driver through
/// [`DetectorConfig::warm`]. Carries the prior entry and the changed
/// function set in; carries the harvested records and replay counts out.
pub struct WarmCheck {
    prior: Option<Arc<WarmEntry>>,
    changed: Vec<FuncId>,
    harvest: Mutex<HashMap<Loc, ChannelRecord>>,
    replayed: AtomicU64,
    reanalyzed: AtomicU64,
}

impl fmt::Debug for WarmCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WarmCheck")
            .field("prior", &self.prior.is_some())
            .field("changed", &self.changed.len())
            .finish()
    }
}

impl WarmCheck {
    fn new(prior: Option<Arc<WarmEntry>>, changed: Vec<FuncId>) -> WarmCheck {
        WarmCheck {
            prior,
            changed,
            harvest: Mutex::new(HashMap::new()),
            replayed: AtomicU64::new(0),
            reanalyzed: AtomicU64::new(0),
        }
    }

    /// The prior record for a channel creation site, if any.
    pub(crate) fn prior_record(&self, site: Loc) -> Option<&ChannelRecord> {
        self.prior.as_ref()?.records.get(&site)
    }

    /// Functions whose fingerprint changed since the prior entry.
    pub(crate) fn changed(&self) -> &[FuncId] {
        &self.changed
    }

    /// Counts one channel decision.
    pub(crate) fn note(&self, replayed: bool) {
        if replayed {
            self.replayed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reanalyzed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one channel's fresh (or replayed) outcome for the next
    /// request's entry.
    pub(crate) fn record(&self, record: ChannelRecord) {
        self.harvest
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(record.site, record);
    }
}

/// The daemon's warm-session store: one [`WarmEntry`] per module path,
/// bounded by `--max-sessions` with LRU eviction. Memory-only on purpose —
/// a restarted daemon must fall back to the response cache / cold path.
pub struct WarmSessions {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<String, Arc<WarmEntry>>,
    /// Recency order, oldest first.
    order: Vec<String>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl fmt::Debug for WarmSessions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock();
        f.debug_struct("WarmSessions")
            .field("capacity", &self.capacity)
            .field("resident", &inner.entries.len())
            .field("hits", &inner.hits)
            .field("misses", &inner.misses)
            .field("evictions", &inner.evictions)
            .finish()
    }
}

impl WarmSessions {
    /// An empty store holding at most `capacity` module sessions
    /// (`capacity` must be non-zero; `--max-sessions 0` disables the store
    /// by not constructing one).
    pub fn new(capacity: usize) -> WarmSessions {
        WarmSessions {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident session count.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether no sessions are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetches (and freshens) the entry for a module path.
    fn get(&self, path: &str) -> Option<Arc<WarmEntry>> {
        let mut inner = self.lock();
        let entry = inner.entries.get(path).cloned()?;
        if let Some(pos) = inner.order.iter().position(|p| p == path) {
            let p = inner.order.remove(pos);
            inner.order.push(p);
        }
        Some(entry)
    }

    /// Installs (or replaces) the entry for a module path, evicting the
    /// least-recently-used sessions past capacity. Returns how many were
    /// evicted.
    fn insert(&self, path: &str, entry: WarmEntry) -> u64 {
        let mut inner = self.lock();
        if inner
            .entries
            .insert(path.to_string(), Arc::new(entry))
            .is_some()
        {
            if let Some(pos) = inner.order.iter().position(|p| p == path) {
                inner.order.remove(pos);
            }
        }
        inner.order.push(path.to_string());
        let mut evicted = 0;
        while inner.entries.len() > self.capacity {
            let oldest = inner.order.remove(0);
            inner.entries.remove(&oldest);
            evicted += 1;
        }
        inner.evictions += evicted;
        evicted
    }

    /// Drops the entry for a module path (injected `serve.session` fault).
    /// Returns whether an entry was actually dropped.
    pub fn evict(&self, path: &str) -> bool {
        let mut inner = self.lock();
        let dropped = inner.entries.remove(path).is_some();
        if dropped {
            inner.order.retain(|p| p != path);
            inner.evictions += 1;
        }
        dropped
    }

    /// The `status` payload fragment: occupancy, hit/miss/eviction counts,
    /// and the resident modules with their shape fingerprints (sorted by
    /// path for determinism).
    pub fn status_json(&self) -> String {
        let inner = self.lock();
        let mut paths: Vec<&String> = inner.entries.keys().collect();
        paths.sort();
        let mut out = format!(
            "{{\"capacity\":{},\"resident\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\"modules\":[",
            self.capacity,
            inner.entries.len(),
            inner.hits,
            inner.misses,
            inner.evictions,
        );
        for (i, path) in paths.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let fp = inner.entries[*path].shape.fingerprint;
            out.push_str("{\"module\":\"");
            crate::diagnostics::escape_json(path, &mut out);
            out.push_str(&format!("\",\"fingerprint\":\"{fp:016x}\"}}"));
        }
        out.push_str("]}");
        out
    }
}

/// What one warm `check` did, for the daemon's telemetry and events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmOutcome {
    /// The exact `gcatch check --json` report bytes.
    pub json: String,
    /// Whether a comparable prior session contributed to this response.
    pub reused: bool,
    /// Channels replayed from the warm session.
    pub replayed: u64,
    /// Channels re-analyzed because the diff could reach them.
    pub reanalyzed: u64,
    /// Sessions evicted while serving this request (LRU pressure,
    /// injected `serve.session` fault, or incomparable module shape).
    pub evicted: u64,
    /// Whether an injected `serve.session` fault killed the warmth.
    pub fault_evicted: bool,
}

/// Runs one `check` request against the warm store: diff, replay, harvest.
///
/// The caller has already established eligibility (op is `check`, no
/// request deadline, `--max-sessions > 0`, and any fault plan restricted
/// to the `serve.session` site); this function handles the `serve.session`
/// fault draw itself and degrades to a cold analysis — never to a wrong
/// response.
pub fn warm_check(
    store: &WarmSessions,
    path: &str,
    source: &str,
    base: &DetectorConfig,
    alias: AliasMode,
) -> Result<WarmOutcome, String> {
    // Injected session loss: evict and run the request cold, without
    // re-warming (the next clean request warms the store again).
    if faults::armed() && faults::should_inject(faults::SITE_SERVE_SESSION, path) {
        let evicted = store.evict(path);
        let module = golite_ir::lower_source(source)?;
        let gcatch = GCatch::with_options(&module, TraceLevel::Off, alias);
        let diagnostics = gcatch.diagnostics(base, &Selection::default());
        let incidents = gcatch.incidents();
        return Ok(WarmOutcome {
            json: render_json_with(&diagnostics, None, &incidents),
            reused: false,
            replayed: 0,
            reanalyzed: 0,
            evicted: u64::from(evicted),
            fault_evicted: true,
        });
    }

    let module = golite_ir::lower_source(source)?;
    let shape = module_shape(&module);
    let prior = store.get(path);
    let mut evicted = 0u64;
    let (prior, changed) = match prior {
        Some(entry) => match changed_funcs(&entry.shape, &shape) {
            Some(changed) => {
                store.lock().hits += 1;
                (Some(entry), changed)
            }
            None => {
                // Incomparable shape (toplevel items changed): the stale
                // session is useless — count its replacement as an
                // eviction and run cold.
                store.lock().evictions += 1;
                store.lock().misses += 1;
                evicted += 1;
                (None, Vec::new())
            }
        },
        None => {
            store.lock().misses += 1;
            (None, Vec::new())
        }
    };
    let reused = prior.is_some();

    let gcatch = GCatch::with_options(&module, TraceLevel::Off, alias);
    if let Some(entry) = &prior {
        gcatch.session().seed_encodings(&entry.encodings);
    }
    let warm = Arc::new(WarmCheck::new(prior, changed));
    let mut config = base.clone();
    config.warm = Some(warm.clone());
    let diagnostics = gcatch.diagnostics(&config, &Selection::default());
    let incidents = gcatch.incidents();
    let json = render_json_with(&diagnostics, None, &incidents);

    let records = std::mem::take(&mut *warm.harvest.lock().unwrap_or_else(|e| e.into_inner()));
    let entry = WarmEntry {
        shape,
        records,
        encodings: gcatch.session().export_encodings(),
    };
    evicted += store.insert(path, entry);

    Ok(WarmOutcome {
        json,
        reused,
        replayed: warm.replayed.load(Ordering::Relaxed),
        reanalyzed: warm.reanalyzed.load(Ordering::Relaxed),
        evicted,
        fault_evicted: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEAKY: &str = r#"
package main

func tweak(n int) int {
    return n + 1
}

func leaker() {
    ch := make(chan int, 0)
    go func() {
        ch <- 1
    }()
}

func safe() {
    done := make(chan int, 1)
    done <- tweak(1)
    <-done
}

func main() {
    leaker()
    safe()
}
"#;

    fn cold_json(source: &str) -> String {
        let module = golite_ir::lower_source(source).unwrap();
        let gcatch = GCatch::new(&module);
        let diagnostics = gcatch.diagnostics(&DetectorConfig::default(), &Selection::default());
        render_json_with(&diagnostics, None, &gcatch.incidents())
    }

    #[test]
    fn warm_replay_is_byte_identical_and_scoped() {
        let store = WarmSessions::new(4);
        let base = DetectorConfig::default();
        let first = warm_check(&store, "m.go", LEAKY, &base, AliasMode::default()).unwrap();
        assert!(!first.reused);
        assert_eq!(first.json, cold_json(LEAKY));

        // Edit only the helper `safe` calls: the leaker channel replays.
        let edited = LEAKY.replace("return n + 1", "return n + 2");
        let second = warm_check(&store, "m.go", &edited, &base, AliasMode::default()).unwrap();
        assert!(second.reused);
        assert_eq!(second.json, cold_json(&edited));
        assert!(second.replayed >= 1, "untouched channel must replay");
        assert!(second.reanalyzed >= 1, "edited channel must re-analyze");
    }

    #[test]
    fn identical_resubmission_replays_everything() {
        let store = WarmSessions::new(4);
        let base = DetectorConfig::default();
        warm_check(&store, "m.go", LEAKY, &base, AliasMode::default()).unwrap();
        let again = warm_check(&store, "m.go", LEAKY, &base, AliasMode::default()).unwrap();
        assert!(again.reused);
        assert_eq!(again.reanalyzed, 0);
        assert!(again.replayed >= 2);
        assert_eq!(again.json, cold_json(LEAKY));
    }

    #[test]
    fn roster_change_falls_back_cold_and_counts_an_eviction() {
        let store = WarmSessions::new(4);
        let base = DetectorConfig::default();
        warm_check(&store, "m.go", LEAKY, &base, AliasMode::default()).unwrap();
        let grown = format!("{LEAKY}\nfunc extra() {{\n}}\n");
        let out = warm_check(&store, "m.go", &grown, &base, AliasMode::default()).unwrap();
        assert!(!out.reused, "incomparable shape must not reuse");
        assert_eq!(out.evicted, 1);
        assert_eq!(out.json, cold_json(&grown));
    }

    #[test]
    fn lru_evicts_oldest_path() {
        let store = WarmSessions::new(2);
        let base = DetectorConfig::default();
        for path in ["a.go", "b.go", "c.go"] {
            let out = warm_check(&store, path, LEAKY, &base, AliasMode::default()).unwrap();
            assert_eq!(out.json, cold_json(LEAKY));
        }
        assert_eq!(store.len(), 2);
        // `a.go` was the oldest: re-checking it is a miss now.
        let out = warm_check(&store, "a.go", LEAKY, &base, AliasMode::default()).unwrap();
        assert!(!out.reused);
        let status = store.status_json();
        assert!(status.contains("\"capacity\":2"));
        assert!(status.contains("\"evictions\":"));
    }

    #[test]
    fn status_lists_resident_fingerprints() {
        let store = WarmSessions::new(4);
        let base = DetectorConfig::default();
        warm_check(&store, "b.go", LEAKY, &base, AliasMode::default()).unwrap();
        warm_check(&store, "a.go", LEAKY, &base, AliasMode::default()).unwrap();
        let status = store.status_json();
        let a = status.find("\"module\":\"a.go\"").expect("a.go listed");
        let b = status.find("\"module\":\"b.go\"").expect("b.go listed");
        assert!(a < b, "modules sorted by path");
        assert!(status.contains("\"fingerprint\":\""));
    }
}
