//! Deterministic fault injection at named sites.
//!
//! Resilience machinery that is only exercised by real failures is
//! resilience machinery that is never exercised. This module lets the
//! batch engine ([`batch`](crate::batch)), tests, and CI *deliberately*
//! drive the failure paths — retry, quarantine, the degradation ladder,
//! checkpoint resume — by injecting panics, artificial delays, and
//! solver-step exhaustion at a small registry of named sites:
//!
//! | site               | effect when it fires                             |
//! |--------------------|--------------------------------------------------|
//! | `batch.job`        | panic at the start of a batch job attempt        |
//! | `batch.delay`      | artificial delay at the start of a job attempt   |
//! | `detector.channel` | panic inside one channel's BMOC pipeline         |
//! | `solver.steps`     | step-exhaustion panic inside the DPLL loop       |
//! | `corpus.app`       | panic while running one corpus replica           |
//! | `sweep.worker`     | a sweep worker process self-terminates mid-job   |
//! | `sweep.heartbeat`  | a sweep worker stops writing heartbeats          |
//! | `sweep.lease`      | a sweep worker stops renewing its job lease      |
//! | `serve.accept`     | panic while setting up an accepted connection    |
//! | `serve.request`    | panic or delay inside one daemon request         |
//! | `serve.cache`      | a serve cache index entry is written corrupted   |
//!
//! Every decision is a pure function of the [`FaultPlan`] seed, the site
//! name, the enclosing scope (job id + attempt number), and a per-call
//! key — so a given `--fault-seed` produces the *same* faults in the
//! same places on every run, which is what makes kill-and-resume tests
//! reproducible.
//!
//! The layer is scope-confined rather than process-global: faults fire
//! only on a thread that has explicitly entered [`with_scope`]. Without
//! a scope every probe is a single thread-local read that returns
//! `false`, so detection outside the batch engine (and every golden
//! test) is byte-identical to a build without this module.

use prng::Prng;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// Panic at the start of a batch job attempt (supervisor-level fault).
pub const SITE_BATCH_JOB: &str = "batch.job";
/// Artificial delay at the start of a batch job attempt (drives hedging).
pub const SITE_BATCH_DELAY: &str = "batch.delay";
/// Panic inside one channel's BMOC detection pipeline.
pub const SITE_DETECT_CHANNEL: &str = "detector.channel";
/// Solver-step exhaustion: the DPLL engine panics mid-search.
pub const SITE_SOLVER_STEPS: &str = "solver.steps";
/// Panic while running one corpus replica through the census.
pub const SITE_CORPUS_APP: &str = "corpus.app";
/// A sweep worker process self-terminates (simulated crash) right after
/// claiming a job, leaving an orphaned lease behind.
pub const SITE_SWEEP_WORKER: &str = "sweep.worker";
/// A sweep worker silently stops writing heartbeat files while it keeps
/// working, so the coordinator must detect and kill it.
pub const SITE_SWEEP_HEARTBEAT: &str = "sweep.heartbeat";
/// A sweep worker stops renewing the lease of its current job, letting
/// the lease expire mid-run (drives the duplicate-decision path).
pub const SITE_SWEEP_LEASE: &str = "sweep.lease";
/// Panic while the serve daemon sets up an accepted connection; the
/// daemon must survive and keep accepting.
pub const SITE_SERVE_ACCEPT: &str = "serve.accept";
/// Panic (key `exec`) or artificial delay (key `delay`) inside one serve
/// request's execution; both must surface as structured incident
/// responses, never a dead connection.
pub const SITE_SERVE_REQUEST: &str = "serve.request";
/// A serve cache index entry is persisted as a deliberately corrupt line,
/// which the warm-restart load must drop and recompute.
pub const SITE_SERVE_CACHE: &str = "serve.cache";
/// The warm per-module session for a check request is lost (simulated
/// daemon-side session corruption): the request must evict the session and
/// fall back to a cold analysis, never to a wrong or partial response.
pub const SITE_SERVE_SESSION: &str = "serve.session";

/// All registered fault sites, in documentation order.
pub const ALL_SITES: [&str; 12] = [
    SITE_BATCH_JOB,
    SITE_BATCH_DELAY,
    SITE_DETECT_CHANNEL,
    SITE_SOLVER_STEPS,
    SITE_CORPUS_APP,
    SITE_SWEEP_WORKER,
    SITE_SWEEP_HEARTBEAT,
    SITE_SWEEP_LEASE,
    SITE_SERVE_ACCEPT,
    SITE_SERVE_REQUEST,
    SITE_SERVE_CACHE,
    SITE_SERVE_SESSION,
];

/// Prefix of every injected-fault panic message; supervisors use it to
/// classify a failure as transient (retry) rather than deterministic.
pub const INJECTED_PREFIX: &str = "injected fault:";

/// Whether a failure message came from this module.
pub fn is_injected(message: &str) -> bool {
    message.starts_with(INJECTED_PREFIX)
}

/// The site name embedded in an injected panic message
/// (`"injected fault: panic at SITE (KEY)"`), for event-bus correlation.
/// `None` for non-injected messages or injections without a site marker.
pub fn injected_site(message: &str) -> Option<&str> {
    let rest = message.strip_prefix(INJECTED_PREFIX)?;
    let rest = rest.trim_start().strip_prefix("panic at ")?;
    Some(rest.split(" (").next().unwrap_or(rest))
}

/// A deterministic fault-injection plan: how often faults fire, from
/// which seed, at which sites.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that an eligible probe fires.
    pub rate: f64,
    /// Seed all decisions derive from.
    pub seed: u64,
    /// Enabled sites; `None` enables every registered site.
    pub sites: Option<BTreeSet<String>>,
    /// Length of the artificial delay injected at [`SITE_BATCH_DELAY`].
    pub delay: Duration,
}

impl FaultPlan {
    /// A plan firing at `rate` with decisions derived from `seed`, all
    /// sites enabled, and a 25 ms artificial delay.
    pub fn new(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            rate,
            seed,
            sites: None,
            delay: Duration::from_millis(25),
        }
    }

    /// Restricts the plan to the given sites.
    pub fn with_sites<I: IntoIterator<Item = S>, S: Into<String>>(mut self, sites: I) -> FaultPlan {
        self.sites = Some(sites.into_iter().map(Into::into).collect());
        self
    }

    /// Overrides the injected delay length.
    pub fn with_delay(mut self, delay: Duration) -> FaultPlan {
        self.delay = delay;
        self
    }

    /// Whether `site` participates in this plan.
    pub fn site_enabled(&self, site: &str) -> bool {
        match &self.sites {
            None => true,
            Some(s) => s.contains(site),
        }
    }

    /// Builds a plan from the `GCATCH_FAULT_*` environment:
    /// `GCATCH_FAULT_RATE` (required; plan is `None` without it),
    /// `GCATCH_FAULT_SEED` (default 0), `GCATCH_FAULT_SITES`
    /// (comma-separated, default all), `GCATCH_FAULT_DELAY_MS`
    /// (default 25). Malformed values are reported as errors, not
    /// silently defaulted.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        let Ok(rate) = std::env::var("GCATCH_FAULT_RATE") else {
            return Ok(None);
        };
        let rate: f64 = rate
            .parse()
            .map_err(|e| format!("bad GCATCH_FAULT_RATE: {e}"))?;
        let seed = match std::env::var("GCATCH_FAULT_SEED") {
            Ok(s) => s
                .parse()
                .map_err(|e| format!("bad GCATCH_FAULT_SEED: {e}"))?,
            Err(_) => 0,
        };
        let mut plan = FaultPlan::new(rate, seed);
        if let Ok(sites) = std::env::var("GCATCH_FAULT_SITES") {
            plan = plan.with_sites(sites.split(',').map(|s| s.trim().to_string()));
        }
        if let Ok(ms) = std::env::var("GCATCH_FAULT_DELAY_MS") {
            let ms: u64 = ms
                .parse()
                .map_err(|e| format!("bad GCATCH_FAULT_DELAY_MS: {e}"))?;
            plan = plan.with_delay(Duration::from_millis(ms));
        }
        Ok(Some(plan))
    }
}

/// The thread's active fault scope: the plan plus the identity of the
/// unit of work whose probes should be considered.
struct Scope {
    plan: Arc<FaultPlan>,
    job: String,
    attempt: u32,
    /// Per-scope solver-query counter, so each query gets a distinct
    /// (but reproducible) decision key.
    queries: u64,
}

thread_local! {
    static SCOPE: RefCell<Option<Scope>> = const { RefCell::new(None) };
}

/// Runs `f` with fault injection armed on this thread for the given
/// job/attempt. Scopes nest by replacement: the previous scope (if any)
/// is restored afterwards, including on unwind — a panic injected inside
/// the scope must not leave injection armed for the catcher.
pub fn with_scope<T>(plan: Arc<FaultPlan>, job: &str, attempt: u32, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Scope>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            SCOPE.with(|s| *s.borrow_mut() = prev);
        }
    }
    let prev = SCOPE.with(|s| {
        s.borrow_mut().replace(Scope {
            plan,
            job: job.to_string(),
            attempt,
            queries: 0,
        })
    });
    let _restore = Restore(prev);
    f()
}

/// Whether any fault scope is active on this thread.
pub fn armed() -> bool {
    SCOPE.with(|s| s.borrow().is_some())
}

/// FNV-1a over a byte string, the same dependency-free hash the stable
/// diagnostic IDs use. Shared with the batch engine's backoff jitter and
/// journal fingerprint so every derived decision uses one hash family.
pub(crate) fn fnv(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deterministic decision: does the probe at `site` with `key` fire
/// under the current scope?
pub fn should_inject(site: &str, key: &str) -> bool {
    SCOPE.with(|s| {
        let scope = s.borrow();
        let Some(scope) = scope.as_ref() else {
            return false;
        };
        if !scope.plan.site_enabled(site) {
            return false;
        }
        decide(&scope.plan, &scope.job, scope.attempt, site, key)
    })
}

fn decide(plan: &FaultPlan, job: &str, attempt: u32, site: &str, key: &str) -> bool {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ plan.seed;
    h = fnv(h, site.as_bytes());
    h = fnv(h, job.as_bytes());
    h = fnv(h, &attempt.to_le_bytes());
    h = fnv(h, key.as_bytes());
    Prng::seed_from_u64(h).gen_bool(plan.rate)
}

/// Panics with an [`INJECTED_PREFIX`] message if the probe fires.
pub fn maybe_panic(site: &str, key: &str) {
    if should_inject(site, key) {
        panic!("{INJECTED_PREFIX} panic at {site} ({key})");
    }
}

/// Sleeps for the plan's delay if the probe fires. Returns the injected
/// delay so callers can attribute the time.
pub fn maybe_delay(site: &str, key: &str) -> Option<Duration> {
    if !should_inject(site, key) {
        return None;
    }
    let delay = SCOPE.with(|s| s.borrow().as_ref().map(|sc| sc.plan.delay))?;
    std::thread::sleep(delay);
    Some(delay)
}

/// Consulted once per solver query: when the [`SITE_SOLVER_STEPS`] probe
/// fires, returns the step count after which the DPLL engine should
/// panic (exhaustion is only observable once the search is underway).
/// Queries within a scope are numbered, so with a single-threaded
/// detection run (`jobs = 1`, the batch engine's configuration) the
/// decision sequence is reproducible.
pub fn solver_fault_threshold() -> Option<u64> {
    let fire = SCOPE.with(|s| {
        let mut scope = s.borrow_mut();
        let scope = scope.as_mut()?;
        if !scope.plan.site_enabled(SITE_SOLVER_STEPS) {
            return None;
        }
        let q = scope.queries;
        scope.queries += 1;
        Some(decide(
            &scope.plan,
            &scope.job.clone(),
            scope.attempt,
            SITE_SOLVER_STEPS,
            &format!("q{q}"),
        ))
    })?;
    fire.then_some(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rate: f64, seed: u64) -> Arc<FaultPlan> {
        Arc::new(FaultPlan::new(rate, seed).with_delay(Duration::from_millis(1)))
    }

    #[test]
    fn inert_without_a_scope() {
        assert!(!armed());
        assert!(!should_inject(SITE_BATCH_JOB, "x"));
        assert!(maybe_delay(SITE_BATCH_DELAY, "x").is_none());
        maybe_panic(SITE_DETECT_CHANNEL, "x"); // must not panic
        assert_eq!(solver_fault_threshold(), None);
    }

    #[test]
    fn decisions_are_deterministic_and_scope_dependent() {
        let p = plan(0.5, 7);
        let one = with_scope(p.clone(), "job-a", 1, || {
            (0..32)
                .map(|i| should_inject(SITE_BATCH_JOB, &format!("k{i}")))
                .collect::<Vec<_>>()
        });
        let two = with_scope(p.clone(), "job-a", 1, || {
            (0..32)
                .map(|i| should_inject(SITE_BATCH_JOB, &format!("k{i}")))
                .collect::<Vec<_>>()
        });
        assert_eq!(one, two, "same scope, same decisions");
        assert!(one.iter().any(|&b| b) && one.iter().any(|&b| !b));
        let other_attempt = with_scope(p, "job-a", 2, || {
            (0..32)
                .map(|i| should_inject(SITE_BATCH_JOB, &format!("k{i}")))
                .collect::<Vec<_>>()
        });
        assert_ne!(one, other_attempt, "attempt is part of the key");
    }

    #[test]
    fn rate_extremes() {
        with_scope(plan(1.0, 3), "j", 1, || {
            assert!(should_inject(SITE_CORPUS_APP, "k"));
        });
        with_scope(plan(0.0, 3), "j", 1, || {
            assert!(!should_inject(SITE_CORPUS_APP, "k"));
            assert_eq!(solver_fault_threshold(), None);
        });
    }

    #[test]
    fn site_filter_is_honored() {
        let p = Arc::new(FaultPlan::new(1.0, 0).with_sites([SITE_BATCH_DELAY]));
        with_scope(p, "j", 1, || {
            assert!(!should_inject(SITE_BATCH_JOB, "k"));
            assert!(should_inject(SITE_BATCH_DELAY, "k"));
        });
    }

    #[test]
    fn injected_panics_carry_the_marker() {
        let err = crate::resilience::catch_isolated(|| {
            with_scope(plan(1.0, 1), "j", 1, || maybe_panic(SITE_BATCH_JOB, "j"))
        })
        .expect_err("rate 1.0 must fire");
        assert!(is_injected(&err), "{err}");
    }

    #[test]
    fn scope_restores_on_unwind() {
        let _ = crate::resilience::catch_isolated(|| {
            with_scope(plan(1.0, 1), "j", 1, || maybe_panic(SITE_BATCH_JOB, "j"))
        });
        assert!(!armed(), "panic inside a scope must disarm it");
    }

    #[test]
    fn solver_threshold_numbers_queries() {
        // With rate 1.0 every query fires; the threshold is always the
        // same, but consecutive calls must keep advancing the counter
        // (distinct keys) rather than re-deciding query 0 forever.
        with_scope(plan(1.0, 9), "j", 1, || {
            assert_eq!(solver_fault_threshold(), Some(1));
            assert_eq!(solver_fault_threshold(), Some(1));
        });
        // With a middling rate the per-query sequence is reproducible.
        let seq = |attempt| {
            with_scope(plan(0.5, 9), "j", attempt, || {
                (0..16)
                    .map(|_| solver_fault_threshold().is_some())
                    .collect::<Vec<_>>()
            })
        };
        assert_eq!(seq(1), seq(1));
        assert_ne!(seq(1), seq(2));
    }

    #[test]
    fn injected_site_parses_panic_messages() {
        assert_eq!(
            injected_site("injected fault: panic at batch.job (mod-a)"),
            Some("batch.job")
        );
        assert_eq!(injected_site("real panic"), None);
        assert_eq!(injected_site("injected fault: solver budget"), None);
    }

    #[test]
    fn env_plan_requires_rate_and_validates() {
        // Not set in the test environment: no plan, no error. (Tests that
        // *set* the variables exercise this through the CLI, where the
        // process is isolated.)
        if std::env::var("GCATCH_FAULT_RATE").is_err() {
            assert!(matches!(FaultPlan::from_env(), Ok(None)));
        }
    }
}
