//! The BMOC constraint system (§3.4 of the paper).
//!
//! Given one path combination and one suspicious group, this module builds
//! `Φ = ΦR ∧ ΦB` over the [`minismt`] constraint language:
//!
//! * every kept event gets an order variable `O`;
//! * `Φorder` chains each goroutine's events; `Φspawn` orders `go`
//!   statements before the child's first event;
//! * each cross-goroutine (send, recv) occurrence pair on the same primitive
//!   gets a match variable `P(s, r)` implying `O_s = O_r`;
//! * the channel-state counters are pseudo-boolean sums: `CB_o` = number of
//!   sends ordered before `o` minus receives ordered before `o`, and
//!   `CLOSED_o` ⇔ some close is ordered before `o`;
//! * `ΦR` (reachability) asserts every non-group operation proceeds: a send
//!   needs buffer room or exactly one match, a receive needs a buffered
//!   element, a close, or exactly one match;
//! * `ΦB` (blocking) asserts every group operation blocks and is ordered
//!   after everything else.
//!
//! Mutexes were already rewritten into the channel view (`Lock` = send on a
//! buffer-1 channel, `Unlock` = receive), so a single encoding covers both.

use crate::detector::{Combo, GroupMember};
use crate::faults;
use crate::paths::{Event, PathOp};
use crate::primitives::{OpKind, PrimId, Primitives};
use crate::resilience::Budget;
use crate::telemetry::Telemetry;
use minismt::{Atom, IntVar, SolveResult, Solver, Term};
use std::collections::{BTreeMap, HashMap};

/// A communication occurrence inside a combination.
#[derive(Debug, Clone)]
struct Occurrence {
    goroutine: usize,
    prim: PrimId,
    kind: OpKind,
    order: IntVar,
    in_group: bool,
}

/// The verdict for one (combination, group) query.
#[derive(Debug)]
pub enum Verdict {
    /// A witness interleaving exists: descriptions of events in execution
    /// order.
    Blocking(Vec<String>),
    /// The group cannot block under this combination.
    Safe,
    /// The solver gave up (budget).
    Unknown,
}

/// Builds and solves `ΦR ∧ ΦB` for `combo` with the given suspicious group.
pub fn check_group(
    prims: &Primitives,
    combo: &Combo,
    group: &[GroupMember],
    step_limit: u64,
) -> Verdict {
    check_group_recorded(prims, combo, group, step_limit, None)
}

/// [`check_group`], additionally recording solver effort into `telemetry`.
pub fn check_group_recorded(
    prims: &Primitives,
    combo: &Combo,
    group: &[GroupMember],
    step_limit: u64,
    telemetry: Option<&Telemetry>,
) -> Verdict {
    let (verdict, stats) = check_group_traced(prims, combo, group, step_limit);
    if let (Some(t), Some(s)) = (telemetry, stats) {
        t.add_solver_stats(s);
    }
    verdict
}

/// [`check_group`], additionally returning the query's [`minismt`] effort
/// and timing stats (for tracing, histograms, and report provenance).
/// `None` when the query was short-circuited before reaching the solver.
pub fn check_group_traced(
    prims: &Primitives,
    combo: &Combo,
    group: &[GroupMember],
    step_limit: u64,
) -> (Verdict, Option<minismt::SolverStats>) {
    check_group_budgeted(prims, combo, group, step_limit, &Budget::default())
}

/// [`check_group_traced`] under a cooperative [`Budget`]: the query's
/// step limit is rationed from the budget's global step pool and its
/// deadline is handed to the DPLL engine. An already-expired budget
/// short-circuits to [`Verdict::Unknown`] without running the solver.
/// With an inactive (default) budget this is exactly
/// [`check_group_traced`].
pub fn check_group_budgeted(
    prims: &Primitives,
    combo: &Combo,
    group: &[GroupMember],
    step_limit: u64,
    budget: &Budget,
) -> (Verdict, Option<minismt::SolverStats>) {
    if budget.is_active() && budget.expired() {
        return (Verdict::Unknown, None);
    }
    let granted = budget.draw(step_limit);
    if granted == 0 {
        return (Verdict::Unknown, None);
    }
    let mut solver = Solver::new();
    solver.set_step_limit(granted);
    solver.set_deadline(budget.deadline());
    if let Some(after) = faults::solver_fault_threshold() {
        solver.inject_step_fault(after);
    }

    // Truncation point per goroutine: events after a group member's event
    // never execute.
    let mut cutoff: Vec<usize> = combo.gos.iter().map(|g| g.path.events.len()).collect();
    for m in group {
        cutoff[m.goroutine] = cutoff[m.goroutine].min(m.event + 1);
    }
    // A goroutine is alive if it is the root or its spawn event is kept.
    let mut alive = vec![false; combo.gos.len()];
    alive[0] = true;
    for (gi, g) in combo.gos.iter().enumerate().skip(1) {
        if let Some((parent, ev)) = g.spawned_at {
            if alive[parent] && ev < cutoff[parent] {
                alive[gi] = true;
            }
        }
    }
    if group.iter().any(|m| !alive[m.goroutine]) {
        // A group member's goroutine never starts; the solver is not run.
        budget.refund(granted);
        return (Verdict::Safe, None);
    }

    // Order variables for kept events. A BTreeMap, not a HashMap: ΦB below
    // iterates this map while asserting terms, and assertion order decides
    // atom numbering — and with it the DPLL search path and step counts,
    // which provenance exposes and the `--jobs` contract requires to be
    // bit-identical across runs.
    let mut order: BTreeMap<(usize, usize), IntVar> = BTreeMap::new();
    for (gi, _g) in combo.gos.iter().enumerate() {
        if !alive[gi] {
            continue;
        }
        for ei in 0..cutoff[gi] {
            order.insert((gi, ei), solver.fresh_int());
        }
    }

    // Φorder: per-goroutine chains.
    for gi in 0..combo.gos.len() {
        if !alive[gi] {
            continue;
        }
        for ei in 1..cutoff[gi] {
            let a = order[&(gi, ei - 1)];
            let b = order[&(gi, ei)];
            solver.assert(Term::lt(a, b));
        }
    }

    // Φspawn.
    for (gi, g) in combo.gos.iter().enumerate() {
        if !alive[gi] || cutoff[gi] == 0 {
            continue;
        }
        if let Some((parent, ev)) = g.spawned_at {
            if alive[parent] && ev < cutoff[parent] {
                let spawn_o = order[&(parent, ev)];
                let first = order[&(gi, 0)];
                solver.assert(Term::lt(spawn_o, first));
            }
        }
    }

    // Collect communication occurrences.
    let is_group = |gi: usize, ei: usize| group.iter().any(|m| m.goroutine == gi && m.event == ei);
    let mut occs: Vec<Occurrence> = Vec::new();
    for (gi, g) in combo.gos.iter().enumerate() {
        if !alive[gi] {
            continue;
        }
        for ei in 0..cutoff[gi] {
            let o = order[&(gi, ei)];
            match &g.path.events[ei] {
                Event::Op(op) => occs.push(Occurrence {
                    goroutine: gi,
                    prim: op.prim,
                    kind: op.kind,
                    order: o,
                    in_group: is_group(gi, ei),
                }),
                Event::Select { cases, chosen: Some(ci), .. }
                    // The chosen case's ops are real occurrences; a select
                    // chosen as a *group member* contributes blocked cases
                    // instead (handled below).
                    if !is_group(gi, ei) => {
                        for (case_idx, op) in cases {
                            if case_idx == ci {
                                occs.push(Occurrence {
                                    goroutine: gi,
                                    prim: op.prim,
                                    kind: op.kind,
                                    order: o,
                                    in_group: false,
                                });
                            }
                        }
                    }
                _ => {}
            }
        }
    }

    // Match variables P(s, r) between non-group cross-goroutine pairs.
    let mut p_vars: HashMap<(usize, usize), minismt::BoolVar> = HashMap::new();
    for (i, s) in occs.iter().enumerate() {
        if s.kind != OpKind::Send || s.in_group {
            continue;
        }
        for (j, r) in occs.iter().enumerate() {
            if r.kind != OpKind::Recv || r.in_group {
                continue;
            }
            if s.prim != r.prim || s.goroutine == r.goroutine {
                continue;
            }
            let p = solver.fresh_bool();
            p_vars.insert((i, j), p);
            // P(s, r) → O_s = O_r.
            solver.assert(Term::implies(Term::var(p), Term::eq_int(s.order, r.order)));
        }
    }
    // At most one match per occurrence.
    for (i, s) in occs.iter().enumerate() {
        if s.kind == OpKind::Send && !s.in_group {
            let atoms: Vec<Atom> = p_vars
                .iter()
                .filter(|((si, _), _)| *si == i)
                .map(|(_, &p)| Atom::Bool(p))
                .collect();
            if atoms.len() > 1 {
                solver.assert(Term::at_most_one(atoms));
            }
        }
        if s.kind == OpKind::Recv && !s.in_group {
            let atoms: Vec<Atom> = p_vars
                .iter()
                .filter(|((_, rj), _)| *rj == i)
                .map(|(_, &p)| Atom::Bool(p))
                .collect();
            if atoms.len() > 1 {
                solver.assert(Term::at_most_one(atoms));
            }
        }
    }

    // Channel-state helpers.
    let cb_terms =
        |occs: &[Occurrence], at: IntVar, prim: PrimId, skip: usize| -> Vec<(i64, Atom)> {
            let mut terms = Vec::new();
            for (k, o) in occs.iter().enumerate() {
                if k == skip || o.prim != prim || o.in_group {
                    continue;
                }
                let atom = Atom::DiffLe {
                    x: o.order,
                    y: at,
                    c: -1,
                }; // O_o < at
                match o.kind {
                    OpKind::Send => terms.push((1, atom)),
                    OpKind::Recv => terms.push((-1, atom)),
                    OpKind::Close => {}
                }
            }
            terms
        };
    let closed_term = |occs: &[Occurrence], at: IntVar, prim: PrimId| -> Term {
        let closes: Vec<Term> = occs
            .iter()
            .filter(|o| o.prim == prim && o.kind == OpKind::Close && !o.in_group)
            .map(|o| {
                Term::Atom(Atom::DiffLe {
                    x: o.order,
                    y: at,
                    c: -1,
                })
            })
            .collect();
        Term::or(closes)
    };
    let buffer_size = |prim: PrimId| prims.all[prim.0].buffer_size().unwrap_or(0);

    // ΦR: every non-group occurrence proceeds.
    for (i, occ) in occs.iter().enumerate() {
        if occ.in_group {
            continue;
        }
        let bs = buffer_size(occ.prim);
        match occ.kind {
            OpKind::Send => {
                // CB < BS ∨ exactly-one match.
                let cb = cb_terms(&occs, occ.order, occ.prim, i);
                let room = Term::Linear {
                    terms: cb,
                    cmp: minismt::Cmp::Lt,
                    k: bs,
                };
                let match_atoms: Vec<Atom> = p_vars
                    .iter()
                    .filter(|((si, _), _)| *si == i)
                    .map(|(_, &p)| Atom::Bool(p))
                    .collect();
                let matched = Term::exactly_one(match_atoms);
                solver.assert(Term::or([room, matched]));
            }
            OpKind::Recv => {
                // CB > 0 ∨ CLOSED ∨ exactly-one match.
                let cb = cb_terms(&occs, occ.order, occ.prim, i);
                let has_elem = Term::Linear {
                    terms: cb,
                    cmp: minismt::Cmp::Gt,
                    k: 0,
                };
                let closed = closed_term(&occs, occ.order, occ.prim);
                let match_atoms: Vec<Atom> = p_vars
                    .iter()
                    .filter(|((_, rj), _)| *rj == i)
                    .map(|(_, &p)| Atom::Bool(p))
                    .collect();
                let matched = Term::exactly_one(match_atoms);
                solver.assert(Term::or([has_elem, closed, matched]));
            }
            OpKind::Close => {}
        }
    }

    // ΦR for default-chosen selects: every Pset case is blocked at the
    // moment the select executes.
    for (gi, g) in combo.gos.iter().enumerate() {
        if !alive[gi] {
            continue;
        }
        for ei in 0..cutoff[gi] {
            if let Event::Select {
                cases,
                chosen: None,
                ..
            } = &g.path.events[ei]
            {
                let at = order[&(gi, ei)];
                for (_, op) in cases {
                    solver.assert(blocked_case(
                        &occs,
                        op,
                        at,
                        buffer_size(op.prim),
                        &closed_term,
                        &cb_terms,
                    ));
                }
            }
        }
    }

    // ΦB: group operations block, ordered after everything else.
    for m in group {
        let g_order = order[&(m.goroutine, m.event)];
        // Every other kept event is earlier.
        for (&(gi, ei), &o) in &order {
            if gi == m.goroutine && ei == m.event {
                continue;
            }
            if group.iter().any(|x| x.goroutine == gi && x.event == ei) {
                continue; // fellow group members are unordered among themselves
            }
            solver.assert(Term::lt(o, g_order));
        }
        // The operation itself cannot proceed.
        match &combo.gos[m.goroutine].path.events[m.event] {
            Event::Op(op) => {
                solver.assert(blocked_case(
                    &occs,
                    op,
                    g_order,
                    buffer_size(op.prim),
                    &closed_term,
                    &cb_terms,
                ));
            }
            Event::Select { cases, .. } => {
                for (_, op) in cases {
                    solver.assert(blocked_case(
                        &occs,
                        op,
                        g_order,
                        buffer_size(op.prim),
                        &closed_term,
                        &cb_terms,
                    ));
                }
            }
            other => unreachable!("group member must be an op or select, got {other:?}"),
        }
    }

    let result = solver.solve();
    let stats = solver.stats();
    budget.refund(granted.saturating_sub(stats.steps));
    let verdict = match result {
        SolveResult::Sat(model) => {
            // Produce the witness order: kept events sorted by O value.
            let mut timeline: Vec<(i64, String)> = Vec::new();
            for (&(gi, ei), &o) in &order {
                let t = model.int_value(o).unwrap_or(0);
                let desc = describe_event(prims, combo, gi, ei);
                timeline.push((t, desc));
            }
            timeline.sort();
            Verdict::Blocking(timeline.into_iter().map(|(_, d)| d).collect())
        }
        SolveResult::Unsat => Verdict::Safe,
        SolveResult::Unknown => Verdict::Unknown,
    };
    (verdict, Some(stats))
}

/// "Operation `op` cannot proceed at time `at`": a send finds the buffer
/// full (and, being unmatched by construction, blocks); a receive finds the
/// channel empty and not closed.
fn blocked_case(
    occs: &[Occurrence],
    op: &PathOp,
    at: IntVar,
    bs: i64,
    closed_term: &impl Fn(&[Occurrence], IntVar, PrimId) -> Term,
    cb_terms: &impl Fn(&[Occurrence], IntVar, PrimId, usize) -> Vec<(i64, Atom)>,
) -> Term {
    let cb = cb_terms(occs, at, op.prim, usize::MAX);
    match op.kind {
        OpKind::Send => {
            // Buffer full: CB >= BS.
            Term::Linear {
                terms: cb,
                cmp: minismt::Cmp::Ge,
                k: bs,
            }
        }
        OpKind::Recv => {
            // Empty and not closed: CB <= 0 ∧ ¬CLOSED.
            let empty = Term::Linear {
                terms: cb,
                cmp: minismt::Cmp::Le,
                k: 0,
            };
            let not_closed = Term::not(closed_term(occs, at, op.prim));
            Term::and([empty, not_closed])
        }
        OpKind::Close => Term::False, // close never blocks
    }
}

fn describe_event(prims: &Primitives, combo: &Combo, gi: usize, ei: usize) -> String {
    match &combo.gos[gi].path.events[ei] {
        Event::Op(op) => {
            let name = &prims.all[op.prim.0].name;
            let verb = match (op.kind, op.from_mutex) {
                (OpKind::Send, false) => "send",
                (OpKind::Recv, false) => "recv",
                (OpKind::Close, _) => "close",
                (OpKind::Send, true) => "lock",
                (OpKind::Recv, true) => "unlock",
            };
            format!("g{gi}:{verb}({name})@{}", op.span)
        }
        Event::Select { chosen, span, .. } => match chosen {
            Some(ci) => format!("g{gi}:select.case{ci}@{span}"),
            None => format!("g{gi}:select.default@{span}"),
        },
        Event::Spawn { target, .. } => format!("g{gi}:go(f{})", target.0),
        Event::Fact { value, .. } => format!("g{gi}:branch({value})"),
    }
}

/// §6 extension — the non-blocking misuse-of-channel query: can a send on
/// `prim` execute *after* a close of the same channel (a runtime panic)?
///
/// The encoding reuses ΦR (reachability: every communication in the
/// combination proceeds) and adds the panic constraint `O_close < O_send`
/// for the queried pair.
pub fn check_send_after_close(
    prims: &Primitives,
    combo: &Combo,
    send: GroupMember,
    close: GroupMember,
    step_limit: u64,
) -> Verdict {
    check_send_after_close_recorded(prims, combo, send, close, step_limit, None)
}

/// [`check_send_after_close`], additionally recording solver effort.
pub fn check_send_after_close_recorded(
    prims: &Primitives,
    combo: &Combo,
    send: GroupMember,
    close: GroupMember,
    step_limit: u64,
    telemetry: Option<&Telemetry>,
) -> Verdict {
    let (verdict, stats) = check_send_after_close_traced(prims, combo, send, close, step_limit);
    if let Some(t) = telemetry {
        t.add_solver_stats(stats);
    }
    verdict
}

/// [`check_send_after_close`], additionally returning the query's solver
/// stats (for tracing and provenance).
pub fn check_send_after_close_traced(
    prims: &Primitives,
    combo: &Combo,
    send: GroupMember,
    close: GroupMember,
    step_limit: u64,
) -> (Verdict, minismt::SolverStats) {
    check_send_after_close_budgeted(prims, combo, send, close, step_limit, &Budget::default())
}

/// [`check_send_after_close_traced`] under a cooperative [`Budget`]
/// (see [`check_group_budgeted`] for the rationing rules).
pub fn check_send_after_close_budgeted(
    prims: &Primitives,
    combo: &Combo,
    send: GroupMember,
    close: GroupMember,
    step_limit: u64,
    budget: &Budget,
) -> (Verdict, minismt::SolverStats) {
    if budget.is_active() && budget.expired() {
        return (Verdict::Unknown, minismt::SolverStats::default());
    }
    let granted = budget.draw(step_limit);
    if granted == 0 {
        return (Verdict::Unknown, minismt::SolverStats::default());
    }
    // No suspicious group: everything must be reachable.
    let mut solver = Solver::new();
    solver.set_step_limit(granted);
    solver.set_deadline(budget.deadline());
    if let Some(after) = faults::solver_fault_threshold() {
        solver.inject_step_fault(after);
    }

    // BTreeMap for the same reason as the BMOC encoder: iteration order
    // feeds term assertion order, which must be run-to-run deterministic.
    let mut order: BTreeMap<(usize, usize), IntVar> = BTreeMap::new();
    for (gi, g) in combo.gos.iter().enumerate() {
        for ei in 0..g.path.events.len() {
            order.insert((gi, ei), solver.fresh_int());
        }
    }
    for (gi, g) in combo.gos.iter().enumerate() {
        for ei in 1..g.path.events.len() {
            solver.assert(Term::lt(order[&(gi, ei - 1)], order[&(gi, ei)]));
        }
        if let Some((parent, ev)) = g.spawned_at {
            if !g.path.events.is_empty() {
                solver.assert(Term::lt(order[&(parent, ev)], order[&(gi, 0)]));
            }
        }
    }

    // Communication occurrences (chosen select cases included).
    let mut occs: Vec<Occurrence> = Vec::new();
    for (gi, g) in combo.gos.iter().enumerate() {
        for (ei, event) in g.path.events.iter().enumerate() {
            let o = order[&(gi, ei)];
            match event {
                Event::Op(op) => occs.push(Occurrence {
                    goroutine: gi,
                    prim: op.prim,
                    kind: op.kind,
                    order: o,
                    in_group: false,
                }),
                Event::Select {
                    cases,
                    chosen: Some(ci),
                    ..
                } => {
                    for (case_idx, op) in cases {
                        if case_idx == ci {
                            occs.push(Occurrence {
                                goroutine: gi,
                                prim: op.prim,
                                kind: op.kind,
                                order: o,
                                in_group: false,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Match variables and proceed constraints (ΦR), as in `check_group`.
    let mut p_vars: HashMap<(usize, usize), minismt::BoolVar> = HashMap::new();
    for (i, s) in occs.iter().enumerate() {
        if s.kind != OpKind::Send {
            continue;
        }
        for (j, r) in occs.iter().enumerate() {
            if r.kind != OpKind::Recv || s.prim != r.prim || s.goroutine == r.goroutine {
                continue;
            }
            let p = solver.fresh_bool();
            p_vars.insert((i, j), p);
            solver.assert(Term::implies(Term::var(p), Term::eq_int(s.order, r.order)));
        }
    }
    for i in 0..occs.len() {
        let send_atoms: Vec<Atom> = p_vars
            .iter()
            .filter(|((si, _), _)| *si == i)
            .map(|(_, &p)| Atom::Bool(p))
            .collect();
        if send_atoms.len() > 1 {
            solver.assert(Term::at_most_one(send_atoms));
        }
        let recv_atoms: Vec<Atom> = p_vars
            .iter()
            .filter(|((_, rj), _)| *rj == i)
            .map(|(_, &p)| Atom::Bool(p))
            .collect();
        if recv_atoms.len() > 1 {
            solver.assert(Term::at_most_one(recv_atoms));
        }
    }
    let cb_terms = |at: IntVar, prim: PrimId, skip: usize| -> Vec<(i64, Atom)> {
        let mut terms = Vec::new();
        for (k, o) in occs.iter().enumerate() {
            if k == skip || o.prim != prim {
                continue;
            }
            let atom = Atom::DiffLe {
                x: o.order,
                y: at,
                c: -1,
            };
            match o.kind {
                OpKind::Send => terms.push((1, atom)),
                OpKind::Recv => terms.push((-1, atom)),
                OpKind::Close => {}
            }
        }
        terms
    };
    for (i, occ) in occs.iter().enumerate() {
        let bs = prims.all[occ.prim.0].buffer_size().unwrap_or(0);
        match occ.kind {
            OpKind::Send => {
                let room = Term::Linear {
                    terms: cb_terms(occ.order, occ.prim, i),
                    cmp: minismt::Cmp::Lt,
                    k: bs,
                };
                let matched = Term::exactly_one(
                    p_vars
                        .iter()
                        .filter(|((si, _), _)| *si == i)
                        .map(|(_, &p)| Atom::Bool(p)),
                );
                solver.assert(Term::or([room, matched]));
            }
            OpKind::Recv => {
                let has_elem = Term::Linear {
                    terms: cb_terms(occ.order, occ.prim, i),
                    cmp: minismt::Cmp::Gt,
                    k: 0,
                };
                let closed = Term::or(
                    occs.iter()
                        .filter(|o| o.prim == occ.prim && o.kind == OpKind::Close)
                        .map(|o| {
                            Term::Atom(Atom::DiffLe {
                                x: o.order,
                                y: occ.order,
                                c: -1,
                            })
                        }),
                );
                let matched = Term::exactly_one(
                    p_vars
                        .iter()
                        .filter(|((_, rj), _)| *rj == i)
                        .map(|(_, &p)| Atom::Bool(p)),
                );
                solver.assert(Term::or([has_elem, closed, matched]));
            }
            OpKind::Close => {}
        }
    }

    // The panic constraint: close strictly before the send.
    let o_send = order[&(send.goroutine, send.event)];
    let o_close = order[&(close.goroutine, close.event)];
    solver.assert(Term::lt(o_close, o_send));

    let result = solver.solve();
    let stats = solver.stats();
    budget.refund(granted.saturating_sub(stats.steps));
    let verdict = match result {
        SolveResult::Sat(model) => {
            let mut timeline: Vec<(i64, String)> = order
                .iter()
                .map(|(&(gi, ei), &o)| {
                    (
                        model.int_value(o).unwrap_or(0),
                        describe_event(prims, combo, gi, ei),
                    )
                })
                .collect();
            timeline.sort();
            Verdict::Blocking(timeline.into_iter().map(|(_, d)| d).collect())
        }
        SolveResult::Unsat => Verdict::Safe,
        SolveResult::Unknown => Verdict::Unknown,
    };
    (verdict, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{Combo, GoroutinePath, GroupMember};
    use crate::paths::{Event, Path, PathOp};
    use crate::primitives::collect;
    use golite::Span;
    use golite_ir::ir::{BlockId, FuncId, Loc};

    /// Hand-builds a two-goroutine combination over one channel: the parent
    /// spawns a child; ops are injected directly as path events.
    fn combo_with(parent_ops: Vec<Event>, child_ops: Vec<Event>) -> (Combo, Primitives) {
        combo_with_cap(parent_ops, child_ops, 0)
    }

    fn combo_with_cap(
        parent_ops: Vec<Event>,
        child_ops: Vec<Event>,
        cap: usize,
    ) -> (Combo, Primitives) {
        // A real module supplies the primitive table (one channel).
        let module = golite_ir::lower_source(&format!(
            "func main() {{\n ch := make(chan int, {cap})\n close(ch)\n}}",
        ))
        .unwrap();
        let analysis = golite_ir::analyze(&module);
        let prims = collect(&module, &analysis);
        let mut parent = vec![Event::Spawn {
            site: Loc {
                func: FuncId(0),
                block: BlockId(0),
                idx: 0,
            },
            target: FuncId(0),
        }];
        parent.extend(parent_ops);
        let combo = Combo {
            gos: vec![
                GoroutinePath {
                    path: Path { events: parent },
                    spawned_at: None,
                    root_func: FuncId(0),
                },
                GoroutinePath {
                    path: Path { events: child_ops },
                    spawned_at: Some((0, 0)),
                    root_func: FuncId(0),
                },
            ],
        };
        (combo, prims)
    }

    fn op(prim: PrimId, kind: OpKind, idx: u32) -> Event {
        Event::Op(PathOp {
            prim,
            kind,
            loc: Loc {
                func: FuncId(0),
                block: BlockId(0),
                idx,
            },
            span: Span::synthetic(),
            from_mutex: false,
        })
    }

    #[test]
    fn orphan_send_blocks() {
        let (combo, prims) = combo_with(vec![], vec![op(PrimId(0), OpKind::Send, 9)]);
        let group = [GroupMember {
            goroutine: 1,
            event: 0,
        }];
        assert!(matches!(
            check_group(&prims, &combo, &group, 100_000),
            Verdict::Blocking(_)
        ));
    }

    #[test]
    fn matched_send_cannot_block() {
        // Parent receives: the child's send must match it, so claiming the
        // send blocks forever is UNSAT (the recv could not proceed).
        let (combo, prims) = combo_with(
            vec![op(PrimId(0), OpKind::Recv, 5)],
            vec![op(PrimId(0), OpKind::Send, 9)],
        );
        let group = [GroupMember {
            goroutine: 1,
            event: 0,
        }];
        assert!(matches!(
            check_group(&prims, &combo, &group, 100_000),
            Verdict::Safe
        ));
    }

    #[test]
    fn close_unblocks_receiver() {
        // Parent closes: the child's recv can always proceed via CLOSED.
        let (combo, prims) = combo_with(
            vec![op(PrimId(0), OpKind::Close, 5)],
            vec![op(PrimId(0), OpKind::Recv, 9)],
        );
        let group = [GroupMember {
            goroutine: 1,
            event: 0,
        }];
        assert!(matches!(
            check_group(&prims, &combo, &group, 100_000),
            Verdict::Safe
        ));
    }

    #[test]
    fn recv_after_group_send_truncates() {
        // The parent's recv comes AFTER its own later event... here: child
        // sends twice; group at the first send truncates the second away,
        // leaving the parent recv unmatched — so the scenario is UNSAT.
        let (combo, prims) = combo_with(
            vec![op(PrimId(0), OpKind::Recv, 5)],
            vec![
                op(PrimId(0), OpKind::Send, 9),
                op(PrimId(0), OpKind::Send, 10),
            ],
        );
        // Group = second send: first send matches the recv, second blocks.
        let group = [GroupMember {
            goroutine: 1,
            event: 1,
        }];
        assert!(matches!(
            check_group(&prims, &combo, &group, 100_000),
            Verdict::Blocking(_)
        ));
    }

    #[test]
    fn send_after_close_is_reachable() {
        // Same-channel close (parent) and send (child) with free ordering on
        // a buffered channel (the send can proceed without a receiver): the
        // panic interleaving exists.
        let (combo, prims) = combo_with_cap(
            vec![op(PrimId(0), OpKind::Close, 5)],
            vec![op(PrimId(0), OpKind::Send, 9)],
            1,
        );
        let verdict = check_send_after_close(
            &prims,
            &combo,
            GroupMember {
                goroutine: 1,
                event: 0,
            },
            GroupMember {
                goroutine: 0,
                event: 1,
            },
            100_000,
        );
        assert!(matches!(verdict, Verdict::Blocking(_)));
    }
}
