//! The BMOC constraint system (§3.4 of the paper).
//!
//! Given one path combination, this module builds a **guarded** encoding of
//! `Φ = ΦR ∧ ΦB` over the [`minismt`] constraint language, shared by every
//! suspicious-group query on that combination:
//!
//! * every event gets an order variable `O`, a guard `kept` (the event
//!   executes in this scenario), and — for blockable events — a guard `blk`
//!   (the event is a member of the blocking group). `part = kept ∧ ¬blk`
//!   selects the events that participate in matching and channel-state
//!   counters;
//! * `Φorder` chains each goroutine's events; `Φspawn` orders `go`
//!   statements before the child's first event (guarded by the child's
//!   first event being kept);
//! * each cross-goroutine (send, recv) occurrence pair on the same primitive
//!   gets a match variable `P(s, r)` implying participation of both ends and
//!   `O_s = O_r`;
//! * the channel-state counters are pseudo-boolean sums over auxiliary
//!   variables `q ⇔ part ∧ O_o < at`: `CB` = number of participating sends
//!   ordered before `at` minus receives, and `CLOSED` ⇔ some participating
//!   close is ordered before `at`;
//! * `ΦR` (reachability) asserts every participating operation proceeds: a
//!   send needs buffer room or exactly one match, a receive needs a buffered
//!   element, a close, or exactly one match;
//! * `ΦB` (blocking) asserts every `blk` operation blocks and is ordered
//!   after every participating event.
//!
//! Because all per-group variation lives in the `kept`/`blk` guards, one
//! encoding serves every group of a combination: each query is a
//! [`minismt::Solver::solve_under`] call whose assumptions fix the guards.
//! [`ChannelSolver`] manages that reuse (one persistent solver per channel,
//! one [`minismt::Solver::push`] scope per combination) and also implements
//! the fresh-per-query strategies used for differential testing.
//!
//! Mutexes were already rewritten into the channel view (`Lock` = send on a
//! buffer-1 channel, `Unlock` = receive), so a single encoding covers both.

use crate::detector::{Combo, GroupMember};
use crate::faults;
use crate::paths::{Event, PathOp};
use crate::primitives::{OpKind, PrimId, Primitives};
use crate::resilience::Budget;
use crate::telemetry::Telemetry;
use minismt::{Atom, BoolVar, IntVar, SolveResult, Solver, SolverMode, Term};
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// A communication occurrence inside a combination.
#[derive(Debug, Clone)]
struct Occurrence {
    goroutine: usize,
    prim: PrimId,
    kind: OpKind,
    order: IntVar,
    /// The event this occurrence belongs to (selects contribute their
    /// chosen case as an occurrence at the select's order point).
    event: (usize, usize),
}

/// The verdict for one (combination, group) query.
#[derive(Debug)]
pub enum Verdict {
    /// A witness interleaving exists: descriptions of events in execution
    /// order.
    Blocking(Vec<String>),
    /// The group cannot block under this combination.
    Safe,
    /// The solver gave up (budget).
    Unknown,
}

/// How the detector discharges its solver queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverStrategy {
    /// One persistent watched-literal solver per channel; each combination
    /// is a push/pop scope and each group query an assumption query that
    /// reuses the combination's encoding and learned clauses. The default.
    #[default]
    Incremental,
    /// A fresh watched-literal solver and encoding per query. The
    /// differential baseline for the incremental strategy.
    Fresh,
    /// A fresh solver per query running the legacy rescan propagation
    /// engine ([`minismt::SolverMode::Rescan`]).
    Rescan,
}

impl SolverStrategy {
    /// The [`minismt`] propagation engine this strategy runs.
    pub fn engine_mode(self) -> SolverMode {
        match self {
            SolverStrategy::Incremental | SolverStrategy::Fresh => SolverMode::Watched,
            SolverStrategy::Rescan => SolverMode::Rescan,
        }
    }

    /// Parses a CLI-facing name.
    pub fn parse(s: &str) -> Option<SolverStrategy> {
        match s {
            "incremental" => Some(SolverStrategy::Incremental),
            "fresh" => Some(SolverStrategy::Fresh),
            "rescan" => Some(SolverStrategy::Rescan),
            _ => None,
        }
    }
}

impl std::fmt::Display for SolverStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SolverStrategy::Incremental => "incremental",
            SolverStrategy::Fresh => "fresh",
            SolverStrategy::Rescan => "rescan",
        })
    }
}

/// What a combination's encoding is queried for; controls whether
/// default-select blocked-case constraints are asserted (the blocking
/// queries need them, the reachability-only send-after-close queries
/// keep the historical encoding without them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingKind {
    /// Blocking-group queries (`ΦR ∧ ΦB`).
    Group,
    /// Reachability-only queries (§6 send-after-close).
    Reach,
}

/// The result of one group query.
#[derive(Debug)]
pub struct GroupCheck {
    /// The verdict.
    pub verdict: Verdict,
    /// Solver effort for provenance/telemetry; `None` when the query was
    /// short-circuited before reaching the solver. For a `Blocking`
    /// verdict under the incremental strategy these are the stats of the
    /// canonical fresh re-solve, keeping provenance identical to the
    /// fresh strategy.
    pub stats: Option<minismt::SolverStats>,
    /// Whether the query reused a previously built combination encoding.
    pub reused: bool,
}

/// One query: either a blocking-group check or a send-after-close pair.
#[derive(Debug, Clone)]
enum Query<'q> {
    Group(&'q [GroupMember]),
    Pair {
        send: GroupMember,
        close: GroupMember,
    },
}

/// The canonical structure of one query's encoding, modulo channel (and
/// primitive) identity: primitives are renamed to their first-appearance
/// index over the combination walk, and only verdict-relevant structure
/// (event shapes, spawn links, buffer sizes, the guard assignment, the
/// step limit, the engine mode) enters the key. Two queries with equal
/// keys produce isomorphic encodings and therefore identical verdicts —
/// full structural equality, never a bare hash, so a collision cannot
/// produce a wrong verdict.
type CanonKey = Vec<u64>;

/// Builds the [`CanonKey`] of one query from its pre-encoding inputs.
fn canon_key(
    prims: &Primitives,
    combo: &Combo,
    kind: EncodingKind,
    query: &Query<'_>,
    step_limit: u64,
    mode: SolverMode,
) -> CanonKey {
    let mut key: Vec<u64> = Vec::with_capacity(64);
    key.push(match kind {
        EncodingKind::Group => 0,
        EncodingKind::Reach => 1,
    });
    key.push(match mode {
        SolverMode::Watched => 0,
        SolverMode::Rescan => 1,
    });
    key.push(step_limit);

    // Primitive renaming: first appearance over the deterministic walk.
    let mut canon_of: HashMap<PrimId, u64> = HashMap::new();
    let mut buffers: Vec<u64> = Vec::new();
    let mut canon = |p: PrimId, buffers: &mut Vec<u64>| -> u64 {
        *canon_of.entry(p).or_insert_with(|| {
            buffers.push(prims.all[p.0].buffer_size().unwrap_or(0) as u64);
            (buffers.len() - 1) as u64
        })
    };

    key.push(combo.gos.len() as u64);
    for g in &combo.gos {
        match g.spawned_at {
            Some((parent, ev)) => {
                key.push(1);
                key.push(parent as u64);
                key.push(ev as u64);
            }
            None => key.push(0),
        }
        key.push(g.path.events.len() as u64);
        for event in &g.path.events {
            match event {
                Event::Op(op) => {
                    key.push(0);
                    key.push(canon(op.prim, &mut buffers));
                    key.push(op.kind as u64);
                }
                Event::Select { cases, chosen, .. } => {
                    key.push(1);
                    key.push(u64::from(chosen.is_some()));
                    key.push(cases.len() as u64);
                    for (case_idx, op) in cases {
                        key.push(u64::from(Some(case_idx) == chosen.as_ref()));
                        key.push(canon(op.prim, &mut buffers));
                        key.push(op.kind as u64);
                    }
                }
                // Spawns and facts only occupy an order slot (part ⇔ kept);
                // the spawn *links* are captured by `spawned_at` above.
                _ => key.push(2),
            }
        }
    }
    key.push(buffers.len() as u64);
    key.extend(buffers);
    match query {
        Query::Group(group) => {
            key.push(0);
            key.push(group.len() as u64);
            for m in *group {
                key.push(m.goroutine as u64);
                key.push(m.event as u64);
            }
        }
        Query::Pair { send, close } => {
            key.push(1);
            key.push(send.goroutine as u64);
            key.push(send.event as u64);
            key.push(close.goroutine as u64);
            key.push(close.event as u64);
        }
    }
    key
}

/// Session-global cross-channel verdict cache: structurally identical
/// queries (see [`canon_key`]) share one solved outcome. Only definitive
/// verdicts are stored (`true` = blocking, `false` = safe); `Unknown` is
/// never cached. A `Blocking` hit still re-derives its witness and
/// provenance from the *actual* combination via the canonical fresh
/// solve, so reports carry the right names and spans and stay
/// byte-identical with sharing off.
#[derive(Debug, Default)]
pub struct EncodingCache {
    map: Mutex<HashMap<CanonKey, bool>>,
}

impl EncodingCache {
    /// An empty cache.
    pub fn new() -> EncodingCache {
        EncodingCache::default()
    }

    fn lookup(&self, key: &CanonKey) -> Option<bool> {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .copied()
    }

    fn store(&self, key: CanonKey, blocking: bool) {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, blocking);
    }

    /// Number of distinct canonical encodings currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Snapshots every cached verdict, sorted by key, for carrying solver
    /// warmth across daemon requests. Keys are fully structural (names
    /// renamed by first appearance, no positions), so a snapshot taken
    /// against one module version is sound to replay against any other.
    pub fn export(&self) -> Vec<(Vec<u64>, bool)> {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let mut entries: Vec<(Vec<u64>, bool)> = map.iter().map(|(k, &v)| (k.clone(), v)).collect();
        entries.sort();
        entries
    }

    /// Seeds this cache with verdicts previously taken via
    /// [`EncodingCache::export`]. Existing entries win on collision (both
    /// sides hold the same verdict for the same canonical key anyway).
    pub fn import(&self, entries: &[(Vec<u64>, bool)]) {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        for (k, v) in entries {
            map.entry(k.clone()).or_insert(*v);
        }
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The guarded encoding of one combination.
#[derive(Debug)]
struct Encoding {
    kind: EncodingKind,
    order: BTreeMap<(usize, usize), IntVar>,
    kept: BTreeMap<(usize, usize), BoolVar>,
    blk: BTreeMap<(usize, usize), BoolVar>,
}

/// The guard assignment of one query, plus the kept-event set for
/// witness reconstruction.
struct Assumptions {
    terms: Vec<Term>,
    kept_events: Vec<(usize, usize)>,
}

/// Per-channel solving context: owns the persistent incremental solver (if
/// the strategy uses one) and the telemetry counters for encoding reuse.
#[derive(Debug)]
pub struct ChannelSolver<'p> {
    prims: &'p Primitives,
    strategy: SolverStrategy,
    solver: Option<Solver>,
    enc: Option<Encoding>,
    /// Query kind declared by [`ChannelSolver::begin_combo`]; the actual
    /// encoding is built lazily on the first query that misses the
    /// cross-channel cache, so fully shared combinations never pay for
    /// an encoding at all.
    pending_kind: Option<EncodingKind>,
    base_clauses: usize,
    combo_queries: u64,
    /// Cross-channel verdict cache; `None` disables sharing.
    cache: Option<&'p EncodingCache>,
    /// Queries answered against an already-built combination encoding.
    pub encodings_reused: u64,
    /// Learned clauses retained from earlier queries at the moment a
    /// reusing query starts.
    pub learned_kept: u64,
    /// Queries answered from a structurally identical channel's cached
    /// verdict instead of fresh solver work.
    pub encodings_shared: u64,
}

impl<'p> ChannelSolver<'p> {
    /// Creates a context for one channel's queries.
    pub fn new(prims: &'p Primitives, strategy: SolverStrategy) -> ChannelSolver<'p> {
        Self::with_cache(prims, strategy, None)
    }

    /// [`ChannelSolver::new`] with an optional cross-channel verdict
    /// cache shared by every channel of the session.
    pub fn with_cache(
        prims: &'p Primitives,
        strategy: SolverStrategy,
        cache: Option<&'p EncodingCache>,
    ) -> ChannelSolver<'p> {
        ChannelSolver {
            prims,
            strategy,
            solver: None,
            enc: None,
            pending_kind: None,
            base_clauses: 0,
            combo_queries: 0,
            cache,
            encodings_reused: 0,
            learned_kept: 0,
            encodings_shared: 0,
        }
    }

    /// Opens a combination for the incremental strategy. The encoding
    /// itself is built lazily by the first cache-missing query (see
    /// [`ChannelSolver::ensure_encoding`]); the fresh strategies defer
    /// everything to the query.
    pub fn begin_combo(&mut self, _combo: &Combo, kind: EncodingKind) {
        if self.strategy != SolverStrategy::Incremental {
            return;
        }
        self.pending_kind = Some(kind);
    }

    /// Builds the combination's shared guarded encoding into a fresh
    /// push scope of the persistent solver, once per opened combination.
    fn ensure_encoding(&mut self, combo: &Combo) {
        if self.enc.is_some() {
            return;
        }
        let kind = self
            .pending_kind
            .expect("begin_combo must be called before incremental queries");
        let solver = self
            .solver
            .get_or_insert_with(|| Solver::with_mode(SolverMode::Watched));
        solver.push();
        let enc = build_encoding(solver, self.prims, combo, kind);
        self.base_clauses = solver.num_clauses();
        self.combo_queries = 0;
        self.enc = Some(enc);
    }

    /// Closes the current combination, discarding its encoding scope (the
    /// persistent solver survives for the next combination).
    pub fn end_combo(&mut self) {
        self.pending_kind = None;
        if self.enc.take().is_some() {
            if let Some(s) = self.solver.as_mut() {
                s.pop();
            }
        }
    }

    /// Checks one suspicious group of the current combination under a
    /// cooperative [`Budget`] (see [`check_group_budgeted`] for the
    /// rationing rules). Under the incremental strategy,
    /// [`ChannelSolver::begin_combo`] must have been called for `combo`.
    pub fn check_group(
        &mut self,
        combo: &Combo,
        group: &[GroupMember],
        step_limit: u64,
        budget: &Budget,
    ) -> GroupCheck {
        self.run_query(
            combo,
            EncodingKind::Group,
            Query::Group(group),
            step_limit,
            budget,
        )
    }

    /// Checks one send-after-close pair of the current combination (§6):
    /// can the send execute after the close (a runtime panic)?
    pub fn check_send_after_close(
        &mut self,
        combo: &Combo,
        send: GroupMember,
        close: GroupMember,
        step_limit: u64,
        budget: &Budget,
    ) -> GroupCheck {
        self.run_query(
            combo,
            EncodingKind::Reach,
            Query::Pair { send, close },
            step_limit,
            budget,
        )
    }

    fn run_query(
        &mut self,
        combo: &Combo,
        kind: EncodingKind,
        query: Query<'_>,
        step_limit: u64,
        budget: &Budget,
    ) -> GroupCheck {
        // Cross-channel sharing is bypassed whenever a budget is active
        // (cache hits would skip budget draws, changing later queries'
        // rationing) or fault injection is armed (hits would skip fault
        // draws, breaking the reproducible fault schedule).
        let shareable = self.cache.is_some() && !budget.is_active() && !faults::armed();
        if !shareable {
            return self.run_query_uncached(combo, kind, query, step_limit, budget);
        }
        let cache = self.cache.expect("checked above");
        let key = canon_key(
            self.prims,
            combo,
            kind,
            &query,
            step_limit,
            self.strategy.engine_mode(),
        );
        match cache.lookup(&key) {
            Some(false) => {
                // A structurally identical query was safe; so is this one.
                self.encodings_shared += 1;
                GroupCheck {
                    verdict: Verdict::Safe,
                    stats: None,
                    reused: false,
                }
            }
            Some(true) => {
                // Blocking: the verdict is shared, but the witness and
                // provenance must name *this* channel's events, so they
                // are re-derived by the canonical fresh solve — the exact
                // code path every strategy uses for a Blocking report,
                // which keeps reports byte-identical with sharing off.
                self.encodings_shared += 1;
                let (verdict, stats) = solve_fresh(
                    self.prims,
                    self.strategy.engine_mode(),
                    combo,
                    kind,
                    &query,
                    step_limit,
                    budget,
                    None,
                );
                GroupCheck {
                    verdict,
                    stats,
                    reused: false,
                }
            }
            None => {
                let check = self.run_query_uncached(combo, kind, query, step_limit, budget);
                match check.verdict {
                    Verdict::Safe => cache.store(key, false),
                    Verdict::Blocking(_) => cache.store(key, true),
                    Verdict::Unknown => {} // indefinite: never cached
                }
                check
            }
        }
    }

    fn run_query_uncached(
        &mut self,
        combo: &Combo,
        kind: EncodingKind,
        query: Query<'_>,
        step_limit: u64,
        budget: &Budget,
    ) -> GroupCheck {
        if budget.is_active() && budget.expired() {
            return GroupCheck {
                verdict: Verdict::Unknown,
                stats: None,
                reused: false,
            };
        }
        let granted = budget.draw(step_limit);
        if granted == 0 {
            return GroupCheck {
                verdict: Verdict::Unknown,
                stats: None,
                reused: false,
            };
        }
        // One fault-injection draw per logical query, before any
        // short-circuit: the `solver.steps` site numbers queries per scope,
        // and the historical engine drew at solver construction, so both
        // the count and the order of draws are part of the reproducible
        // fault schedule.
        let fault = faults::solver_fault_threshold();

        if self.strategy != SolverStrategy::Incremental {
            let (verdict, stats) = solve_fresh(
                self.prims,
                self.strategy.engine_mode(),
                combo,
                kind,
                &query,
                granted,
                budget,
                fault,
            );
            let spent = stats.map(|s| s.steps).unwrap_or(0);
            budget.refund(granted.saturating_sub(spent));
            return GroupCheck {
                verdict,
                stats,
                reused: false,
            };
        }

        self.ensure_encoding(combo);
        let assume = {
            let enc = self.enc.as_ref().expect("ensure_encoding built it");
            debug_assert_eq!(
                enc.kind, kind,
                "combo was opened for a different query kind"
            );
            assumptions_for(enc, combo, &query)
        };
        let Some(assume) = assume else {
            // A group member's goroutine never starts; the solver is not run.
            budget.refund(granted);
            return GroupCheck {
                verdict: Verdict::Safe,
                stats: None,
                reused: false,
            };
        };
        self.combo_queries += 1;
        let reused = self.combo_queries > 1;
        if reused {
            self.encodings_reused += 1;
            let solver = self.solver.as_ref().expect("solver exists with encoding");
            self.learned_kept += (solver.num_clauses() - self.base_clauses) as u64;
        }
        let solver = self.solver.as_mut().expect("solver exists with encoding");
        solver.set_step_limit(granted);
        solver.set_deadline(budget.deadline());
        solver.set_step_fault(fault);
        let result = solver.solve_under(&assume.terms);
        let inc_stats = solver.stats();
        match result {
            SolveResult::Unsat => {
                budget.refund(granted.saturating_sub(inc_stats.steps));
                GroupCheck {
                    verdict: Verdict::Safe,
                    stats: Some(inc_stats),
                    reused,
                }
            }
            SolveResult::Unknown => {
                budget.refund(granted.saturating_sub(inc_stats.steps));
                GroupCheck {
                    verdict: Verdict::Unknown,
                    stats: Some(inc_stats),
                    reused,
                }
            }
            SolveResult::Sat(inc_model) => {
                // Canonical witness solve: learned-clause retention makes the
                // incremental model and step counts depend on query history,
                // so the witness and provenance of a Blocking verdict are
                // re-derived from a fresh solver running the exact
                // fresh-strategy code path. The verdict itself is
                // history-independent (the search is complete), so Sat here
                // is Sat there; only an exhausted re-solve budget can
                // diverge, in which case the incremental model backs the
                // witness.
                let enc = self.enc.as_ref().expect("encoding checked above");
                let (verdict, stats) = solve_fresh(
                    self.prims,
                    SolverMode::Watched,
                    combo,
                    kind,
                    &query,
                    granted,
                    budget,
                    fault,
                );
                let canon_steps = stats.map(|s| s.steps).unwrap_or(0);
                budget.refund(granted.saturating_sub(inc_stats.steps + canon_steps));
                match verdict {
                    Verdict::Blocking(_) => GroupCheck {
                        verdict,
                        stats,
                        reused,
                    },
                    _ => GroupCheck {
                        verdict: Verdict::Blocking(witness_timeline(
                            self.prims, combo, enc, &assume, &inc_model,
                        )),
                        stats: Some(inc_stats),
                        reused,
                    },
                }
            }
        }
    }
}

/// One fresh-solver query: builds the guarded encoding from scratch and
/// solves under the query's guard assumptions. This is both the fresh
/// strategy's query path and the incremental strategy's canonical witness
/// path, which is what keeps the two strategies' reports byte-identical.
#[allow(clippy::too_many_arguments)]
fn solve_fresh(
    prims: &Primitives,
    mode: SolverMode,
    combo: &Combo,
    kind: EncodingKind,
    query: &Query<'_>,
    granted: u64,
    budget: &Budget,
    fault: Option<u64>,
) -> (Verdict, Option<minismt::SolverStats>) {
    let mut solver = Solver::with_mode(mode);
    solver.set_step_limit(granted);
    solver.set_deadline(budget.deadline());
    solver.set_step_fault(fault);
    let enc = build_encoding(&mut solver, prims, combo, kind);
    let Some(assume) = assumptions_for(&enc, combo, query) else {
        return (Verdict::Safe, None);
    };
    let result = solver.solve_under(&assume.terms);
    let stats = solver.stats();
    let verdict = match result {
        SolveResult::Sat(model) => {
            Verdict::Blocking(witness_timeline(prims, combo, &enc, &assume, &model))
        }
        SolveResult::Unsat => Verdict::Safe,
        SolveResult::Unknown => Verdict::Unknown,
    };
    (verdict, Some(stats))
}

/// Lazily reifies the channel-state auxiliary variables of one encoding:
/// `q(o, at) ⇔ part_o ∧ O_o < at`, shared across every pseudo-boolean sum
/// that references the same occurrence/time-point pair.
struct StateVars<'a> {
    occs: &'a [Occurrence],
    part: &'a BTreeMap<(usize, usize), BoolVar>,
    prims: &'a Primitives,
    q_vars: HashMap<(usize, u32), BoolVar>,
}

impl StateVars<'_> {
    fn q_var(&mut self, solver: &mut Solver, i: usize, at: IntVar) -> BoolVar {
        if let Some(&v) = self.q_vars.get(&(i, at.0)) {
            return v;
        }
        let v = solver.fresh_bool();
        solver.assert(Term::iff(
            Term::var(v),
            Term::and([
                Term::var(self.part[&self.occs[i].event]),
                Term::Atom(Atom::DiffLe {
                    x: self.occs[i].order,
                    y: at,
                    c: -1,
                }),
            ]),
        ));
        self.q_vars.insert((i, at.0), v);
        v
    }

    /// The `CB` counter at `at`: participating sends before minus
    /// participating receives before.
    fn cb_terms(
        &mut self,
        solver: &mut Solver,
        at: IntVar,
        prim: PrimId,
        skip: usize,
    ) -> Vec<(i64, Atom)> {
        let mut terms: Vec<(i64, Atom)> = Vec::new();
        for k in 0..self.occs.len() {
            if k == skip || self.occs[k].prim != prim {
                continue;
            }
            match self.occs[k].kind {
                OpKind::Send => terms.push((1, Atom::Bool(self.q_var(solver, k, at)))),
                OpKind::Recv => terms.push((-1, Atom::Bool(self.q_var(solver, k, at)))),
                OpKind::Close => {}
            }
        }
        terms
    }

    /// `CLOSED` at `at`: some participating close is ordered before.
    fn closed_term(&mut self, solver: &mut Solver, at: IntVar, prim: PrimId) -> Term {
        let mut closes: Vec<Term> = Vec::new();
        for k in 0..self.occs.len() {
            if self.occs[k].prim == prim && self.occs[k].kind == OpKind::Close {
                closes.push(Term::var(self.q_var(solver, k, at)));
            }
        }
        Term::or(closes)
    }

    fn buffer_size(&self, prim: PrimId) -> i64 {
        self.prims.all[prim.0].buffer_size().unwrap_or(0)
    }

    /// The condition under which `op` blocks at time point `at`.
    fn blocked_case(&mut self, solver: &mut Solver, op: &PathOp, at: IntVar) -> Term {
        let bs = self.buffer_size(op.prim);
        match op.kind {
            OpKind::Send => {
                // Buffer full: CB >= BS.
                let cb = self.cb_terms(solver, at, op.prim, usize::MAX);
                Term::Linear {
                    terms: cb,
                    cmp: minismt::Cmp::Ge,
                    k: bs,
                }
            }
            OpKind::Recv => {
                // Empty and not closed: CB <= 0 ∧ ¬CLOSED.
                let cb = self.cb_terms(solver, at, op.prim, usize::MAX);
                let empty = Term::Linear {
                    terms: cb,
                    cmp: minismt::Cmp::Le,
                    k: 0,
                };
                let not_closed = Term::not(self.closed_term(solver, at, op.prim));
                Term::and([empty, not_closed])
            }
            OpKind::Close => Term::False, // close never blocks
        }
    }
}

/// Builds the combination's guarded encoding into `solver`'s current scope.
fn build_encoding(
    solver: &mut Solver,
    prims: &Primitives,
    combo: &Combo,
    kind: EncodingKind,
) -> Encoding {
    // All maps are BTreeMaps: iteration order feeds term assertion order,
    // which decides atom numbering — and with it the DPLL search path and
    // step counts, which provenance exposes and the `--jobs` contract
    // requires to be bit-identical across runs.
    let mut order: BTreeMap<(usize, usize), IntVar> = BTreeMap::new();
    for (gi, g) in combo.gos.iter().enumerate() {
        for ei in 0..g.path.events.len() {
            order.insert((gi, ei), solver.fresh_int());
        }
    }
    let mut kept: BTreeMap<(usize, usize), BoolVar> = BTreeMap::new();
    let mut blk: BTreeMap<(usize, usize), BoolVar> = BTreeMap::new();
    let mut part: BTreeMap<(usize, usize), BoolVar> = BTreeMap::new();
    for (gi, g) in combo.gos.iter().enumerate() {
        for (ei, event) in g.path.events.iter().enumerate() {
            let k = solver.fresh_bool();
            kept.insert((gi, ei), k);
            if matches!(event, Event::Op(_) | Event::Select { .. }) {
                let b = solver.fresh_bool();
                let p = solver.fresh_bool();
                solver.assert(Term::iff(
                    Term::var(p),
                    Term::and([Term::var(k), Term::not(Term::var(b))]),
                ));
                blk.insert((gi, ei), b);
                part.insert((gi, ei), p);
            } else {
                // Spawns and facts are never group members: part ⇔ kept.
                part.insert((gi, ei), k);
            }
        }
    }

    // Φorder: per-goroutine chains (unconditional — ordering events that a
    // query truncates away is always satisfiable and keeps the skeleton
    // shared across queries).
    for (gi, g) in combo.gos.iter().enumerate() {
        for ei in 1..g.path.events.len() {
            solver.assert(Term::lt(order[&(gi, ei - 1)], order[&(gi, ei)]));
        }
    }

    // Φspawn: guarded by the child's first event being kept (the guard
    // assignments only keep it when the parent's spawn event is kept).
    for (gi, g) in combo.gos.iter().enumerate() {
        if g.path.events.is_empty() {
            continue;
        }
        if let Some((parent, ev)) = g.spawned_at {
            solver.assert(Term::implies(
                Term::var(kept[&(gi, 0)]),
                Term::lt(order[&(parent, ev)], order[&(gi, 0)]),
            ));
        }
    }

    // Collect communication occurrences: ops and chosen select cases.
    // Participation is decided per query by the event's `part` guard.
    let mut occs: Vec<Occurrence> = Vec::new();
    for (gi, g) in combo.gos.iter().enumerate() {
        for (ei, event) in g.path.events.iter().enumerate() {
            let o = order[&(gi, ei)];
            match event {
                Event::Op(op) => occs.push(Occurrence {
                    goroutine: gi,
                    prim: op.prim,
                    kind: op.kind,
                    order: o,
                    event: (gi, ei),
                }),
                Event::Select {
                    cases,
                    chosen: Some(ci),
                    ..
                } => {
                    for (case_idx, op) in cases {
                        if case_idx == ci {
                            occs.push(Occurrence {
                                goroutine: gi,
                                prim: op.prim,
                                kind: op.kind,
                                order: o,
                                event: (gi, ei),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Match variables P(s, r) between cross-goroutine pairs. A match
    // implies both ends participate, so guards subsume the historical
    // "non-group occurrences only" filter.
    let mut p_vars: BTreeMap<(usize, usize), BoolVar> = BTreeMap::new();
    for (i, s) in occs.iter().enumerate() {
        if s.kind != OpKind::Send {
            continue;
        }
        for (j, r) in occs.iter().enumerate() {
            if r.kind != OpKind::Recv || s.prim != r.prim || s.goroutine == r.goroutine {
                continue;
            }
            let p = solver.fresh_bool();
            p_vars.insert((i, j), p);
            solver.assert(Term::implies(
                Term::var(p),
                Term::and([
                    Term::var(part[&s.event]),
                    Term::var(part[&r.event]),
                    Term::eq_int(s.order, r.order),
                ]),
            ));
        }
    }
    // At most one match per occurrence.
    for (i, o) in occs.iter().enumerate() {
        let atoms: Vec<Atom> = match o.kind {
            OpKind::Send => p_vars
                .iter()
                .filter(|((si, _), _)| *si == i)
                .map(|(_, &p)| Atom::Bool(p))
                .collect(),
            OpKind::Recv => p_vars
                .iter()
                .filter(|((_, rj), _)| *rj == i)
                .map(|(_, &p)| Atom::Bool(p))
                .collect(),
            OpKind::Close => Vec::new(),
        };
        if atoms.len() > 1 {
            solver.assert(Term::at_most_one(atoms));
        }
    }

    // Channel-state helper builder: q(o, at) ⇔ part_o ∧ O_o < at. The q
    // variables are shared across every sum that references the same
    // occurrence/time-point pair — the payoff of building one encoding
    // per combination.
    let mut state = StateVars {
        occs: &occs,
        part: &part,
        prims,
        q_vars: HashMap::new(),
    };

    // ΦR: every participating occurrence proceeds.
    for (i, occ) in occs.iter().enumerate() {
        let bs = state.buffer_size(occ.prim);
        let proceed = match occ.kind {
            OpKind::Send => {
                // CB < BS ∨ exactly-one match.
                let cb = state.cb_terms(solver, occ.order, occ.prim, i);
                let room = Term::Linear {
                    terms: cb,
                    cmp: minismt::Cmp::Lt,
                    k: bs,
                };
                let match_atoms: Vec<Atom> = p_vars
                    .iter()
                    .filter(|((si, _), _)| *si == i)
                    .map(|(_, &p)| Atom::Bool(p))
                    .collect();
                Term::or([room, Term::exactly_one(match_atoms)])
            }
            OpKind::Recv => {
                // CB > 0 ∨ CLOSED ∨ exactly-one match.
                let cb = state.cb_terms(solver, occ.order, occ.prim, i);
                let has_elem = Term::Linear {
                    terms: cb,
                    cmp: minismt::Cmp::Gt,
                    k: 0,
                };
                let closed = state.closed_term(solver, occ.order, occ.prim);
                let match_atoms: Vec<Atom> = p_vars
                    .iter()
                    .filter(|((_, rj), _)| *rj == i)
                    .map(|(_, &p)| Atom::Bool(p))
                    .collect();
                Term::or([has_elem, closed, Term::exactly_one(match_atoms)])
            }
            OpKind::Close => continue,
        };
        solver.assert(Term::implies(Term::var(part[&occ.event]), proceed));
    }

    // ΦR for default-chosen selects (blocking queries only, matching the
    // historical encodings): every Pset case is blocked at the moment the
    // select executes.
    if kind == EncodingKind::Group {
        for (gi, g) in combo.gos.iter().enumerate() {
            for (ei, event) in g.path.events.iter().enumerate() {
                if let Event::Select {
                    cases,
                    chosen: None,
                    ..
                } = event
                {
                    let at = order[&(gi, ei)];
                    for (_, op) in cases {
                        let b = state.blocked_case(solver, op, at);
                        solver.assert(Term::implies(Term::var(kept[&(gi, ei)]), b));
                    }
                }
            }
        }
    }

    // ΦB: a blk event blocks and is ordered after every participating
    // event (fellow group members stay mutually unordered because their
    // own `part` guard is false).
    for (&(bgi, bei), &b) in &blk {
        for (&(agi, aei), &o_a) in &order {
            if (agi, aei) == (bgi, bei) {
                continue;
            }
            solver.assert(Term::implies(
                Term::and([Term::var(part[&(agi, aei)]), Term::var(b)]),
                Term::lt(o_a, order[&(bgi, bei)]),
            ));
        }
        let at = order[&(bgi, bei)];
        let blocked = match &combo.gos[bgi].path.events[bei] {
            Event::Op(op) => state.blocked_case(solver, op, at),
            Event::Select { cases, .. } => {
                let mut all: Vec<Term> = Vec::new();
                for (_, op) in cases {
                    all.push(state.blocked_case(solver, op, at));
                }
                Term::and(all)
            }
            other => unreachable!("blk guards cover ops and selects, got {other:?}"),
        };
        solver.assert(Term::implies(Term::var(b), blocked));
    }

    Encoding {
        kind,
        order,
        kept,
        blk,
    }
}

/// Computes the guard assignment for one query: which events are kept
/// (truncation + spawn reachability for group queries, everything for
/// pair queries) and which are blocking-group members. Returns `None`
/// when a group member's goroutine never starts (the query is trivially
/// safe).
fn assumptions_for(enc: &Encoding, combo: &Combo, query: &Query<'_>) -> Option<Assumptions> {
    let kept_of: Vec<usize> = match query {
        Query::Group(group) => {
            // Truncation point per goroutine: events after a group member's
            // event never execute.
            let mut cutoff: Vec<usize> = combo.gos.iter().map(|g| g.path.events.len()).collect();
            for m in *group {
                cutoff[m.goroutine] = cutoff[m.goroutine].min(m.event + 1);
            }
            // A goroutine is alive if it is the root or its spawn event is
            // kept.
            let mut alive = vec![false; combo.gos.len()];
            alive[0] = true;
            for (gi, g) in combo.gos.iter().enumerate().skip(1) {
                if let Some((parent, ev)) = g.spawned_at {
                    if alive[parent] && ev < cutoff[parent] {
                        alive[gi] = true;
                    }
                }
            }
            if group.iter().any(|m| !alive[m.goroutine]) {
                return None;
            }
            combo
                .gos
                .iter()
                .enumerate()
                .map(|(gi, _)| if alive[gi] { cutoff[gi] } else { 0 })
                .collect()
        }
        Query::Pair { .. } => combo.gos.iter().map(|g| g.path.events.len()).collect(),
    };

    let mut terms = Vec::with_capacity(enc.kept.len() + enc.blk.len() + 1);
    let mut kept_events = Vec::new();
    for (&(gi, ei), &k) in &enc.kept {
        if ei < kept_of[gi] {
            terms.push(Term::var(k));
            kept_events.push((gi, ei));
        } else {
            terms.push(Term::not(Term::var(k)));
        }
    }
    match query {
        Query::Group(group) => {
            let is_member =
                |gi: usize, ei: usize| group.iter().any(|m| m.goroutine == gi && m.event == ei);
            for m in group.iter() {
                assert!(
                    enc.blk.contains_key(&(m.goroutine, m.event)),
                    "group member must be an op or select, got {:?}",
                    combo.gos[m.goroutine].path.events[m.event]
                );
            }
            for (&(gi, ei), &b) in &enc.blk {
                if is_member(gi, ei) {
                    terms.push(Term::var(b));
                } else {
                    terms.push(Term::not(Term::var(b)));
                }
            }
        }
        Query::Pair { send, close } => {
            for &b in enc.blk.values() {
                terms.push(Term::not(Term::var(b)));
            }
            // The panic constraint: close strictly before the send.
            terms.push(Term::Atom(Atom::DiffLe {
                x: enc.order[&(close.goroutine, close.event)],
                y: enc.order[&(send.goroutine, send.event)],
                c: -1,
            }));
        }
    }
    Some(Assumptions { terms, kept_events })
}

/// Produces the witness order for a satisfying model: kept events sorted
/// by their order-variable values (ties by description).
fn witness_timeline(
    prims: &Primitives,
    combo: &Combo,
    enc: &Encoding,
    assume: &Assumptions,
    model: &minismt::Model,
) -> Vec<String> {
    let mut timeline: Vec<(i64, String)> = Vec::new();
    for &(gi, ei) in &assume.kept_events {
        let t = model.int_value(enc.order[&(gi, ei)]).unwrap_or(0);
        timeline.push((t, describe_event(prims, combo, gi, ei)));
    }
    timeline.sort();
    timeline.into_iter().map(|(_, d)| d).collect()
}

/// Builds and solves `ΦR ∧ ΦB` for `combo` with the given suspicious group.
pub fn check_group(
    prims: &Primitives,
    combo: &Combo,
    group: &[GroupMember],
    step_limit: u64,
) -> Verdict {
    check_group_recorded(prims, combo, group, step_limit, None)
}

/// [`check_group`], additionally recording solver effort into `telemetry`.
pub fn check_group_recorded(
    prims: &Primitives,
    combo: &Combo,
    group: &[GroupMember],
    step_limit: u64,
    telemetry: Option<&Telemetry>,
) -> Verdict {
    let (verdict, stats) = check_group_traced(prims, combo, group, step_limit);
    if let (Some(t), Some(s)) = (telemetry, stats) {
        t.add_solver_stats(s);
    }
    verdict
}

/// [`check_group`], additionally returning the query's [`minismt`] effort
/// and timing stats (for tracing, histograms, and report provenance).
/// `None` when the query was short-circuited before reaching the solver.
pub fn check_group_traced(
    prims: &Primitives,
    combo: &Combo,
    group: &[GroupMember],
    step_limit: u64,
) -> (Verdict, Option<minismt::SolverStats>) {
    check_group_budgeted(prims, combo, group, step_limit, &Budget::default())
}

/// [`check_group_traced`] under a cooperative [`Budget`]: the query's
/// step limit is rationed from the budget's global step pool and its
/// deadline is handed to the DPLL engine. An already-expired budget
/// short-circuits to [`Verdict::Unknown`] without running the solver.
/// With an inactive (default) budget this is exactly
/// [`check_group_traced`].
pub fn check_group_budgeted(
    prims: &Primitives,
    combo: &Combo,
    group: &[GroupMember],
    step_limit: u64,
    budget: &Budget,
) -> (Verdict, Option<minismt::SolverStats>) {
    let mut cs = ChannelSolver::new(prims, SolverStrategy::Fresh);
    let check = cs.check_group(combo, group, step_limit, budget);
    (check.verdict, check.stats)
}

fn describe_event(prims: &Primitives, combo: &Combo, gi: usize, ei: usize) -> String {
    match &combo.gos[gi].path.events[ei] {
        Event::Op(op) => {
            let name = &prims.all[op.prim.0].name;
            let verb = match (op.kind, op.from_mutex) {
                (OpKind::Send, false) => "send",
                (OpKind::Recv, false) => "recv",
                (OpKind::Close, _) => "close",
                (OpKind::Send, true) => "lock",
                (OpKind::Recv, true) => "unlock",
            };
            format!("g{gi}:{verb}({name})@{}", op.span)
        }
        Event::Select { chosen, span, .. } => match chosen {
            Some(ci) => format!("g{gi}:select.case{ci}@{span}"),
            None => format!("g{gi}:select.default@{span}"),
        },
        Event::Spawn { target, .. } => format!("g{gi}:go(f{})", target.0),
        Event::Fact { value, .. } => format!("g{gi}:branch({value})"),
    }
}

/// §6 extension — the non-blocking misuse-of-channel query: can a send on
/// `prim` execute *after* a close of the same channel (a runtime panic)?
///
/// The encoding reuses ΦR (reachability: every communication in the
/// combination proceeds) and adds the panic constraint `O_close < O_send`
/// as an assumption for the queried pair.
pub fn check_send_after_close(
    prims: &Primitives,
    combo: &Combo,
    send: GroupMember,
    close: GroupMember,
    step_limit: u64,
) -> Verdict {
    check_send_after_close_recorded(prims, combo, send, close, step_limit, None)
}

/// [`check_send_after_close`], additionally recording solver effort.
pub fn check_send_after_close_recorded(
    prims: &Primitives,
    combo: &Combo,
    send: GroupMember,
    close: GroupMember,
    step_limit: u64,
    telemetry: Option<&Telemetry>,
) -> Verdict {
    let (verdict, stats) = check_send_after_close_traced(prims, combo, send, close, step_limit);
    if let Some(t) = telemetry {
        t.add_solver_stats(stats);
    }
    verdict
}

/// [`check_send_after_close`], additionally returning the query's solver
/// stats (for tracing and provenance).
pub fn check_send_after_close_traced(
    prims: &Primitives,
    combo: &Combo,
    send: GroupMember,
    close: GroupMember,
    step_limit: u64,
) -> (Verdict, minismt::SolverStats) {
    check_send_after_close_budgeted(prims, combo, send, close, step_limit, &Budget::default())
}

/// [`check_send_after_close_traced`] under a cooperative [`Budget`]
/// (see [`check_group_budgeted`] for the rationing rules).
pub fn check_send_after_close_budgeted(
    prims: &Primitives,
    combo: &Combo,
    send: GroupMember,
    close: GroupMember,
    step_limit: u64,
    budget: &Budget,
) -> (Verdict, minismt::SolverStats) {
    let mut cs = ChannelSolver::new(prims, SolverStrategy::Fresh);
    let check = cs.check_send_after_close(combo, send, close, step_limit, budget);
    (check.verdict, check.stats.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{Combo, GoroutinePath, GroupMember};
    use crate::paths::{Event, Path, PathOp};
    use crate::primitives::collect;
    use golite::Span;
    use golite_ir::ir::{BlockId, FuncId, Loc};

    /// Hand-builds a two-goroutine combination over one channel: the parent
    /// spawns a child; ops are injected directly as path events.
    fn combo_with(parent_ops: Vec<Event>, child_ops: Vec<Event>) -> (Combo, Primitives) {
        combo_with_cap(parent_ops, child_ops, 0)
    }

    fn combo_with_cap(
        parent_ops: Vec<Event>,
        child_ops: Vec<Event>,
        cap: usize,
    ) -> (Combo, Primitives) {
        // A real module supplies the primitive table (one channel).
        let module = golite_ir::lower_source(&format!(
            "func main() {{\n ch := make(chan int, {cap})\n close(ch)\n}}",
        ))
        .unwrap();
        let analysis = golite_ir::analyze(&module);
        let prims = collect(&module, &analysis);
        let mut parent = vec![Event::Spawn {
            site: Loc {
                func: FuncId(0),
                block: BlockId(0),
                idx: 0,
            },
            target: FuncId(0),
        }];
        parent.extend(parent_ops);
        let combo = Combo {
            gos: vec![
                GoroutinePath {
                    path: Path { events: parent },
                    spawned_at: None,
                    root_func: FuncId(0),
                },
                GoroutinePath {
                    path: Path { events: child_ops },
                    spawned_at: Some((0, 0)),
                    root_func: FuncId(0),
                },
            ],
        };
        (combo, prims)
    }

    fn op(prim: PrimId, kind: OpKind, idx: u32) -> Event {
        Event::Op(PathOp {
            prim,
            kind,
            loc: Loc {
                func: FuncId(0),
                block: BlockId(0),
                idx,
            },
            span: Span::synthetic(),
            from_mutex: false,
        })
    }

    #[test]
    fn orphan_send_blocks() {
        let (combo, prims) = combo_with(vec![], vec![op(PrimId(0), OpKind::Send, 9)]);
        let group = [GroupMember {
            goroutine: 1,
            event: 0,
        }];
        assert!(matches!(
            check_group(&prims, &combo, &group, 100_000),
            Verdict::Blocking(_)
        ));
    }

    #[test]
    fn matched_send_cannot_block() {
        // Parent receives: the child's send must match it, so claiming the
        // send blocks forever is UNSAT (the recv could not proceed).
        let (combo, prims) = combo_with(
            vec![op(PrimId(0), OpKind::Recv, 5)],
            vec![op(PrimId(0), OpKind::Send, 9)],
        );
        let group = [GroupMember {
            goroutine: 1,
            event: 0,
        }];
        assert!(matches!(
            check_group(&prims, &combo, &group, 100_000),
            Verdict::Safe
        ));
    }

    #[test]
    fn close_unblocks_receiver() {
        // Parent closes: the child's recv can always proceed via CLOSED.
        let (combo, prims) = combo_with(
            vec![op(PrimId(0), OpKind::Close, 5)],
            vec![op(PrimId(0), OpKind::Recv, 9)],
        );
        let group = [GroupMember {
            goroutine: 1,
            event: 0,
        }];
        assert!(matches!(
            check_group(&prims, &combo, &group, 100_000),
            Verdict::Safe
        ));
    }

    #[test]
    fn recv_after_group_send_truncates() {
        // The parent's recv comes AFTER its own later event... here: child
        // sends twice; group at the first send truncates the second away,
        // leaving the parent recv unmatched — so the scenario is UNSAT.
        let (combo, prims) = combo_with(
            vec![op(PrimId(0), OpKind::Recv, 5)],
            vec![
                op(PrimId(0), OpKind::Send, 9),
                op(PrimId(0), OpKind::Send, 10),
            ],
        );
        // Group = second send: first send matches the recv, second blocks.
        let group = [GroupMember {
            goroutine: 1,
            event: 1,
        }];
        assert!(matches!(
            check_group(&prims, &combo, &group, 100_000),
            Verdict::Blocking(_)
        ));
    }

    #[test]
    fn send_after_close_is_reachable() {
        // Same-channel close (parent) and send (child) with free ordering on
        // a buffered channel (the send can proceed without a receiver): the
        // panic interleaving exists.
        let (combo, prims) = combo_with_cap(
            vec![op(PrimId(0), OpKind::Close, 5)],
            vec![op(PrimId(0), OpKind::Send, 9)],
            1,
        );
        let verdict = check_send_after_close(
            &prims,
            &combo,
            GroupMember {
                goroutine: 1,
                event: 0,
            },
            GroupMember {
                goroutine: 0,
                event: 1,
            },
            100_000,
        );
        assert!(matches!(verdict, Verdict::Blocking(_)));
    }

    /// Every strategy must agree on verdicts, and the incremental strategy
    /// must produce byte-identical witnesses to the fresh strategy.
    #[test]
    fn strategies_agree_on_hand_built_combos() {
        let cases: Vec<(Combo, Primitives, Vec<GroupMember>)> = vec![
            {
                let (c, p) = combo_with(vec![], vec![op(PrimId(0), OpKind::Send, 9)]);
                (
                    c,
                    p,
                    vec![GroupMember {
                        goroutine: 1,
                        event: 0,
                    }],
                )
            },
            {
                let (c, p) = combo_with(
                    vec![op(PrimId(0), OpKind::Recv, 5)],
                    vec![op(PrimId(0), OpKind::Send, 9)],
                );
                (
                    c,
                    p,
                    vec![GroupMember {
                        goroutine: 1,
                        event: 0,
                    }],
                )
            },
            {
                let (c, p) = combo_with(
                    vec![op(PrimId(0), OpKind::Recv, 5)],
                    vec![
                        op(PrimId(0), OpKind::Send, 9),
                        op(PrimId(0), OpKind::Send, 10),
                    ],
                );
                (
                    c,
                    p,
                    vec![GroupMember {
                        goroutine: 1,
                        event: 1,
                    }],
                )
            },
        ];
        for (combo, prims, group) in &cases {
            let run = |strategy: SolverStrategy| {
                let mut cs = ChannelSolver::new(prims, strategy);
                cs.begin_combo(combo, EncodingKind::Group);
                let check = cs.check_group(combo, group, 100_000, &Budget::default());
                cs.end_combo();
                check
            };
            let inc = run(SolverStrategy::Incremental);
            let fresh = run(SolverStrategy::Fresh);
            let rescan = run(SolverStrategy::Rescan);
            let label = |v: &Verdict| match v {
                Verdict::Blocking(w) => format!("blocking:{w:?}"),
                Verdict::Safe => "safe".into(),
                Verdict::Unknown => "unknown".into(),
            };
            assert_eq!(
                label(&inc.verdict),
                label(&fresh.verdict),
                "incremental vs fresh diverged"
            );
            assert_eq!(
                matches!(rescan.verdict, Verdict::Safe),
                matches!(fresh.verdict, Verdict::Safe),
                "rescan verdict diverged"
            );
        }
    }

    /// Reusing a combination encoding across that combination's groups
    /// must bump the reuse counters and keep verdicts stable.
    #[test]
    fn incremental_reuse_counts_queries() {
        let (combo, prims) = combo_with(
            vec![op(PrimId(0), OpKind::Recv, 5)],
            vec![
                op(PrimId(0), OpKind::Send, 9),
                op(PrimId(0), OpKind::Send, 10),
            ],
        );
        let mut cs = ChannelSolver::new(&prims, SolverStrategy::Incremental);
        cs.begin_combo(&combo, EncodingKind::Group);
        let g0 = cs.check_group(
            &combo,
            &[GroupMember {
                goroutine: 1,
                event: 0,
            }],
            100_000,
            &Budget::default(),
        );
        let g1 = cs.check_group(
            &combo,
            &[GroupMember {
                goroutine: 1,
                event: 1,
            }],
            100_000,
            &Budget::default(),
        );
        cs.end_combo();
        assert!(!g0.reused);
        assert!(g1.reused);
        assert_eq!(cs.encodings_reused, 1);
        assert!(matches!(g0.verdict, Verdict::Safe));
        assert!(matches!(g1.verdict, Verdict::Blocking(_)));
    }
}
