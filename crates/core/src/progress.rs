//! Live progress snapshots for `gcatch batch --progress` and
//! `gcatch sweep --progress`.
//!
//! The batch supervisor (or sweep coordinator) periodically freezes its
//! bookkeeping into a [`ProgressSnapshot`] and hands it to a caller-supplied
//! callback; the CLI renders it as a single carriage-return-refreshed TTY
//! status line. The snapshot is derived entirely from state the supervisor
//! already tracks — job counts plus the `job_wall_ns` histogram — so
//! enabling progress changes no analysis behavior and no report bytes.

/// A point-in-time view of a batch run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProgressSnapshot {
    /// True for a multi-process sweep (renders a `sweep` prefix instead of
    /// `batch`).
    pub sweep: bool,
    /// Jobs in the run (restored + executed).
    pub total: usize,
    /// Jobs decided so far (succeeded, quarantined, or restored).
    pub done: usize,
    /// Jobs restored from a checkpoint journal.
    pub resumed: usize,
    /// Retry dispatches so far.
    pub retried: u64,
    /// Hedge twins launched so far.
    pub hedged: u64,
    /// Jobs quarantined so far.
    pub quarantined: u64,
    /// Sweep jobs released back to the queue (lease expiry, worker death).
    pub released: u64,
    /// Sweep worker processes declared dead by the coordinator.
    pub workers_lost: u64,
    /// p50 of completed-job wall time, milliseconds.
    pub p50_ms: f64,
    /// p99 of completed-job wall time, milliseconds.
    pub p99_ms: f64,
    /// Estimated milliseconds until the run drains, from the mean
    /// completed-job wall time and the live worker count. `None` until the
    /// first job completes.
    pub eta_ms: Option<u64>,
}

fn fmt_eta(ms: u64) -> String {
    let secs = ms / 1000;
    if secs >= 60 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else if secs >= 1 {
        format!("{}s", secs)
    } else {
        format!("{ms}ms")
    }
}

impl ProgressSnapshot {
    /// Renders the one-line TTY status, e.g.
    /// `batch 5/8 done · 1 retried · 1 quarantined · p50 12 ms · p99 80 ms · eta 3s`.
    /// Zero-valued optional segments are omitted to keep the line short.
    pub fn render_line(&self) -> String {
        let verb = if self.sweep { "sweep" } else { "batch" };
        let mut line = format!("{verb} {}/{} done", self.done, self.total);
        if self.resumed > 0 {
            line.push_str(&format!(" · {} resumed", self.resumed));
        }
        if self.retried > 0 {
            line.push_str(&format!(" · {} retried", self.retried));
        }
        if self.hedged > 0 {
            line.push_str(&format!(" · {} hedged", self.hedged));
        }
        if self.quarantined > 0 {
            line.push_str(&format!(" · {} quarantined", self.quarantined));
        }
        if self.released > 0 {
            line.push_str(&format!(" · {} released", self.released));
        }
        if self.workers_lost > 0 {
            line.push_str(&format!(" · {} workers lost", self.workers_lost));
        }
        if self.p50_ms > 0.0 || self.p99_ms > 0.0 {
            line.push_str(&format!(
                " · p50 {:.0} ms · p99 {:.0} ms",
                self.p50_ms, self.p99_ms
            ));
        }
        match self.eta_ms {
            Some(ms) if self.done < self.total => {
                line.push_str(&format!(" · eta {}", fmt_eta(ms)));
            }
            _ => {}
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_line_omits_zero_segments() {
        let snap = ProgressSnapshot {
            total: 8,
            done: 3,
            ..ProgressSnapshot::default()
        };
        assert_eq!(snap.render_line(), "batch 3/8 done");
    }

    #[test]
    fn render_line_includes_everything_when_present() {
        let snap = ProgressSnapshot {
            total: 8,
            done: 5,
            resumed: 1,
            retried: 2,
            hedged: 1,
            quarantined: 1,
            p50_ms: 12.4,
            p99_ms: 80.2,
            eta_ms: Some(3_200),
            ..ProgressSnapshot::default()
        };
        assert_eq!(
            snap.render_line(),
            "batch 5/8 done · 1 resumed · 2 retried · 1 hedged · 1 quarantined \
             · p50 12 ms · p99 80 ms · eta 3s"
        );
    }

    #[test]
    fn sweep_line_carries_release_and_loss_segments() {
        let snap = ProgressSnapshot {
            sweep: true,
            total: 6,
            done: 4,
            released: 2,
            workers_lost: 1,
            ..ProgressSnapshot::default()
        };
        assert_eq!(
            snap.render_line(),
            "sweep 4/6 done · 2 released · 1 workers lost"
        );
    }

    #[test]
    fn eta_is_suppressed_once_done() {
        let snap = ProgressSnapshot {
            total: 4,
            done: 4,
            eta_ms: Some(1_000),
            ..ProgressSnapshot::default()
        };
        assert!(!snap.render_line().contains("eta"));
    }

    #[test]
    fn eta_humanizes_minutes() {
        assert_eq!(fmt_eta(61_000), "1m01s");
        assert_eq!(fmt_eta(900), "900ms");
        assert_eq!(fmt_eta(59_000), "59s");
    }
}
