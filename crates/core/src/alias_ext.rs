//! Small helpers over the points-to results shared by several detectors.

use golite_ir::alias::{AbstractObject, Analysis};
use golite_ir::ir::{FuncId, Loc, Operand};

/// Channel and mutex creation sites an operand may refer to, tagged with
/// whether each site is a mutex.
pub fn chan_sites_of(analysis: &Analysis, func: FuncId, op: &Operand) -> Vec<(Loc, bool)> {
    analysis
        .operand_points_to(func, op)
        .into_iter()
        .filter_map(|obj| match obj {
            AbstractObject::Chan(loc) => Some((loc, false)),
            AbstractObject::Mutex(loc) => Some((loc, true)),
            _ => None,
        })
        .collect()
}

/// Mutex creation sites only.
pub fn mutex_sites_of(analysis: &Analysis, func: FuncId, op: &Operand) -> Vec<Loc> {
    analysis
        .operand_points_to(func, op)
        .into_iter()
        .filter_map(|obj| match obj {
            AbstractObject::Mutex(loc) => Some(loc),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use golite_ir::{analyze, lower_source, Instr};

    #[test]
    fn distinguishes_mutex_from_channel() {
        let m = lower_source(
            "func main() {\n ch := make(chan int)\n var mu sync.Mutex\n mu.Lock()\n close(ch)\n mu.Unlock()\n}",
        )
        .unwrap();
        let a = analyze(&m);
        let f = m.func_by_name("main").unwrap();
        let lock = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .find_map(|i| match i {
                Instr::Lock { mutex, .. } => Some(mutex.clone()),
                _ => None,
            })
            .unwrap();
        let sites = chan_sites_of(&a, f.id, &lock);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].1, "lock target is a mutex");
        assert_eq!(mutex_sites_of(&a, f.id, &lock).len(), 1);
    }
}
