//! Process shutdown signals as a pollable flag.
//!
//! The serve daemon ([`serve`](crate::serve)) and the sweep coordinator
//! ([`sweep`](crate::sweep)) both need the same contract: SIGINT/SIGTERM
//! must trigger a *graceful drain* — stop taking new work, let in-flight
//! work finish, flush durable state, exit cleanly — instead of the
//! default immediate termination. The handler itself does the only thing
//! that is async-signal-safe here: it stores into a process-wide
//! `AtomicBool`. Supervision loops poll [`shutdown_signaled`] at their
//! own cadence.
//!
//! The workspace is dependency-free by policy (no `libc` crate), so the
//! `signal(2)` binding is declared by hand; `std` already links the
//! platform C library, which provides the symbol. On non-Unix targets
//! the module compiles to an inert flag that is only ever set by
//! [`request_shutdown_for_tests`].

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        /// `sighandler_t signal(int signum, sighandler_t handler)` from
        /// the C library `std` links anyway.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }

    pub extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: the one thing guaranteed safe inside a
        // signal handler.
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

/// Installs the SIGINT/SIGTERM → flag handler. Idempotent; safe to call
/// from both the serve daemon and the sweep coordinator in one process.
pub fn install_shutdown_handler() {
    #[cfg(unix)]
    unsafe {
        let handler = sys::on_signal as extern "C" fn(i32) as usize;
        sys::signal(sys::SIGINT, handler);
        sys::signal(sys::SIGTERM, handler);
    }
}

/// Whether SIGINT or SIGTERM has been received since the handler was
/// installed (or [`request_shutdown_for_tests`] was called).
pub fn shutdown_signaled() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets the flag without a signal — unit tests and the serve `shutdown`
/// request use this to drive the same drain path a signal would.
pub fn request_shutdown_for_tests() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag. Tests in one process run sequentially through the
/// same static; production code installs the handler once and never
/// clears.
pub fn reset_for_tests() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        reset_for_tests();
        assert!(!shutdown_signaled());
        request_shutdown_for_tests();
        assert!(shutdown_signaled());
        reset_for_tests();
        assert!(!shutdown_signaled());
    }

    #[test]
    fn installing_the_handler_is_idempotent() {
        install_shutdown_handler();
        install_shutdown_handler();
    }
}
