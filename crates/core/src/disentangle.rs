//! Disentangling the input program (§3.2 of the paper).
//!
//! To scale to large programs, GCatch analyzes each channel in a small
//! *scope* — from its creation site to the end of the lowest-common-ancestor
//! (LCA) function that can invoke all of the channel's operations — together
//! with a small set of related primitives (*Pset*): primitives that
//! circularly depend on the channel and have a scope no larger than its own.

use crate::primitives::{OpKind, PrimId, Primitives, SyncOp};
use golite_ir::alias::Analysis;
use golite_ir::ir::*;
use std::collections::{HashMap, HashSet};

/// The analysis scope of one primitive.
#[derive(Debug, Clone)]
pub struct Scope {
    /// The LCA function (analysis entry).
    pub root: FuncId,
    /// Functions covered by the scope (reachable from the root).
    pub funcs: HashSet<FuncId>,
}

impl Scope {
    /// Scope "size" used for Pset ordering (number of covered functions).
    pub fn size(&self) -> usize {
        self.funcs.len()
    }

    /// Whether a function is inside the scope.
    pub fn contains(&self, f: FuncId) -> bool {
        self.funcs.contains(&f)
    }
}

/// Computes the scope of primitive `p`: the lowest function from which the
/// creation site and every operation are reachable. Returns `None` when no
/// single function covers all operations (the paper falls back to per-
/// function scopes for libraries; we fall back to the creation function,
/// which reproduces the paper's LCA-related misses).
pub fn compute_scope(module: &Module, analysis: &Analysis, prims: &Primitives, p: PrimId) -> Scope {
    let prim = &prims.all[p.0];
    let mut must_cover: HashSet<FuncId> = prims.funcs_with_ops_of(p).clone();
    must_cover.insert(prim.site.func);
    let _ = module; // kept in the signature for API stability

    // The candidate roots are exactly ∩ reaching(m) over the functions the
    // scope must cover (`must_cover ⊆ reachable_from(f)` ⟺ `f` reaches
    // every `m`). Intersecting the usually-tiny reverse-reachability
    // slices replaces the old scan over every module function, which made
    // scope computation quadratic in corpus size.
    let mut candidates: Option<HashSet<FuncId>> = None;
    for &m in &must_cover {
        let reaching = analysis.reaching(m);
        candidates = Some(match candidates {
            None => reaching.as_ref().clone(),
            Some(mut set) => {
                set.retain(|f| reaching.contains(f));
                set
            }
        });
        if candidates.as_ref().is_some_and(HashSet::is_empty) {
            break;
        }
    }

    // `min_by_key` over (size, id) is iteration-order independent, so the
    // winner matches the old in-order scan exactly.
    let mut best: Option<(usize, FuncId)> = None;
    for &f in candidates.iter().flatten() {
        let size = analysis.reachable_from(f).len();
        let better = match &best {
            None => true,
            Some((bsize, bid)) => size < *bsize || (size == *bsize && f < *bid),
        };
        if better {
            best = Some((size, f));
        }
    }
    match best {
        Some((_, root)) => Scope {
            root,
            funcs: analysis.reachable_from(root).as_ref().clone(),
        },
        None => {
            let root = prim.site.func;
            let funcs = analysis.reachable_from(root).as_ref().clone();
            Scope { root, funcs }
        }
    }
}

/// The dependence graph over primitives (§3.2): `a depends on b` when how
/// `a`'s blocking operations proceed is influenced by `b`.
#[derive(Debug)]
pub struct DependencyGraph {
    /// `depends[a]` = primitives that `a` depends on.
    depends: Vec<HashSet<PrimId>>,
}

impl DependencyGraph {
    /// Whether `a` transitively depends on `b`.
    pub fn depends_on(&self, a: PrimId, b: PrimId) -> bool {
        self.depends[a.0].contains(&b)
    }

    /// Whether `a` and `b` are circularly dependent.
    pub fn circular(&self, a: PrimId, b: PrimId) -> bool {
        self.depends_on(a, b) && self.depends_on(b, a)
    }
}

/// Builds the dependence graph:
///
/// 1. `a` depends on `b` if an operation of `a` able to unblock others
///    (send, recv, close) is reachable from a blocking operation of `b` —
///    whether `b`'s blocking op proceeds decides whether `a`'s unblocking
///    op is ever reached;
/// 2. two channels waited on by the same `select` depend on each other;
/// 3. dependence is transitive.
pub fn build_dependency_graph(
    module: &Module,
    analysis: &Analysis,
    prims: &Primitives,
) -> DependencyGraph {
    let n = prims.all.len();
    let mut depends: Vec<HashSet<PrimId>> = vec![HashSet::new(); n];

    // Rule 2: same select.
    let mut by_select: HashMap<Loc, Vec<PrimId>> = HashMap::new();
    for op in &prims.ops {
        if op.select_case.is_some() {
            by_select.entry(op.loc).or_default().push(op.prim);
        }
    }
    for prims_in_select in by_select.values() {
        for &a in prims_in_select {
            for &b in prims_in_select {
                if a != b {
                    depends[a.0].insert(b);
                }
            }
        }
    }

    // Rule 1: unblocking op of `a` reachable from blocking op of `b`.
    // Indexing the unblocking ops by function and walking only the
    // functions a blocking op can actually reach keeps this linear in the
    // number of genuinely related op pairs — the old all-pairs sweep was
    // quadratic in corpus size even though unrelated channels never
    // produce an edge.
    let blocking: Vec<&SyncOp> = prims.ops.iter().filter(|o| o.kind.can_block()).collect();
    let mut unblock_by_func: HashMap<FuncId, Vec<&SyncOp>> = HashMap::new();
    for o in &prims.ops {
        if matches!(o.kind, OpKind::Send | OpKind::Recv | OpKind::Close) {
            unblock_by_func.entry(o.func).or_default().push(o);
        }
    }
    for ob in &blocking {
        let reach = analysis.reachable_from(ob.func);
        // Iterate whichever side is smaller; membership tests on the other.
        let funcs: Vec<FuncId> = if reach.len() <= unblock_by_func.len() {
            let mut v: Vec<FuncId> = reach
                .iter()
                .copied()
                .filter(|f| unblock_by_func.contains_key(f))
                .collect();
            v.sort_unstable();
            v
        } else {
            let mut v: Vec<FuncId> = unblock_by_func
                .keys()
                .copied()
                .filter(|f| reach.contains(f))
                .collect();
            v.sort_unstable();
            v
        };
        for g in funcs {
            for oa in &unblock_by_func[&g] {
                if oa.prim == ob.prim && oa.loc == ob.loc {
                    continue;
                }
                // Same-function pairs need CFG ordering; a different
                // reachable function is always a valid continuation —
                // exactly `op_reachable_from`'s two cases.
                if g == ob.func {
                    if intra_reachable(module.func(ob.func), ob.loc, oa.loc) {
                        depends[oa.prim.0].insert(ob.prim);
                    }
                } else {
                    depends[oa.prim.0].insert(ob.prim);
                }
            }
        }
    }

    // Rule 3: transitive closure.
    let mut changed = true;
    while changed {
        changed = false;
        for a in 0..n {
            let via: Vec<PrimId> = depends[a].iter().copied().collect();
            for b in via {
                let extra: Vec<PrimId> = depends[b.0].iter().copied().collect();
                for c in extra {
                    if c != PrimId(a) && depends[a].insert(c) {
                        changed = true;
                    }
                }
            }
        }
    }

    DependencyGraph { depends }
}

/// Intra-procedural reachability between two locations.
fn intra_reachable(f: &Function, from: Loc, to: Loc) -> bool {
    if from.block == to.block && from.idx <= to.idx {
        return true;
    }
    // BFS over successors starting at from.block.
    let mut seen = HashSet::new();
    let mut stack = vec![from.block];
    while let Some(b) = stack.pop() {
        for s in f.block(b).term.successors() {
            if s == to.block {
                return true;
            }
            if seen.insert(s) {
                stack.push(s);
            }
        }
    }
    false
}

/// Computes the Pset of channel `c` (§3.2): `c` plus every primitive that
/// circularly depends on `c` and whose scope is not larger.
pub fn pset(c: PrimId, dg: &DependencyGraph, scopes: &[Scope], prims: &Primitives) -> Vec<PrimId> {
    let _ = prims;
    // A circular partner must appear in `depends[c]`, so only those
    // candidates are tested (instead of every primitive in the module);
    // sorting restores the old ascending-id output order.
    let mut circ: Vec<PrimId> = dg.depends[c.0]
        .iter()
        .copied()
        .filter(|&p| p != c && dg.depends_on(p, c) && scopes[p.0].size() <= scopes[c.0].size())
        .collect();
    circ.sort_unstable();
    let mut out = vec![c];
    out.extend(circ);
    out
}

/// Whether an edited function can influence the analysis of a channel
/// scoped at `scope` with Pset `pset` — the dirty-set rule of the serve
/// daemon's incremental re-analysis. An edit is influential when the
/// function is inside the scope (the enumerator can walk into it), when
/// the scope root can reach it through the call graph (tested with the
/// memoized reverse-reachability: `root ∈ reaching(edited)`), or when it
/// holds an operation of any Pset member (it shapes the encodings). A
/// channel none of whose influence functions changed re-solves to the
/// same verdict, witnesses, and provenance, so its cached outcome can be
/// replayed verbatim.
pub fn influences(
    scope: &Scope,
    analysis: &Analysis,
    prims: &Primitives,
    pset: &[PrimId],
    edited: FuncId,
) -> bool {
    if scope.contains(edited) || analysis.reaching(edited).contains(&scope.root) {
        return true;
    }
    pset.iter()
        .any(|&p| prims.funcs_with_ops_of(p).contains(&edited))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::collect;
    use golite_ir::{analyze, lower_source};

    struct Setup {
        module: &'static Module,
        analysis: Analysis<'static>,
        prims: Primitives,
    }

    fn setup(src: &str) -> Setup {
        // Leaked so the analysis (which borrows the module) can live in
        // the same struct; test-only.
        let module: &'static Module = Box::leak(Box::new(lower_source(src).expect("lowering")));
        let analysis = analyze(module);
        let prims = collect(module, &analysis);
        Setup {
            module,
            analysis,
            prims,
        }
    }

    fn prim_named(s: &Setup, name: &str) -> PrimId {
        s.prims
            .all
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("no primitive named {name}"))
            .id
    }

    #[test]
    fn scope_is_creating_function_for_local_channel() {
        let s = setup(
            "func work(ch chan int) {\n ch <- 1\n}\nfunc driver() {\n ch := make(chan int)\n go work(ch)\n <-ch\n}\nfunc main() {\n driver()\n}",
        );
        let ch = prim_named(&s, "ch");
        let scope = compute_scope(s.module, &s.analysis, &s.prims, ch);
        let driver = s.module.func_by_name("driver").unwrap().id;
        assert_eq!(scope.root, driver, "LCA is driver, not main");
        assert!(scope.contains(s.module.func_by_name("work").unwrap().id));
    }

    #[test]
    fn select_channels_are_mutually_dependent() {
        let s = setup(
            "func main() {\n a := make(chan int)\n b := make(chan int)\n go func() {\n  a <- 1\n }()\n go func() {\n  b <- 1\n }()\n select {\n case <-a:\n case <-b:\n }\n}",
        );
        let dg = build_dependency_graph(s.module, &s.analysis, &s.prims);
        let a = prim_named(&s, "a");
        let b = prim_named(&s, "b");
        assert!(dg.circular(a, b));
    }

    #[test]
    fn pset_includes_same_scope_select_peer() {
        let s = setup(
            "func main() {\n a := make(chan int)\n b := make(chan int)\n go func() {\n  a <- 1\n }()\n go func() {\n  b <- 1\n }()\n select {\n case <-a:\n case <-b:\n }\n}",
        );
        let dg = build_dependency_graph(s.module, &s.analysis, &s.prims);
        let scopes: Vec<Scope> = s
            .prims
            .all
            .iter()
            .map(|p| compute_scope(s.module, &s.analysis, &s.prims, p.id))
            .collect();
        let a = prim_named(&s, "a");
        let b = prim_named(&s, "b");
        let pset_a = pset(a, &dg, &scopes, &s.prims);
        assert!(
            pset_a.contains(&b),
            "same-scope select peer belongs to Pset"
        );
    }

    #[test]
    fn larger_scope_primitive_excluded_from_pset() {
        // Mirrors the Figure 1 situation: ctx's channel is created in main
        // (larger scope) and waited on in the same select as outDone (created
        // in Exec). outDone's Pset must not include ctx's channel.
        let s = setup(
            r#"
func Exec(ctx context.Context) {
    outDone := make(chan error)
    go func() {
        outDone <- nil
    }()
    select {
    case <-outDone:
    case <-ctx.Done():
    }
}

func main() {
    ctx, cancel := context.WithCancel(context.Background())
    defer cancel()
    Exec(ctx)
}
"#,
        );
        let dg = build_dependency_graph(s.module, &s.analysis, &s.prims);
        let scopes: Vec<Scope> = s
            .prims
            .all
            .iter()
            .map(|p| compute_scope(s.module, &s.analysis, &s.prims, p.id))
            .collect();
        let out_done = prim_named(&s, "outDone");
        let ctx = prim_named(&s, "ctx");
        assert!(
            dg.circular(out_done, ctx),
            "same select makes them circular"
        );
        assert!(
            scopes[ctx.0].size() > scopes[out_done.0].size(),
            "ctx channel has the larger scope"
        );
        let ps = pset(out_done, &dg, &scopes, &s.prims);
        assert!(!ps.contains(&ctx), "ctx is excluded from outDone's Pset");
        // ...but analyzing ctx includes outDone (paper: "inspected together
        // when GCatch analyzes ctx.Done()").
        let ps_ctx = pset(ctx, &dg, &scopes, &s.prims);
        assert!(ps_ctx.contains(&out_done));
    }

    #[test]
    fn unblock_reachability_creates_dependence() {
        // mu's unlock is reachable only after ch's recv proceeds, so mu
        // depends on ch.
        let s = setup(
            "func main() {\n ch := make(chan int)\n var mu sync.Mutex\n go func() {\n  mu.Lock()\n  <-ch\n  mu.Unlock()\n }()\n ch <- 1\n mu.Lock()\n mu.Unlock()\n}",
        );
        let dg = build_dependency_graph(s.module, &s.analysis, &s.prims);
        let ch = prim_named(&s, "ch");
        let mu = prim_named(&s, "mu");
        assert!(dg.depends_on(mu, ch));
    }
}
