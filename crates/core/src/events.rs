//! Structured, correlated event bus — the `--events-out` layer.
//!
//! Every consequential run-level decision — attempt starts and ends, fault
//! injections, retries, hedges, quarantines, budget exhaustions, per-channel
//! incidents — is emitted as one JSON object on an append-only JSONL stream.
//! Each event carries correlation IDs (run id, module, job id, attempt,
//! channel), so a single `grep` over the stream reconstructs any job's full
//! lifecycle.
//!
//! Determinism contract: the rendered stream is byte-identical across
//! `--jobs 1` and `--jobs N` once timestamps are normalized. Two mechanisms
//! make that hold:
//!
//! 1. **Canonical ordering.** Events are buffered as they arrive and sorted
//!    at render time by `(class, group, arrival)` where `class` places
//!    `run_start` first and `run_end` last, and `group` is the job's
//!    submission index (batch) or the channel's discovery index (check).
//!    Within one group the arrival order is causally determined (a single
//!    worker drives the job's attempts in sequence), so the stable sort
//!    yields one canonical interleaving regardless of worker count.
//! 2. **Zeroable timestamps.** Under `GCATCH_OBS_ZERO_TIME=1` every
//!    `ts_ns` renders as 0 and the run id becomes a pure function of the
//!    job list, so golden files and cross-`--jobs` diffs are byte-exact.
//!
//! Timing-driven events that are *not* deterministic across schedules
//! (hedge launches) are still emitted — operators want them — but tests
//! disable hedging (`--no-hedge`) when asserting byte equality.
//!
//! The [`FlightRecorder`] lives here too: a bounded ring of human-readable
//! lifecycle lines kept per job, whose dump is attached to `Quarantined`
//! incidents as a postmortem (the "flight recorder" of a crashed job).

use crate::diagnostics::escape_json;
use crate::faults::fnv;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Returns true when `GCATCH_OBS_ZERO_TIME` is set to something other than
/// `0`/empty: timestamps render as 0 and run ids become deterministic.
pub fn obs_zero_time() -> bool {
    match std::env::var("GCATCH_OBS_ZERO_TIME") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// Derives the run correlation id. Deterministic (an FNV digest of the
/// inputs) under `zero_time`; otherwise the digest is salted with wall
/// clock and pid so concurrent runs remain distinguishable.
pub fn derive_run_id(inputs: &[String], zero_time: bool) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325;
    for input in inputs {
        h = fnv(h, input.as_bytes());
        h = fnv(h, b"\0");
    }
    if !zero_time {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        h = fnv(h, &now.to_le_bytes());
        h = fnv(h, &std::process::id().to_le_bytes());
    }
    format!("r{h:016x}")
}

/// Event taxonomy. Every variant renders under a stable snake_case name;
/// the class controls canonical ordering (run_start first, run_end last).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum EventKind {
    RunStart,
    JobResumed,
    AttemptStart,
    FaultInjected,
    BudgetExhausted,
    ChannelAnalyzed,
    IncidentRecorded,
    AttemptEnd,
    JobRetry,
    JobHedged,
    JobDone,
    JobQuarantined,
    WorkerSpawned,
    WorkerLost,
    JobLeased,
    LeaseExpired,
    JobReleased,
    DuplicateDecision,
    RequestReceived,
    RequestShed,
    RequestDone,
    RequestFailed,
    CacheHit,
    CacheEvicted,
    SessionReuse,
    SessionEvict,
    RunEnd,
}

impl EventKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RunStart => "run_start",
            EventKind::JobResumed => "job_resumed",
            EventKind::AttemptStart => "attempt_start",
            EventKind::FaultInjected => "fault_injected",
            EventKind::BudgetExhausted => "budget_exhausted",
            EventKind::ChannelAnalyzed => "channel_analyzed",
            EventKind::IncidentRecorded => "incident",
            EventKind::AttemptEnd => "attempt_end",
            EventKind::JobRetry => "job_retry",
            EventKind::JobHedged => "job_hedged",
            EventKind::JobDone => "job_done",
            EventKind::JobQuarantined => "job_quarantined",
            EventKind::WorkerSpawned => "worker_spawned",
            EventKind::WorkerLost => "worker_lost",
            EventKind::JobLeased => "job_leased",
            EventKind::LeaseExpired => "lease_expired",
            EventKind::JobReleased => "job_released",
            EventKind::DuplicateDecision => "duplicate_decision",
            EventKind::RequestReceived => "request_received",
            EventKind::RequestShed => "request_shed",
            EventKind::RequestDone => "request_done",
            EventKind::RequestFailed => "request_failed",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheEvicted => "cache_evicted",
            EventKind::SessionReuse => "session_reuse",
            EventKind::SessionEvict => "session_evict",
            EventKind::RunEnd => "run_end",
        }
    }

    fn class(self) -> u8 {
        match self {
            EventKind::RunStart => 0,
            EventKind::RunEnd => 2,
            _ => 1,
        }
    }
}

/// An extra event payload value.
#[derive(Clone, Debug)]
pub enum Field {
    /// Unsigned integer payload.
    U64(u64),
    /// String payload (JSON-escaped at render time).
    Str(String),
    /// Boolean payload.
    Bool(bool),
}

/// One event as submitted to the bus. Correlation fields are optional so
/// run-level events (`run_start`/`run_end`) reuse the same shape.
#[derive(Clone, Debug)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Canonical ordering group: job submission index (batch) or channel
    /// discovery index (check). Run-level events use 0.
    pub group: u64,
    /// Job id, when the event belongs to a batch job.
    pub job: Option<String>,
    /// Attempt number, when the event belongs to one attempt.
    pub attempt: Option<u32>,
    /// Channel name, for per-channel analysis events.
    pub channel: Option<String>,
    /// Extra key/value payload, rendered after the correlation fields.
    pub fields: Vec<(&'static str, Field)>,
}

struct Stored {
    event: Event,
    ts_ns: u64,
}

/// Thread-safe append-only event sink. Cheap to share (`Arc<EventBus>`);
/// every emitter takes one short mutex hold. Rendering produces the
/// canonical JSONL stream described in the module docs.
pub struct EventBus {
    run_id: String,
    zero_time: bool,
    epoch: Instant,
    events: Mutex<Vec<Stored>>,
}

impl EventBus {
    /// Creates a bus for one run. `zero_time` zeroes every timestamp at
    /// render time (goldens, determinism tests).
    pub fn new(run_id: String, zero_time: bool) -> EventBus {
        EventBus {
            run_id,
            zero_time,
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// The run correlation id every rendered event carries.
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// Appends one event; the bus stamps arrival order and a timestamp.
    /// A poisoned lock (an emitter panicked mid-push — contained by the
    /// supervisor) degrades to appending past the poison rather than
    /// cascading the panic into every later emitter.
    pub fn emit(&self, event: Event) {
        let ts_ns = if self.zero_time {
            0
        } else {
            self.epoch.elapsed().as_nanos() as u64
        };
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Stored { event, ts_ns });
    }

    /// Number of events buffered so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no events have been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the canonical JSONL stream: stable sort by
    /// `(class, group, arrival)`, then a per-group `seq` counter so
    /// consumers can order a job's events without trusting file order.
    pub fn render_jsonl(&self) -> String {
        let events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let mut order: Vec<usize> = (0..events.len()).collect();
        order.sort_by_key(|&i| (events[i].event.kind.class(), events[i].event.group, i));

        let mut out = String::new();
        let mut current_group: Option<(u8, u64)> = None;
        let mut seq = 0u64;
        for &i in &order {
            let stored = &events[i];
            let ev = &stored.event;
            let key = (ev.kind.class(), ev.group);
            if current_group != Some(key) {
                current_group = Some(key);
                seq = 0;
            }
            out.push_str("{\"ts_ns\":");
            out.push_str(&stored.ts_ns.to_string());
            out.push_str(",\"seq\":");
            out.push_str(&seq.to_string());
            out.push_str(",\"event\":\"");
            out.push_str(ev.kind.name());
            out.push_str("\",\"run\":\"");
            escape_json(&self.run_id, &mut out);
            out.push('"');
            if let Some(job) = &ev.job {
                out.push_str(",\"job\":\"");
                escape_json(job, &mut out);
                out.push_str("\",\"job_index\":");
                out.push_str(&ev.group.to_string());
            }
            if let Some(attempt) = ev.attempt {
                out.push_str(",\"attempt\":");
                out.push_str(&attempt.to_string());
            }
            if let Some(channel) = &ev.channel {
                out.push_str(",\"channel\":\"");
                escape_json(channel, &mut out);
                out.push('"');
            }
            for (name, value) in &ev.fields {
                out.push_str(",\"");
                out.push_str(name);
                out.push_str("\":");
                match value {
                    Field::U64(n) => out.push_str(&n.to_string()),
                    Field::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                    Field::Str(s) => {
                        out.push('"');
                        escape_json(s, &mut out);
                        out.push('"');
                    }
                }
            }
            out.push_str("}\n");
            seq += 1;
        }
        out
    }
}

/// Capacity of one job's flight-recorder ring.
pub const FLIGHT_CAPACITY: usize = 24;

#[derive(Debug, Default)]
struct Flight {
    dropped: u64,
    lines: VecDeque<String>,
}

/// A bounded ring buffer of the last [`FLIGHT_CAPACITY`] lifecycle lines
/// for one job, shared between the worker executing an attempt and the
/// supervisor that decides its fate. When a job is quarantined the dump is
/// attached to the `Quarantined` incident, turning "quarantined after 3
/// attempts" into a readable postmortem. Cloning shares the same ring.
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder(Arc<Mutex<Flight>>);

impl FlightRecorder {
    /// An empty recorder.
    pub fn new() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// Appends a line, evicting the oldest once the ring is full. Like the
    /// bus, a poisoned ring (its pusher panicked and was contained)
    /// degrades to writing past the poison.
    pub fn push(&self, line: impl Into<String>) {
        let mut flight = self.0.lock().unwrap_or_else(|e| e.into_inner());
        if flight.lines.len() == FLIGHT_CAPACITY {
            flight.lines.pop_front();
            flight.dropped += 1;
        }
        flight.lines.push_back(line.into());
    }

    /// The recorded lines, oldest first. When the ring overflowed, the
    /// first line notes how many earlier entries were evicted.
    pub fn dump(&self) -> Vec<String> {
        let flight = self.0.lock().unwrap_or_else(|e| e.into_inner());
        let mut lines = Vec::with_capacity(flight.lines.len() + 1);
        if flight.dropped > 0 {
            lines.push(format!("({} earlier line(s) dropped)", flight.dropped));
        }
        lines.extend(flight.lines.iter().cloned());
        lines
    }
}

/// The observability context threaded into the analysis layers. Default
/// is fully inert (every probe is a single `Option` check); the batch
/// engine and CLI fill in whichever sinks the run enabled, plus the
/// correlation ids the analysis cannot know by itself.
#[derive(Clone, Default)]
pub struct ObsScope {
    /// Event sink, when `--events-out` armed one.
    pub bus: Option<Arc<EventBus>>,
    /// Flight recorder of the enclosing job, when running under `batch`.
    pub flight: Option<FlightRecorder>,
    /// Enclosing job id.
    pub job: Option<String>,
    /// Canonical ordering group of the enclosing job.
    pub group: Option<u64>,
    /// Enclosing attempt number.
    pub attempt: Option<u32>,
}

impl std::fmt::Debug for ObsScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsScope")
            .field("bus", &self.bus.is_some())
            .field("flight", &self.flight.is_some())
            .field("job", &self.job)
            .field("group", &self.group)
            .field("attempt", &self.attempt)
            .finish()
    }
}

impl ObsScope {
    /// True when any sink is attached; callers may skip formatting work
    /// entirely when false.
    pub fn enabled(&self) -> bool {
        self.bus.is_some() || self.flight.is_some()
    }

    fn emit(
        &self,
        kind: EventKind,
        fallback_group: u64,
        channel: &str,
        fields: Vec<(&'static str, Field)>,
    ) {
        if let Some(bus) = &self.bus {
            bus.emit(Event {
                kind,
                group: self.group.unwrap_or(fallback_group),
                job: self.job.clone(),
                attempt: self.attempt,
                channel: Some(channel.to_string()),
                fields,
            });
        }
    }

    /// One channel finished analysis with `findings` reports.
    pub fn channel_analyzed(&self, index: u64, channel: &str, findings: u64) {
        self.emit(
            EventKind::ChannelAnalyzed,
            index,
            channel,
            vec![("findings", Field::U64(findings))],
        );
    }

    /// A channel's analysis budget ran dry at ladder rung `rung`.
    pub fn budget_exhausted(&self, index: u64, channel: &str, rung: u32) {
        self.emit(
            EventKind::BudgetExhausted,
            index,
            channel,
            vec![("rung", Field::U64(u64::from(rung)))],
        );
        if let Some(flight) = &self.flight {
            flight.push(format!(
                "channel `{channel}`: budget exhausted at rung {rung}"
            ));
        }
    }

    /// An incident (contained panic, exhausted budget) was recorded for a
    /// channel.
    pub fn incident(&self, index: u64, channel: &str, kind_label: &str, message: &str) {
        self.emit(
            EventKind::IncidentRecorded,
            index,
            channel,
            vec![
                ("kind", Field::Str(kind_label.to_string())),
                ("message", Field::Str(message.to_string())),
            ],
        );
        if let Some(flight) = &self.flight {
            flight.push(format!(
                "channel `{channel}`: incident ({kind_label}): {message}"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job_event(kind: EventKind, group: u64, job: &str, attempt: u32) -> Event {
        Event {
            kind,
            group,
            job: Some(job.to_string()),
            attempt: Some(attempt),
            channel: None,
            fields: Vec::new(),
        }
    }

    #[test]
    fn canonical_order_sorts_by_class_then_group_then_arrival() {
        let bus = EventBus::new("r0".into(), true);
        // Arrival order deliberately interleaves groups and puts run
        // events in the middle.
        bus.emit(job_event(EventKind::AttemptStart, 1, "b", 1));
        bus.emit(Event {
            kind: EventKind::RunStart,
            group: 0,
            job: None,
            attempt: None,
            channel: None,
            fields: vec![("jobs", Field::U64(2))],
        });
        bus.emit(job_event(EventKind::AttemptStart, 0, "a", 1));
        bus.emit(job_event(EventKind::AttemptEnd, 1, "b", 1));
        bus.emit(Event {
            kind: EventKind::RunEnd,
            group: 0,
            job: None,
            attempt: None,
            channel: None,
            fields: Vec::new(),
        });
        bus.emit(job_event(EventKind::AttemptEnd, 0, "a", 1));

        let jsonl = bus.render_jsonl();
        let events: Vec<&str> = jsonl.lines().collect();
        assert_eq!(events.len(), 6);
        assert!(events[0].contains("\"event\":\"run_start\""));
        assert!(events[1].contains("\"job\":\"a\"") && events[1].contains("attempt_start"));
        assert!(events[2].contains("\"job\":\"a\"") && events[2].contains("attempt_end"));
        assert!(events[3].contains("\"job\":\"b\"") && events[3].contains("attempt_start"));
        assert!(events[4].contains("\"job\":\"b\"") && events[4].contains("attempt_end"));
        assert!(events[5].contains("\"event\":\"run_end\""));
        // Per-group seq restarts.
        assert!(events[1].contains("\"seq\":0"));
        assert!(events[2].contains("\"seq\":1"));
        assert!(events[3].contains("\"seq\":0"));
        // Zero-time renders ts_ns as 0 and every line is valid JSON.
        for line in &events {
            assert!(line.starts_with("{\"ts_ns\":0,"), "{line}");
            crate::trace::validate_json(line).expect("event line is valid JSON");
        }
    }

    #[test]
    fn flight_recorder_bounds_the_ring_and_reports_evictions() {
        let flight = FlightRecorder::new();
        for i in 0..FLIGHT_CAPACITY + 3 {
            flight.push(format!("line {i}"));
        }
        let dump = flight.dump();
        assert_eq!(dump.len(), FLIGHT_CAPACITY + 1);
        assert_eq!(dump[0], "(3 earlier line(s) dropped)");
        assert_eq!(dump[1], "line 3");
        assert_eq!(
            *dump.last().unwrap(),
            format!("line {}", FLIGHT_CAPACITY + 2)
        );
        // Clones share the ring.
        let twin = flight.clone();
        twin.push("from the twin");
        assert_eq!(*flight.dump().last().unwrap(), "from the twin");
    }

    #[test]
    fn run_id_is_deterministic_under_zero_time() {
        let a = derive_run_id(&["m1".into(), "m2".into()], true);
        let b = derive_run_id(&["m1".into(), "m2".into()], true);
        assert_eq!(a, b);
        let c = derive_run_id(&["m1".into(), "m3".into()], true);
        assert_ne!(a, c);
    }

    #[test]
    fn inert_scope_emits_nothing() {
        let scope = ObsScope::default();
        assert!(!scope.enabled());
        // No sinks: these must be cheap no-ops.
        scope.channel_analyzed(0, "ch", 1);
        scope.budget_exhausted(0, "ch", 2);
        scope.incident(0, "ch", "channel", "boom");
    }

    #[test]
    fn scope_routes_to_bus_and_flight() {
        let bus = Arc::new(EventBus::new("r1".into(), true));
        let flight = FlightRecorder::new();
        let scope = ObsScope {
            bus: Some(bus.clone()),
            flight: Some(flight.clone()),
            job: Some("job-7".into()),
            group: Some(7),
            attempt: Some(2),
        };
        scope.channel_analyzed(3, "ch", 0);
        scope.incident(3, "ch", "channel", "injected fault: panic");
        let jsonl = bus.render_jsonl();
        assert!(jsonl.contains("\"event\":\"channel_analyzed\""));
        assert!(jsonl.contains("\"job\":\"job-7\""));
        assert!(jsonl.contains("\"job_index\":7"));
        assert!(jsonl.contains("\"attempt\":2"));
        assert!(jsonl.contains("\"channel\":\"ch\""));
        let dump = flight.dump();
        assert_eq!(dump.len(), 1);
        assert!(dump[0].contains("incident (channel)"));
    }
}
