//! Dominance and post-dominance over function CFGs.
//!
//! GFix's safety checks need both directions (§4.3 of the paper): Strategy-II
//! must verify that every `return` is dominated by a static `o1` send, and
//! that the `return` *post-dominating* an `o1` is reachable without crossing
//! other synchronization. The analyses here are the classic iterative
//! set-based formulation, which is plenty fast for GoLite-sized functions.

use crate::ir::{BlockId, Function, Terminator};
use std::collections::HashSet;

/// Dominator sets for one function (forward direction).
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `doms[b]` = set of blocks dominating `b` (including `b`).
    doms: Vec<HashSet<u32>>,
}

impl Dominators {
    /// Computes dominators with entry block 0.
    pub fn compute(f: &Function) -> Dominators {
        let n = f.blocks.len();
        let all: HashSet<u32> = (0..n as u32).collect();
        let mut doms = vec![all.clone(); n];
        doms[0] = HashSet::from([0]);

        let preds = predecessors(f);
        let mut changed = true;
        while changed {
            changed = false;
            for b in 1..n {
                let mut new: Option<HashSet<u32>> = None;
                for &p in &preds[b] {
                    new = Some(match new {
                        None => doms[p as usize].clone(),
                        Some(acc) => acc.intersection(&doms[p as usize]).copied().collect(),
                    });
                }
                let mut new = new.unwrap_or_default();
                new.insert(b as u32);
                if new != doms[b] {
                    doms[b] = new;
                    changed = true;
                }
            }
        }
        Dominators { doms }
    }

    /// Whether block `a` dominates block `b`.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.doms
            .get(b.0 as usize)
            .is_some_and(|set| set.contains(&a.0))
    }
}

/// Post-dominator sets for one function (backward direction, with a virtual
/// exit node joining all `Return`/`Unreachable` blocks).
#[derive(Debug, Clone)]
pub struct PostDominators {
    pdoms: Vec<HashSet<u32>>,
}

impl PostDominators {
    /// Computes post-dominators.
    pub fn compute(f: &Function) -> PostDominators {
        let n = f.blocks.len();
        let exits: Vec<u32> = f
            .iter_blocks()
            .filter(|(_, b)| matches!(b.term, Terminator::Return(_) | Terminator::Unreachable))
            .map(|(id, _)| id.0)
            .collect();
        let all: HashSet<u32> = (0..n as u32).collect();
        let mut pdoms = vec![all; n];
        for &e in &exits {
            pdoms[e as usize] = HashSet::from([e]);
        }

        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..n).rev() {
                if exits.contains(&(b as u32)) {
                    continue;
                }
                let succs = f.blocks[b].term.successors();
                let mut new: Option<HashSet<u32>> = None;
                for s in &succs {
                    new = Some(match new {
                        None => pdoms[s.0 as usize].clone(),
                        Some(acc) => acc.intersection(&pdoms[s.0 as usize]).copied().collect(),
                    });
                }
                let mut new = new.unwrap_or_default();
                new.insert(b as u32);
                if new != pdoms[b] {
                    pdoms[b] = new;
                    changed = true;
                }
            }
        }
        PostDominators { pdoms }
    }

    /// Whether block `a` post-dominates block `b` (every path from `b` to an
    /// exit passes through `a`).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.pdoms
            .get(b.0 as usize)
            .is_some_and(|set| set.contains(&a.0))
    }
}

/// Predecessor lists for every block of `f`.
pub fn predecessors(f: &Function) -> Vec<Vec<u32>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for (bid, block) in f.iter_blocks() {
        for s in block.term.successors() {
            preds[s.0 as usize].push(bid.0);
        }
    }
    preds
}

/// Blocks reachable from the entry block.
pub fn reachable_blocks(f: &Function) -> HashSet<BlockId> {
    let mut seen = HashSet::new();
    let mut stack = vec![BlockId(0)];
    seen.insert(BlockId(0));
    while let Some(b) = stack.pop() {
        for s in f.block(b).term.successors() {
            if seen.insert(s) {
                stack.push(s);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_source;

    fn func(src: &str, name: &str) -> Function {
        let m = lower_source(src).expect("lowering");
        m.func_by_name(name).expect("function").clone()
    }

    #[test]
    fn straight_line_dominance() {
        let f = func("func f() {\n a := 1\n _ = a\n}", "f");
        let dom = Dominators::compute(&f);
        assert!(dom.dominates(BlockId(0), BlockId(0)));
    }

    #[test]
    fn branch_join_dominance() {
        // entry dominates all; neither arm dominates the join.
        let f = func(
            "func f(c bool) {\n if c {\n  a()\n } else {\n  b()\n }\n done()\n}",
            "f",
        );
        let dom = Dominators::compute(&f);
        // Entry is block 0; then/else are 1 and 2; join is 3 (per lowering).
        assert!(dom.dominates(BlockId(0), BlockId(1)));
        assert!(dom.dominates(BlockId(0), BlockId(2)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(3)));
    }

    #[test]
    fn join_postdominates_arms_when_no_return() {
        let f = func(
            "func f(c bool) {\n if c {\n  a()\n } else {\n  b()\n }\n done()\n}",
            "f",
        );
        let pdom = PostDominators::compute(&f);
        assert!(pdom.post_dominates(BlockId(3), BlockId(0)));
        assert!(pdom.post_dominates(BlockId(3), BlockId(1)));
        assert!(pdom.post_dominates(BlockId(3), BlockId(2)));
    }

    #[test]
    fn early_return_breaks_postdominance() {
        let f = func("func f(c bool) {\n if c {\n  return\n }\n done()\n}", "f");
        let pdom = PostDominators::compute(&f);
        // The join (done()) does not post-dominate the entry because the
        // then-arm returns.
        let dom = Dominators::compute(&f);
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!pdom.post_dominates(BlockId(3), BlockId(0)));
    }

    #[test]
    fn loop_head_dominates_body() {
        let f = func(
            "func f(n int) {\n for i := 0; i < n; i++ {\n  w(i)\n }\n}",
            "f",
        );
        let dom = Dominators::compute(&f);
        // Block 1 is the loop head (condition); block 2 the body.
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(!dom.dominates(BlockId(2), BlockId(1)));
    }

    #[test]
    fn predecessors_and_reachability() {
        let f = func("func f(c bool) {\n if c {\n  a()\n }\n}", "f");
        let preds = predecessors(&f);
        // The join block has two predecessors (then arm and empty else arm).
        let join_preds = preds.iter().filter(|p| p.len() == 2).count();
        assert!(join_preds >= 1);
        assert_eq!(reachable_blocks(&f).len(), f.blocks.len());
    }
}
