//! AST → IR lowering.
//!
//! Lowering produces one IR [`Function`] per declared `func` plus one lifted
//! function per closure expression. Closures capture enclosing variables by
//! value for scalars and by reference for channels, mutexes, wait groups,
//! structs, and slices (which are reference values in GoLite, as in Go) —
//! captured variables become leading parameters of the lifted function and
//! are bound at the `MakeClosure` site.
//!
//! Standard-library vocabulary is desugared here so later phases never see
//! it:
//!
//! * `context.Background()` → a fresh never-closed channel;
//!   `context.WithCancel(p)` → a fresh channel plus a closure that closes
//!   it; `ctx.Done()` → the channel itself;
//! * `time.Sleep(n)` → [`Instr::Sleep`]; `time.After(n)` → a fresh buffered
//!   channel plus a spawned helper goroutine that sleeps and sends;
//! * `t.Fatal`/`t.Fatalf`/`t.FailNow` → [`Instr::Fatal`];
//! * mutex/waitgroup/cond methods → dedicated instructions.
//!
//! Deviation from Go, by design: `&&`/`||` are evaluated eagerly (GoLite
//! conditions are side-effect free), which keeps branch conditions first-
//! class values for GCatch's infeasible-path filtering.

use crate::intern::Symbol;
use crate::ir::*;
use golite::ast::{self, ExprKind, SelectCaseKind, StmtKind};
use golite::{Expr, Program, Span, Stmt, Type};
use std::collections::HashMap;

/// An error produced during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Human-readable description.
    pub message: String,
    /// Source location of the offending construct.
    pub span: Span,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LowerError {}

/// Lowers a parsed program into an IR module.
///
/// # Errors
///
/// Returns a [`LowerError`] for constructs outside the GoLite subset (for
/// example assigning to an undeclared variable).
pub fn lower(prog: &Program) -> Result<Module, LowerError> {
    Lowerer::new(prog).run()
}

/// Convenience: parse and lower in one step.
///
/// # Errors
///
/// Returns the parse error or lowering error as a string.
pub fn lower_source(src: &str) -> Result<Module, String> {
    let prog = golite::parse(src).map_err(|e| e.to_string())?;
    lower(&prog).map_err(|e| e.to_string())
}

const UNKNOWN_TYPE: &str = "<unknown>";

fn unknown_ty() -> Type {
    Type::Named(UNKNOWN_TYPE.into())
}

/// Per-function lowering state.
struct FuncCtx {
    name: String,
    id: FuncId,
    params: Vec<Var>,
    n_captures: usize,
    results: Vec<Type>,
    blocks: Vec<Block>,
    current: BlockId,
    var_names: Vec<String>,
    var_types: Vec<Type>,
    scopes: Vec<HashMap<String, Var>>,
    /// Jump targets for `break` (loops and selects) and `continue` (loops).
    break_targets: Vec<BlockId>,
    continue_targets: Vec<BlockId>,
    /// Captured variables: name → (local param var, parent's var).
    captures: Vec<(String, Var, Var)>,
    is_closure: bool,
    span: Span,
    /// Whether the current block already ended in a return/jump.
    terminated: bool,
}

impl FuncCtx {
    fn new(name: String, id: FuncId, is_closure: bool, span: Span) -> FuncCtx {
        FuncCtx {
            name,
            id,
            params: Vec::new(),
            n_captures: 0,
            results: Vec::new(),
            blocks: vec![Block::new()],
            current: BlockId(0),
            var_names: Vec::new(),
            var_types: Vec::new(),
            scopes: vec![HashMap::new()],
            break_targets: Vec::new(),
            continue_targets: Vec::new(),
            captures: Vec::new(),
            is_closure,
            span,
            terminated: false,
        }
    }

    fn fresh_var(&mut self, name: impl Into<String>, ty: Type) -> Var {
        let v = Var(self.var_names.len() as u32);
        self.var_names.push(name.into());
        self.var_types.push(ty);
        v
    }

    fn declare(&mut self, name: &str, ty: Type) -> Var {
        let v = self.fresh_var(name, ty);
        if name != "_" {
            self.scopes
                .last_mut()
                .expect("scope stack never empty")
                .insert(name.to_string(), v);
        }
        v
    }

    fn lookup(&self, name: &str) -> Option<Var> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn new_block(&mut self) -> BlockId {
        let b = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        b
    }

    fn switch_to(&mut self, b: BlockId) {
        self.current = b;
        self.terminated = false;
    }

    fn emit(&mut self, instr: Instr, span: Span) {
        if self.terminated {
            return; // dead code after return/break
        }
        let blk = &mut self.blocks[self.current.0 as usize];
        blk.instrs.push(instr);
        blk.spans.push(span);
    }

    fn terminate(&mut self, term: Terminator, span: Span) {
        if self.terminated {
            return;
        }
        let blk = &mut self.blocks[self.current.0 as usize];
        blk.term = term;
        blk.term_span = span;
        self.terminated = true;
    }

    fn into_function(self) -> Function {
        Function {
            // Names are interned exactly once here, at the lowering
            // boundary; everything downstream handles 4-byte symbols.
            name: Symbol::intern(&self.name),
            id: self.id,
            params: self.params,
            n_captures: self.n_captures,
            results: self.results,
            blocks: self.blocks,
            var_names: self.var_names.iter().map(|n| Symbol::intern(n)).collect(),
            var_types: self.var_types,
            is_closure: self.is_closure,
            span: self.span,
        }
    }
}

/// Signature info for declared functions (known before bodies are lowered).
#[derive(Clone)]
struct FuncSig {
    id: FuncId,
    params: Vec<Type>,
    results: Vec<Type>,
}

struct Lowerer<'a> {
    prog: &'a Program,
    sigs: HashMap<String, FuncSig>,
    structs: Vec<golite::StructDecl>,
    globals: Vec<Global>,
    global_ids: HashMap<String, GlobalId>,
    /// Finished functions, indexed by FuncId.
    funcs: Vec<Option<Function>>,
    /// Stack of in-progress function contexts (for closure capture).
    ctxs: Vec<FuncCtx>,
    /// Lazily created helper functions.
    helpers: HashMap<&'static str, FuncId>,
    /// Operands each lifted closure must bind at its `MakeClosure` site.
    closure_bounds: HashMap<FuncId, Vec<Operand>>,
    closure_counter: u32,
}

impl<'a> Lowerer<'a> {
    fn new(prog: &'a Program) -> Lowerer<'a> {
        Lowerer {
            prog,
            sigs: HashMap::new(),
            structs: Vec::new(),
            globals: Vec::new(),
            global_ids: HashMap::new(),
            funcs: Vec::new(),
            ctxs: Vec::new(),
            helpers: HashMap::new(),
            closure_bounds: HashMap::new(),
            closure_counter: 0,
        }
    }

    fn err(&self, message: impl Into<String>, span: Span) -> LowerError {
        LowerError {
            message: message.into(),
            span,
        }
    }

    fn ctx(&mut self) -> &mut FuncCtx {
        self.ctxs.last_mut().expect("no active function")
    }

    fn run(mut self) -> Result<Module, LowerError> {
        // Pass 1: collect signatures, structs, globals.
        let mut decl_funcs = Vec::new();
        for decl in &self.prog.decls {
            match decl {
                ast::Decl::Func(f) => {
                    let id = FuncId(self.funcs.len() as u32);
                    self.funcs.push(None);
                    self.sigs.insert(
                        f.name.clone(),
                        FuncSig {
                            id,
                            params: f.params.iter().map(|p| p.ty.clone()).collect(),
                            results: f.results.clone(),
                        },
                    );
                    decl_funcs.push((id, f));
                }
                ast::Decl::Struct(s) => self.structs.push(s.clone()),
                ast::Decl::GlobalVar { name, ty, .. } => {
                    let id = GlobalId(self.globals.len() as u32);
                    self.globals.push(Global {
                        name: Symbol::intern(name),
                        ty: ty.clone(),
                        id,
                    });
                    self.global_ids.insert(name.clone(), id);
                }
            }
        }

        // Pass 2: lower bodies.
        for (id, f) in decl_funcs {
            let mut ctx = FuncCtx::new(f.name.clone(), id, false, f.span);
            ctx.results = f.results.clone();
            self.ctxs.push(ctx);
            for p in &f.params {
                let v = self.ctx().declare(&p.name, p.ty.clone());
                self.ctx().params.push(v);
            }
            self.lower_block(&f.body)?;
            self.ctx().terminate(Terminator::Return(vec![]), f.span);
            let ctx = self.ctxs.pop().expect("pushed above");
            self.funcs[id.0 as usize] = Some(ctx.into_function());
        }

        // Synthesize `__init` if any global has an initializer.
        let inits: Vec<(GlobalId, &Expr)> = self
            .prog
            .decls
            .iter()
            .filter_map(|d| match d {
                ast::Decl::GlobalVar {
                    name,
                    init: Some(init),
                    ..
                } => Some((self.global_ids[name], init)),
                _ => None,
            })
            .collect();
        if !inits.is_empty() {
            let id = FuncId(self.funcs.len() as u32);
            self.funcs.push(None);
            self.sigs.insert(
                "__init".into(),
                FuncSig {
                    id,
                    params: vec![],
                    results: vec![],
                },
            );
            let ctx = FuncCtx::new("__init".into(), id, false, Span::synthetic());
            self.ctxs.push(ctx);
            for (gid, init) in inits {
                let (op, _) = self.lower_expr(init)?;
                self.ctx().emit(
                    Instr::StoreGlobal {
                        global: gid,
                        src: op,
                    },
                    init.span,
                );
            }
            self.ctx()
                .terminate(Terminator::Return(vec![]), Span::synthetic());
            let ctx = self.ctxs.pop().expect("pushed above");
            self.funcs[id.0 as usize] = Some(ctx.into_function());
        }

        let mut module = Module::new();
        module.structs = self.structs.clone();
        module.globals = self.globals.clone();
        for f in self.funcs.into_iter() {
            let f = f.expect("every declared function lowered");
            module.add_func(f);
        }
        Ok(module)
    }

    // ------------------------------------------------------------- helpers

    /// Creates (once) a tiny module-level helper function.
    fn helper(&mut self, kind: &'static str) -> FuncId {
        if let Some(&id) = self.helpers.get(kind) {
            return id;
        }
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(None);
        let mut ctx = FuncCtx::new(format!("__{kind}"), id, false, Span::synthetic());
        match kind {
            "close" => {
                let ch = ctx.declare("ch", Type::Chan(Box::new(Type::Unit)));
                ctx.params.push(ch);
                ctx.emit(
                    Instr::Close {
                        chan: Operand::Var(ch),
                    },
                    Span::synthetic(),
                );
            }
            "unlock" => {
                let m = ctx.declare("mu", Type::Mutex);
                ctx.params.push(m);
                ctx.emit(
                    Instr::Unlock {
                        mutex: Operand::Var(m),
                        read: false,
                    },
                    Span::synthetic(),
                );
            }
            "runlock" => {
                let m = ctx.declare("mu", Type::RwMutex);
                ctx.params.push(m);
                ctx.emit(
                    Instr::Unlock {
                        mutex: Operand::Var(m),
                        read: true,
                    },
                    Span::synthetic(),
                );
            }
            "wgdone" => {
                let wg = ctx.declare("wg", Type::WaitGroup);
                ctx.params.push(wg);
                ctx.emit(
                    Instr::WgDone {
                        wg: Operand::Var(wg),
                    },
                    Span::synthetic(),
                );
            }
            "timer" => {
                let ch = ctx.declare("ch", Type::Chan(Box::new(Type::Unit)));
                let n = ctx.declare("n", Type::Int);
                ctx.params.push(ch);
                ctx.params.push(n);
                ctx.emit(Instr::Sleep { n: Operand::Var(n) }, Span::synthetic());
                ctx.emit(
                    Instr::Send {
                        chan: Operand::Var(ch),
                        value: Operand::Const(ConstVal::Unit),
                    },
                    Span::synthetic(),
                );
            }
            other => unreachable!("unknown helper {other}"),
        }
        ctx.terminate(Terminator::Return(vec![]), Span::synthetic());
        self.funcs[id.0 as usize] = Some(ctx.into_function());
        self.helpers.insert(kind, id);
        id
    }

    /// Resolves a name to a variable, capturing through enclosing closures
    /// if needed. Returns `None` when the name is not a local of any
    /// enclosing function.
    fn resolve_var(&mut self, name: &str) -> Option<Var> {
        let depth = self.ctxs.len();
        if let Some(v) = self.ctxs[depth - 1].lookup(name) {
            return Some(v);
        }
        // Search enclosing contexts; capture through every level between.
        for level in (0..depth.saturating_sub(1)).rev() {
            if self.ctxs[level].lookup(name).is_some() {
                // Found: thread the capture down through each closure level.
                let mut outer_var = self.ctxs[level].lookup(name).expect("checked above");
                for inner in level + 1..depth {
                    let ty = {
                        let outer_ctx = &self.ctxs[inner - 1];
                        outer_ctx.var_types[outer_var.0 as usize].clone()
                    };
                    let inner_ctx = &mut self.ctxs[inner];
                    let param = inner_ctx.fresh_var(name, ty);
                    // Captures are leading params: record and insert.
                    inner_ctx.params.insert(inner_ctx.n_captures, param);
                    inner_ctx.n_captures += 1;
                    inner_ctx
                        .captures
                        .push((name.to_string(), param, outer_var));
                    inner_ctx
                        .scopes
                        .first_mut()
                        .expect("scope stack never empty")
                        .insert(name.to_string(), param);
                    outer_var = param;
                }
                return Some(outer_var);
            }
        }
        None
    }

    fn var_ty(&mut self, v: Var) -> Type {
        self.ctx().var_types[v.0 as usize].clone()
    }

    /// Default value initialization for a declared variable.
    fn default_init(&mut self, dst: Var, ty: &Type, span: Span) {
        match ty {
            Type::Int => self.ctx().emit(
                Instr::Const {
                    dst,
                    value: ConstVal::Int(0),
                },
                span,
            ),
            Type::Bool => self.ctx().emit(
                Instr::Const {
                    dst,
                    value: ConstVal::Bool(false),
                },
                span,
            ),
            Type::String => self.ctx().emit(
                Instr::Const {
                    dst,
                    value: ConstVal::Str(String::new()),
                },
                span,
            ),
            Type::Mutex => self.ctx().emit(Instr::MakeMutex { dst, rw: false }, span),
            Type::RwMutex => self.ctx().emit(Instr::MakeMutex { dst, rw: true }, span),
            Type::WaitGroup => self.ctx().emit(Instr::MakeWaitGroup { dst }, span),
            Type::Cond => self.ctx().emit(Instr::MakeCond { dst }, span),
            Type::Named(name) if name != UNKNOWN_TYPE => {
                let name = name.clone();
                let inits = self.primitive_field_inits(&name, &[], span);
                self.ctx().emit(
                    Instr::MakeStruct {
                        dst,
                        name: Symbol::intern(&name),
                        fields: inits,
                    },
                    span,
                );
            }
            Type::Unit => self.ctx().emit(
                Instr::Const {
                    dst,
                    value: ConstVal::Unit,
                },
                span,
            ),
            // Channels, slices, pointers, funcs, contexts default to nil.
            _ => self.ctx().emit(
                Instr::Const {
                    dst,
                    value: ConstVal::Nil,
                },
                span,
            ),
        }
    }

    /// Fresh primitive objects for a struct's declared mutex/waitgroup/cond
    /// fields (Go zero values of these types are ready to use), excluding
    /// fields in `already`. Gives struct-embedded primitives creation sites.
    fn primitive_field_inits(
        &mut self,
        struct_name: &str,
        already: &[Symbol],
        span: Span,
    ) -> Vec<(Symbol, Operand)> {
        let decl = self.structs.iter().find(|s| s.name == struct_name).cloned();
        let Some(decl) = decl else { return vec![] };
        let mut out = Vec::new();
        for (fname, fty) in &decl.fields {
            if already.iter().any(|a| *a == *fname) {
                continue;
            }
            let make = match fty {
                Type::Mutex => Some(Instr::MakeMutex {
                    dst: Var(0),
                    rw: false,
                }),
                Type::RwMutex => Some(Instr::MakeMutex {
                    dst: Var(0),
                    rw: true,
                }),
                Type::WaitGroup => Some(Instr::MakeWaitGroup { dst: Var(0) }),
                Type::Cond => Some(Instr::MakeCond { dst: Var(0) }),
                _ => None,
            };
            if let Some(template) = make {
                let dst = self.ctx().fresh_var(fname, fty.clone());
                let instr = match template {
                    Instr::MakeMutex { rw, .. } => Instr::MakeMutex { dst, rw },
                    Instr::MakeWaitGroup { .. } => Instr::MakeWaitGroup { dst },
                    Instr::MakeCond { .. } => Instr::MakeCond { dst },
                    _ => unreachable!(),
                };
                self.ctx().emit(instr, span);
                out.push((Symbol::intern(fname), Operand::Var(dst)));
            }
        }
        out
    }

    // ---------------------------------------------------------- statements

    fn lower_block(&mut self, b: &golite::Block) -> Result<(), LowerError> {
        self.ctx().scopes.push(HashMap::new());
        for stmt in &b.stmts {
            self.lower_stmt(stmt)?;
        }
        self.ctx().scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), LowerError> {
        let span = stmt.span;
        match &stmt.kind {
            StmtKind::Define { names, rhs } => self.lower_define(names, rhs, span),
            StmtKind::Assign { lhs, op, rhs } => self.lower_assign(lhs, *op, rhs, span),
            StmtKind::VarDecl { name, ty, init } => {
                match init {
                    Some(e) => {
                        if let ExprKind::Make {
                            ty: mty @ Type::Chan(_),
                            cap,
                        } = &e.unparen().kind
                        {
                            let cap_op = match cap {
                                Some(c) => self.lower_expr(c)?.0,
                                None => Operand::Const(ConstVal::Int(0)),
                            };
                            let elem = mty.chan_elem().cloned().expect("channel type");
                            let dst = self.ctx().declare(name, ty.clone());
                            self.ctx().emit(
                                Instr::MakeChan {
                                    dst,
                                    elem,
                                    cap: cap_op,
                                },
                                span,
                            );
                        } else {
                            let (op, _) = self.lower_expr(e)?;
                            let dst = self.ctx().declare(name, ty.clone());
                            self.ctx().emit(Instr::Copy { dst, src: op }, span);
                        }
                    }
                    None => {
                        let dst = self.ctx().declare(name, ty.clone());
                        self.default_init(dst, ty, span);
                    }
                }
                Ok(())
            }
            StmtKind::Send { chan, value } => {
                let (c, _) = self.lower_expr(chan)?;
                let (v, _) = self.lower_expr(value)?;
                self.ctx().emit(Instr::Send { chan: c, value: v }, span);
                Ok(())
            }
            StmtKind::Expr(e) => {
                match &e.unparen().kind {
                    ExprKind::Recv(ch) => {
                        let (c, _) = self.lower_expr(ch)?;
                        self.ctx().emit(
                            Instr::Recv {
                                dst: None,
                                ok: None,
                                chan: c,
                            },
                            span,
                        );
                    }
                    ExprKind::Call { .. } | ExprKind::Method { .. } => {
                        self.lower_call_stmt(e, vec![])?;
                    }
                    _ => {
                        // Evaluate for effect (no-op for pure expressions).
                        let _ = self.lower_expr(e)?;
                    }
                }
                Ok(())
            }
            StmtKind::Go(call) => self.lower_go(call, span),
            StmtKind::Defer(call) => self.lower_defer(call, span),
            StmtKind::Close(ch) => {
                let (c, _) = self.lower_expr(ch)?;
                self.ctx().emit(Instr::Close { chan: c }, span);
                Ok(())
            }
            StmtKind::Panic(v) => {
                let (op, _) = self.lower_expr(v)?;
                self.ctx().emit(Instr::Panic { value: op }, span);
                self.ctx().terminate(Terminator::Unreachable, span);
                Ok(())
            }
            StmtKind::Return(vals) => {
                let mut ops = Vec::with_capacity(vals.len());
                for v in vals {
                    ops.push(self.lower_expr(v)?.0);
                }
                self.ctx().terminate(Terminator::Return(ops), span);
                Ok(())
            }
            StmtKind::If { cond, then, els } => self.lower_if(cond, then, els.as_deref(), span),
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => self.lower_for(init.as_deref(), cond.as_ref(), post.as_deref(), body, span),
            StmtKind::ForRange { var, over, body } => self.lower_for_range(var, over, body, span),
            StmtKind::Select(cases) => self.lower_select(cases, span),
            StmtKind::Break => {
                let target = self.ctx().break_targets.last().copied();
                let target =
                    target.ok_or_else(|| self.err_plain("`break` outside loop or select", span))?;
                self.ctx().terminate(Terminator::Jump(target), span);
                Ok(())
            }
            StmtKind::Continue => {
                let target = self.ctx().continue_targets.last().copied();
                let target =
                    target.ok_or_else(|| self.err_plain("`continue` outside loop", span))?;
                self.ctx().terminate(Terminator::Jump(target), span);
                Ok(())
            }
            StmtKind::IncDec { target, inc } => {
                let name = target
                    .as_ident()
                    .ok_or_else(|| self.err_plain("`++`/`--` requires a variable", span))?
                    .to_string();
                let v = self
                    .resolve_var(&name)
                    .ok_or_else(|| self.err_plain(format!("unknown variable `{name}`"), span))?;
                let op = if *inc {
                    golite::BinOp::Add
                } else {
                    golite::BinOp::Sub
                };
                self.ctx().emit(
                    Instr::BinOp {
                        dst: v,
                        op,
                        l: Operand::Var(v),
                        r: Operand::Const(ConstVal::Int(1)),
                    },
                    span,
                );
                Ok(())
            }
            StmtKind::Block(b) => self.lower_block(b),
        }
    }

    fn err_plain(&self, message: impl Into<String>, span: Span) -> LowerError {
        LowerError {
            message: message.into(),
            span,
        }
    }

    fn lower_define(&mut self, names: &[String], rhs: &Expr, span: Span) -> Result<(), LowerError> {
        // Multi-value forms first.
        if names.len() > 1 {
            match &rhs.unparen().kind {
                ExprKind::Recv(ch) => {
                    let (c, cty) = self.lower_expr(ch)?;
                    let elem = cty.chan_elem().cloned().unwrap_or_else(unknown_ty);
                    let dst = self.ctx().declare(&names[0], elem);
                    let ok = self.ctx().declare(&names[1], Type::Bool);
                    self.ctx().emit(
                        Instr::Recv {
                            dst: Some(dst),
                            ok: Some(ok),
                            chan: c,
                        },
                        span,
                    );
                    return Ok(());
                }
                ExprKind::Method { recv, name, args }
                    if recv.as_ident() == Some("context") && name == "WithCancel" =>
                {
                    // ctx, cancel := context.WithCancel(parent)
                    let _ = args; // parent context is independent in GoLite
                    let ctx_var = self.ctx().declare(&names[0], Type::Context);
                    self.ctx().emit(
                        Instr::MakeChan {
                            dst: ctx_var,
                            elem: Type::Unit,
                            cap: Operand::Const(ConstVal::Int(0)),
                        },
                        span,
                    );
                    let close_fn = self.helper("close");
                    let cancel_var = self.ctx().declare(&names[1], Type::Func(vec![], vec![]));
                    self.ctx().emit(
                        Instr::MakeClosure {
                            dst: cancel_var,
                            func: close_fn,
                            bound: vec![Operand::Var(ctx_var)],
                        },
                        span,
                    );
                    return Ok(());
                }
                ExprKind::Call { .. } | ExprKind::Method { .. } => {
                    let result_tys = self.call_result_types(rhs);
                    let dsts: Vec<Var> = names
                        .iter()
                        .enumerate()
                        .map(|(i, n)| {
                            let ty = result_tys.get(i).cloned().unwrap_or_else(unknown_ty);
                            self.ctx().declare(n, ty)
                        })
                        .collect();
                    self.lower_call_stmt(rhs, dsts)?;
                    return Ok(());
                }
                _ => {
                    return Err(
                        self.err("multi-value `:=` requires a call or channel receive", span)
                    )
                }
            }
        }

        // Single name. `make(chan ..)` lowers directly into the declared
        // variable so the creation site carries the source-level name.
        if let ExprKind::Make {
            ty: ty @ Type::Chan(_),
            cap,
        } = &rhs.unparen().kind
        {
            let cap_op = match cap {
                Some(c) => self.lower_expr(c)?.0,
                None => Operand::Const(ConstVal::Int(0)),
            };
            let elem = ty.chan_elem().cloned().expect("channel type");
            let dst = self.ctx().declare(&names[0], ty.clone());
            self.ctx().emit(
                Instr::MakeChan {
                    dst,
                    elem,
                    cap: cap_op,
                },
                span,
            );
            return Ok(());
        }
        let (op, ty) = self.lower_expr(rhs)?;
        let dst = self.ctx().declare(&names[0], ty);
        self.ctx().emit(Instr::Copy { dst, src: op }, span);
        Ok(())
    }

    fn lower_assign(
        &mut self,
        lhs: &[Expr],
        op: ast::AssignOp,
        rhs: &Expr,
        span: Span,
    ) -> Result<(), LowerError> {
        if lhs.len() > 1 {
            // Multi-assign: rhs must be a call or receive.
            match &rhs.unparen().kind {
                ExprKind::Call { .. } | ExprKind::Method { .. } => {
                    let result_tys = self.call_result_types(rhs);
                    let tmps: Vec<Var> = (0..lhs.len())
                        .map(|i| {
                            let ty = result_tys.get(i).cloned().unwrap_or_else(unknown_ty);
                            self.ctx().fresh_var(format!("tmp{i}"), ty)
                        })
                        .collect();
                    self.lower_call_stmt(rhs, tmps.clone())?;
                    for (target, tmp) in lhs.iter().zip(tmps) {
                        self.store_into(target, Operand::Var(tmp), span)?;
                    }
                    return Ok(());
                }
                ExprKind::Recv(ch) => {
                    let (c, cty) = self.lower_expr(ch)?;
                    let elem = cty.chan_elem().cloned().unwrap_or_else(unknown_ty);
                    let dst = self.ctx().fresh_var("recv", elem);
                    let ok = self.ctx().fresh_var("ok", Type::Bool);
                    self.ctx().emit(
                        Instr::Recv {
                            dst: Some(dst),
                            ok: Some(ok),
                            chan: c,
                        },
                        span,
                    );
                    self.store_into(&lhs[0], Operand::Var(dst), span)?;
                    self.store_into(&lhs[1], Operand::Var(ok), span)?;
                    return Ok(());
                }
                _ => return Err(self.err("multi-assign requires a call on the right", span)),
            }
        }

        let target = &lhs[0];
        match op {
            ast::AssignOp::Assign => {
                let (value, _) = self.lower_expr(rhs)?;
                self.store_into(target, value, span)
            }
            ast::AssignOp::AddAssign | ast::AssignOp::SubAssign => {
                let bin = if matches!(op, ast::AssignOp::AddAssign) {
                    golite::BinOp::Add
                } else {
                    golite::BinOp::Sub
                };
                let (cur, ty) = self.lower_expr(target)?;
                let (value, _) = self.lower_expr(rhs)?;
                let tmp = self.ctx().fresh_var("tmp", ty);
                self.ctx().emit(
                    Instr::BinOp {
                        dst: tmp,
                        op: bin,
                        l: cur,
                        r: value,
                    },
                    span,
                );
                self.store_into(target, Operand::Var(tmp), span)
            }
        }
    }

    /// Stores `value` into an lvalue expression.
    fn store_into(&mut self, target: &Expr, value: Operand, span: Span) -> Result<(), LowerError> {
        match &target.unparen().kind {
            ExprKind::Ident(name) if name == "_" => Ok(()),
            ExprKind::Ident(name) => {
                if let Some(v) = self.resolve_var(name) {
                    self.ctx().emit(Instr::Copy { dst: v, src: value }, span);
                    Ok(())
                } else if let Some(&gid) = self.global_ids.get(name) {
                    self.ctx().emit(
                        Instr::StoreGlobal {
                            global: gid,
                            src: value,
                        },
                        span,
                    );
                    Ok(())
                } else {
                    Err(self.err(format!("assignment to undeclared variable `{name}`"), span))
                }
            }
            ExprKind::Field { obj, name } => {
                let (o, _) = self.lower_expr(obj)?;
                self.ctx().emit(
                    Instr::FieldStore {
                        obj: o,
                        field: Symbol::intern(name),
                        value,
                    },
                    span,
                );
                Ok(())
            }
            ExprKind::Index { obj, index } => {
                let (o, _) = self.lower_expr(obj)?;
                let (i, _) = self.lower_expr(index)?;
                self.ctx().emit(
                    Instr::IndexStore {
                        obj: o,
                        index: i,
                        value,
                    },
                    span,
                );
                Ok(())
            }
            ExprKind::Unary(golite::UnOp::Deref, inner) => {
                // `*p = v` — GoLite pointers to scalars are transparent.
                self.store_into(inner, value, span)
            }
            _ => Err(self.err("unsupported assignment target", span)),
        }
    }

    fn lower_if(
        &mut self,
        cond: &Expr,
        then: &golite::Block,
        els: Option<&Stmt>,
        span: Span,
    ) -> Result<(), LowerError> {
        let (c, _) = self.lower_expr(cond)?;
        let then_b = self.ctx().new_block();
        let else_b = self.ctx().new_block();
        let join = self.ctx().new_block();
        self.ctx().terminate(
            Terminator::Branch {
                cond: c,
                then: then_b,
                els: else_b,
            },
            span,
        );

        self.ctx().switch_to(then_b);
        self.lower_block(then)?;
        self.ctx().terminate(Terminator::Jump(join), span);

        self.ctx().switch_to(else_b);
        if let Some(els) = els {
            self.lower_stmt(els)?;
        }
        self.ctx().terminate(Terminator::Jump(join), span);

        self.ctx().switch_to(join);
        Ok(())
    }

    fn lower_for(
        &mut self,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        post: Option<&Stmt>,
        body: &golite::Block,
        span: Span,
    ) -> Result<(), LowerError> {
        self.ctx().scopes.push(HashMap::new());
        if let Some(init) = init {
            self.lower_stmt(init)?;
        }
        let head = self.ctx().new_block();
        let body_b = self.ctx().new_block();
        let post_b = self.ctx().new_block();
        let exit = self.ctx().new_block();

        self.ctx().terminate(Terminator::Jump(head), span);
        self.ctx().switch_to(head);
        match cond {
            Some(cond) => {
                let (c, _) = self.lower_expr(cond)?;
                self.ctx().terminate(
                    Terminator::Branch {
                        cond: c,
                        then: body_b,
                        els: exit,
                    },
                    span,
                );
            }
            None => self.ctx().terminate(Terminator::Jump(body_b), span),
        }

        self.ctx().switch_to(body_b);
        self.ctx().break_targets.push(exit);
        self.ctx().continue_targets.push(post_b);
        self.lower_block(body)?;
        self.ctx().break_targets.pop();
        self.ctx().continue_targets.pop();
        self.ctx().terminate(Terminator::Jump(post_b), span);

        self.ctx().switch_to(post_b);
        if let Some(post) = post {
            self.lower_stmt(post)?;
        }
        self.ctx().terminate(Terminator::Jump(head), span);

        self.ctx().switch_to(exit);
        self.ctx().scopes.pop();
        Ok(())
    }

    fn lower_for_range(
        &mut self,
        var: &Option<String>,
        over: &Expr,
        body: &golite::Block,
        span: Span,
    ) -> Result<(), LowerError> {
        let (over_op, over_ty) = self.lower_expr(over)?;
        self.ctx().scopes.push(HashMap::new());
        match over_ty {
            Type::Chan(elem) => {
                // for v := range ch  ⇒  loop { v, ok := <-ch; if !ok break }
                let head = self.ctx().new_block();
                let body_b = self.ctx().new_block();
                let exit = self.ctx().new_block();
                self.ctx().terminate(Terminator::Jump(head), span);
                self.ctx().switch_to(head);
                let dst = var.as_ref().map(|v| self.ctx().declare(v, (*elem).clone()));
                let ok = self.ctx().fresh_var("ok", Type::Bool);
                self.ctx().emit(
                    Instr::Recv {
                        dst,
                        ok: Some(ok),
                        chan: over_op,
                    },
                    span,
                );
                self.ctx().terminate(
                    Terminator::Branch {
                        cond: Operand::Var(ok),
                        then: body_b,
                        els: exit,
                    },
                    span,
                );
                self.ctx().switch_to(body_b);
                self.ctx().break_targets.push(exit);
                self.ctx().continue_targets.push(head);
                self.lower_block(body)?;
                self.ctx().break_targets.pop();
                self.ctx().continue_targets.pop();
                self.ctx().terminate(Terminator::Jump(head), span);
                self.ctx().switch_to(exit);
            }
            Type::Slice(elem) => {
                // for i := range s — iterate indices; bind element if named.
                let idx = self.ctx().fresh_var("i", Type::Int);
                self.ctx().emit(
                    Instr::Const {
                        dst: idx,
                        value: ConstVal::Int(0),
                    },
                    span,
                );
                let len = self.ctx().fresh_var("len", Type::Int);
                self.ctx().emit(
                    Instr::Len {
                        dst: len,
                        obj: over_op.clone(),
                    },
                    span,
                );
                if let Some(v) = var {
                    // In GoLite `for v := range s` binds the *index* like Go.
                    let user = self.ctx().declare(v, Type::Int);
                    let _ = elem;
                    self.range_int_loop(idx, Operand::Var(len), Some(user), body, span)?;
                } else {
                    self.range_int_loop(idx, Operand::Var(len), None, body, span)?;
                }
            }
            _ => {
                // for i := range n — integer range (Go 1.22).
                let idx = self.ctx().fresh_var("i", Type::Int);
                self.ctx().emit(
                    Instr::Const {
                        dst: idx,
                        value: ConstVal::Int(0),
                    },
                    span,
                );
                let user = var.as_ref().map(|v| self.ctx().declare(v, Type::Int));
                self.range_int_loop(idx, over_op, user, body, span)?;
            }
        }
        self.ctx().scopes.pop();
        Ok(())
    }

    /// Shared skeleton for integer-bounded range loops.
    fn range_int_loop(
        &mut self,
        idx: Var,
        bound: Operand,
        user: Option<Var>,
        body: &golite::Block,
        span: Span,
    ) -> Result<(), LowerError> {
        let head = self.ctx().new_block();
        let body_b = self.ctx().new_block();
        let post = self.ctx().new_block();
        let exit = self.ctx().new_block();
        self.ctx().terminate(Terminator::Jump(head), span);
        self.ctx().switch_to(head);
        let c = self.ctx().fresh_var("cond", Type::Bool);
        self.ctx().emit(
            Instr::BinOp {
                dst: c,
                op: golite::BinOp::Lt,
                l: Operand::Var(idx),
                r: bound,
            },
            span,
        );
        self.ctx().terminate(
            Terminator::Branch {
                cond: Operand::Var(c),
                then: body_b,
                els: exit,
            },
            span,
        );
        self.ctx().switch_to(body_b);
        if let Some(user) = user {
            self.ctx().emit(
                Instr::Copy {
                    dst: user,
                    src: Operand::Var(idx),
                },
                span,
            );
        }
        self.ctx().break_targets.push(exit);
        self.ctx().continue_targets.push(post);
        self.lower_block(body)?;
        self.ctx().break_targets.pop();
        self.ctx().continue_targets.pop();
        self.ctx().terminate(Terminator::Jump(post), span);
        self.ctx().switch_to(post);
        self.ctx().emit(
            Instr::BinOp {
                dst: idx,
                op: golite::BinOp::Add,
                l: Operand::Var(idx),
                r: Operand::Const(ConstVal::Int(1)),
            },
            span,
        );
        self.ctx().terminate(Terminator::Jump(head), span);
        self.ctx().switch_to(exit);
        Ok(())
    }

    fn lower_select(&mut self, cases: &[golite::SelectCase], span: Span) -> Result<(), LowerError> {
        let join = self.ctx().new_block();
        let mut ir_cases = Vec::new();
        let mut default_block = None;
        // Pre-plan: evaluate all channel operands and sent values first
        // (matching Go's evaluation order), creating case blocks.
        let mut planned: Vec<(usize, BlockId)> = Vec::new();
        for (i, case) in cases.iter().enumerate() {
            let target = self.ctx().new_block();
            planned.push((i, target));
            match &case.kind {
                SelectCaseKind::Recv { value, ok, chan } => {
                    let (c, cty) = self.lower_expr(chan)?;
                    let elem = cty.chan_elem().cloned().unwrap_or_else(unknown_ty);
                    let dst = value
                        .as_ref()
                        .filter(|v| v.as_str() != "_")
                        .map(|v| self.ctx().declare(v, elem));
                    let okv = ok
                        .as_ref()
                        .filter(|v| v.as_str() != "_")
                        .map(|v| self.ctx().declare(v, Type::Bool));
                    ir_cases.push(SelectCase {
                        op: SelectOp::Recv {
                            dst,
                            ok: okv,
                            chan: c,
                        },
                        target,
                    });
                }
                SelectCaseKind::Send { chan, value } => {
                    let (c, _) = self.lower_expr(chan)?;
                    let (v, _) = self.lower_expr(value)?;
                    ir_cases.push(SelectCase {
                        op: SelectOp::Send { chan: c, value: v },
                        target,
                    });
                }
                SelectCaseKind::Default => {
                    default_block = Some(target);
                }
            }
        }
        self.ctx().terminate(
            Terminator::Select {
                cases: ir_cases,
                default: default_block,
            },
            span,
        );
        // Lower case bodies.
        for (i, target) in planned {
            self.ctx().switch_to(target);
            self.ctx().break_targets.push(join);
            self.lower_block(&cases[i].body)?;
            self.ctx().break_targets.pop();
            self.ctx().terminate(Terminator::Jump(join), span);
        }
        self.ctx().switch_to(join);
        Ok(())
    }

    fn lower_go(&mut self, call: &Expr, span: Span) -> Result<(), LowerError> {
        let (func, args) = self.lower_callee(call)?;
        self.ctx().emit(Instr::Go { func, args }, span);
        Ok(())
    }

    fn lower_defer(&mut self, call: &Expr, span: Span) -> Result<(), LowerError> {
        // Special-case deferred primitive operations so they go through
        // dedicated helper functions (visible to path enumeration).
        if let ExprKind::Method { recv, name, args } = &call.unparen().kind {
            if args.is_empty() {
                let recv_ty = self.expr_type(recv);
                let helper = match (recv_ty, name.as_str()) {
                    (Some(Type::Mutex), "Unlock") => Some("unlock"),
                    (Some(Type::RwMutex), "Unlock") => Some("unlock"),
                    (Some(Type::RwMutex), "RUnlock") => Some("runlock"),
                    (Some(Type::WaitGroup), "Done") => Some("wgdone"),
                    _ => None,
                };
                if let Some(h) = helper {
                    let (r, _) = self.lower_expr(recv)?;
                    let fid = self.helper(h);
                    self.ctx().emit(
                        Instr::DeferCall {
                            func: FuncRef::Static(fid),
                            args: vec![r],
                        },
                        span,
                    );
                    return Ok(());
                }
            }
        }
        if let ExprKind::Call { callee, args } = &call.unparen().kind {
            if callee.as_ident() == Some("close") && args.len() == 1 {
                let (c, _) = self.lower_expr(&args[0])?;
                let fid = self.helper("close");
                self.ctx().emit(
                    Instr::DeferCall {
                        func: FuncRef::Static(fid),
                        args: vec![c],
                    },
                    span,
                );
                return Ok(());
            }
        }
        let (func, args) = self.lower_callee(call)?;
        self.ctx().emit(Instr::DeferCall { func, args }, span);
        Ok(())
    }

    /// Resolves a call expression into a `FuncRef` plus lowered arguments.
    fn lower_callee(&mut self, call: &Expr) -> Result<(FuncRef, Vec<Operand>), LowerError> {
        match &call.unparen().kind {
            ExprKind::Call { callee, args } => {
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(self.lower_expr(a)?.0);
                }
                match &callee.unparen().kind {
                    ExprKind::Ident(name) => {
                        if let Some(v) = self.resolve_var(name) {
                            Ok((FuncRef::Dynamic(Operand::Var(v)), ops))
                        } else if let Some(sig) = self.sigs.get(name.as_str()) {
                            Ok((FuncRef::Static(sig.id), ops))
                        } else {
                            Ok((FuncRef::External(Symbol::intern(name)), ops))
                        }
                    }
                    ExprKind::Closure { .. } => {
                        let (op, _) = self.lower_expr(callee)?;
                        Ok((FuncRef::Dynamic(op), ops))
                    }
                    _ => {
                        let (op, _) = self.lower_expr(callee)?;
                        Ok((FuncRef::Dynamic(op), ops))
                    }
                }
            }
            ExprKind::Method { recv, name, args } => {
                // Method used in `go`/`defer` position that is not a
                // primitive op: treat as external.
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(self.lower_expr(a)?.0);
                }
                let _ = recv;
                Ok((FuncRef::External(Symbol::intern(name)), ops))
            }
            _ => Err(self.err("expected call expression", call.span)),
        }
    }

    /// Lowers a call in statement position with the given result registers.
    fn lower_call_stmt(&mut self, call: &Expr, dsts: Vec<Var>) -> Result<(), LowerError> {
        let span = call.span;
        if let ExprKind::Method { .. } = &call.unparen().kind {
            // Primitive-method statements (mu.Lock() etc.) handled here.
            if self.try_lower_primitive_method(call, &dsts, span)? {
                return Ok(());
            }
        }
        let (func, args) = self.lower_callee(call)?;
        self.ctx().emit(Instr::Call { dsts, func, args }, span);
        Ok(())
    }

    /// Lowers method calls on sync primitives / std packages into dedicated
    /// instructions. Returns `Ok(true)` if the call was handled.
    fn try_lower_primitive_method(
        &mut self,
        call: &Expr,
        dsts: &[Var],
        span: Span,
    ) -> Result<bool, LowerError> {
        let ExprKind::Method { recv, name, args } = &call.unparen().kind else {
            return Ok(false);
        };

        // Package-qualified calls.
        if let Some(pkg) = recv.as_ident() {
            if self.resolve_var(pkg).is_none() && !self.global_ids.contains_key(pkg) {
                match (pkg, name.as_str()) {
                    ("time", "Sleep") => {
                        let (n, _) = self.lower_expr(&args[0])?;
                        self.ctx().emit(Instr::Sleep { n }, span);
                        return Ok(true);
                    }
                    ("time", "After") => {
                        let (n, _) = self.lower_expr(&args[0])?;
                        let dst = dsts.first().copied().unwrap_or_else(|| {
                            self.ctx()
                                .fresh_var("timer", Type::Chan(Box::new(Type::Unit)))
                        });
                        self.ctx().emit(
                            Instr::MakeChan {
                                dst,
                                elem: Type::Unit,
                                cap: Operand::Const(ConstVal::Int(1)),
                            },
                            span,
                        );
                        let fid = self.helper("timer");
                        self.ctx().emit(
                            Instr::Go {
                                func: FuncRef::Static(fid),
                                args: vec![Operand::Var(dst), n],
                            },
                            span,
                        );
                        return Ok(true);
                    }
                    ("fmt", "Println" | "Printf" | "Print") => {
                        let mut ops = Vec::new();
                        for a in args {
                            ops.push(self.lower_expr(a)?.0);
                        }
                        self.ctx().emit(Instr::Print { args: ops }, span);
                        return Ok(true);
                    }
                    ("errors", "New") | ("fmt", "Errorf" | "Sprintf") => {
                        let (s, _) = self.lower_expr(&args[0])?;
                        if let Some(&dst) = dsts.first() {
                            self.ctx().emit(Instr::Copy { dst, src: s }, span);
                        }
                        return Ok(true);
                    }
                    ("context", "Background" | "TODO") => {
                        if let Some(&dst) = dsts.first() {
                            self.ctx().emit(
                                Instr::MakeChan {
                                    dst,
                                    elem: Type::Unit,
                                    cap: Operand::Const(ConstVal::Int(0)),
                                },
                                span,
                            );
                        }
                        return Ok(true);
                    }
                    ("runtime", "Gosched") => {
                        self.ctx().emit(
                            Instr::Sleep {
                                n: Operand::Const(ConstVal::Int(0)),
                            },
                            span,
                        );
                        return Ok(true);
                    }
                    _ => return Ok(false), // unknown package call: external
                }
            }
        }

        // Value-receiver methods.
        let Some(recv_ty) = self.expr_type(recv) else {
            return Ok(false);
        };
        match (&recv_ty, name.as_str()) {
            (Type::Mutex, "Lock") | (Type::RwMutex, "Lock") => {
                let (m, _) = self.lower_expr(recv)?;
                self.ctx().emit(
                    Instr::Lock {
                        mutex: m,
                        read: false,
                    },
                    span,
                );
                Ok(true)
            }
            (Type::Mutex, "Unlock") | (Type::RwMutex, "Unlock") => {
                let (m, _) = self.lower_expr(recv)?;
                self.ctx().emit(
                    Instr::Unlock {
                        mutex: m,
                        read: false,
                    },
                    span,
                );
                Ok(true)
            }
            (Type::RwMutex, "RLock") => {
                let (m, _) = self.lower_expr(recv)?;
                self.ctx().emit(
                    Instr::Lock {
                        mutex: m,
                        read: true,
                    },
                    span,
                );
                Ok(true)
            }
            (Type::RwMutex, "RUnlock") => {
                let (m, _) = self.lower_expr(recv)?;
                self.ctx().emit(
                    Instr::Unlock {
                        mutex: m,
                        read: true,
                    },
                    span,
                );
                Ok(true)
            }
            (Type::WaitGroup, "Add") => {
                let (wg, _) = self.lower_expr(recv)?;
                let (n, _) = self.lower_expr(&args[0])?;
                self.ctx().emit(Instr::WgAdd { wg, n }, span);
                Ok(true)
            }
            (Type::WaitGroup, "Done") => {
                let (wg, _) = self.lower_expr(recv)?;
                self.ctx().emit(Instr::WgDone { wg }, span);
                Ok(true)
            }
            (Type::WaitGroup, "Wait") => {
                let (wg, _) = self.lower_expr(recv)?;
                self.ctx().emit(Instr::WgWait { wg }, span);
                Ok(true)
            }
            (Type::Cond, "Wait") => {
                let (c, _) = self.lower_expr(recv)?;
                self.ctx().emit(Instr::CondWait { cond: c }, span);
                Ok(true)
            }
            (Type::Cond, "Signal") => {
                let (c, _) = self.lower_expr(recv)?;
                self.ctx().emit(Instr::CondSignal { cond: c }, span);
                Ok(true)
            }
            (Type::Cond, "Broadcast") => {
                let (c, _) = self.lower_expr(recv)?;
                self.ctx().emit(Instr::CondBroadcast { cond: c }, span);
                Ok(true)
            }
            (Type::Context, "Done") => {
                let (c, _) = self.lower_expr(recv)?;
                if let Some(&dst) = dsts.first() {
                    self.ctx().emit(Instr::Copy { dst, src: c }, span);
                }
                Ok(true)
            }
            (Type::Context, "Err") => {
                if let Some(&dst) = dsts.first() {
                    self.ctx().emit(
                        Instr::Const {
                            dst,
                            value: ConstVal::Str("context canceled".into()),
                        },
                        span,
                    );
                }
                Ok(true)
            }
            (Type::Ptr(inner), _) if matches!(**inner, Type::TestingT) => match name.as_str() {
                "Fatal" | "Fatalf" | "FailNow" => {
                    self.ctx().emit(Instr::Fatal, span);
                    Ok(true)
                }
                "Error" | "Errorf" | "Log" | "Logf" | "Helper" | "Fail" => {
                    let mut ops = Vec::new();
                    for a in args {
                        ops.push(self.lower_expr(a)?.0);
                    }
                    self.ctx().emit(Instr::Print { args: ops }, span);
                    Ok(true)
                }
                _ => Ok(false),
            },
            (Type::Ptr(inner), _) => {
                // Methods through pointers to primitives.
                let inner = (**inner).clone();
                if matches!(
                    inner,
                    Type::Mutex | Type::RwMutex | Type::WaitGroup | Type::Cond
                ) {
                    // Re-dispatch with the pointee type by faking the type.
                    return self.dispatch_ptr_primitive(recv, &inner, name, args, dsts, span);
                }
                Ok(false)
            }
            _ => Ok(false),
        }
    }

    fn dispatch_ptr_primitive(
        &mut self,
        recv: &Expr,
        inner: &Type,
        name: &str,
        args: &[Expr],
        _dsts: &[Var],
        span: Span,
    ) -> Result<bool, LowerError> {
        let (m, _) = self.lower_expr(recv)?;
        match (inner, name) {
            (Type::Mutex | Type::RwMutex, "Lock") => {
                self.ctx().emit(
                    Instr::Lock {
                        mutex: m,
                        read: false,
                    },
                    span,
                );
                Ok(true)
            }
            (Type::Mutex | Type::RwMutex, "Unlock") => {
                self.ctx().emit(
                    Instr::Unlock {
                        mutex: m,
                        read: false,
                    },
                    span,
                );
                Ok(true)
            }
            (Type::RwMutex, "RLock") => {
                self.ctx().emit(
                    Instr::Lock {
                        mutex: m,
                        read: true,
                    },
                    span,
                );
                Ok(true)
            }
            (Type::RwMutex, "RUnlock") => {
                self.ctx().emit(
                    Instr::Unlock {
                        mutex: m,
                        read: true,
                    },
                    span,
                );
                Ok(true)
            }
            (Type::WaitGroup, "Add") => {
                let (n, _) = self.lower_expr(&args[0])?;
                self.ctx().emit(Instr::WgAdd { wg: m, n }, span);
                Ok(true)
            }
            (Type::WaitGroup, "Done") => {
                self.ctx().emit(Instr::WgDone { wg: m }, span);
                Ok(true)
            }
            (Type::WaitGroup, "Wait") => {
                self.ctx().emit(Instr::WgWait { wg: m }, span);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    // -------------------------------------------------------- expressions

    /// Best-effort static type of an expression (no lowering side effects).
    fn expr_type(&mut self, e: &Expr) -> Option<Type> {
        match &e.unparen().kind {
            ExprKind::Ident(name) => {
                if let Some(v) = self.resolve_var(name) {
                    Some(self.var_ty(v))
                } else {
                    self.global_ids
                        .get(name)
                        .map(|gid| self.globals[gid.0 as usize].ty.clone())
                }
            }
            ExprKind::Field { obj, name } => {
                let obj_ty = self.expr_type(obj)?;
                let struct_name = match obj_ty {
                    Type::Named(n) => n,
                    Type::Ptr(inner) => match *inner {
                        Type::Named(n) => n,
                        _ => return None,
                    },
                    _ => return None,
                };
                self.structs
                    .iter()
                    .find(|s| s.name == struct_name)?
                    .fields
                    .iter()
                    .find(|(f, _)| f == name)
                    .map(|(_, t)| t.clone())
            }
            ExprKind::Unary(golite::UnOp::Addr, inner) => {
                self.expr_type(inner).map(|t| Type::Ptr(Box::new(t)))
            }
            ExprKind::Unary(golite::UnOp::Deref, inner) => match self.expr_type(inner)? {
                Type::Ptr(t) => Some(*t),
                _ => None,
            },
            ExprKind::Make { ty, .. } => Some(ty.clone()),
            ExprKind::Recv(ch) => self.expr_type(ch)?.chan_elem().cloned(),
            ExprKind::Int(_) => Some(Type::Int),
            ExprKind::Bool(_) => Some(Type::Bool),
            ExprKind::Str(_) => Some(Type::String),
            ExprKind::UnitLit => Some(Type::Unit),
            ExprKind::Index { obj, .. } => match self.expr_type(obj)? {
                Type::Slice(t) => Some(*t),
                _ => None,
            },
            ExprKind::Composite { ty, .. } => Some(ty.clone()),
            _ => None,
        }
    }

    /// Result types of a call expression (for multi-value defines).
    fn call_result_types(&mut self, call: &Expr) -> Vec<Type> {
        match &call.unparen().kind {
            ExprKind::Call { callee, .. } => {
                if let Some(name) = callee.as_ident() {
                    if self.resolve_var(name).is_none() {
                        if let Some(sig) = self.sigs.get(name) {
                            return sig.results.clone();
                        }
                    } else if let Some(v) = self.resolve_var(name) {
                        if let Type::Func(_, results) = self.var_ty(v) {
                            return results;
                        }
                    }
                }
                if let ExprKind::Closure { results, .. } = &callee.unparen().kind {
                    return results.clone();
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    /// Lowers an expression to an operand plus its inferred type.
    fn lower_expr(&mut self, e: &Expr) -> Result<(Operand, Type), LowerError> {
        let span = e.span;
        match &e.unparen().kind {
            ExprKind::Int(v) => Ok((Operand::Const(ConstVal::Int(*v)), Type::Int)),
            ExprKind::Bool(b) => Ok((Operand::Const(ConstVal::Bool(*b)), Type::Bool)),
            ExprKind::Str(s) => Ok((Operand::Const(ConstVal::Str(s.clone())), Type::String)),
            ExprKind::Nil => Ok((Operand::Const(ConstVal::Nil), unknown_ty())),
            ExprKind::UnitLit => Ok((Operand::Const(ConstVal::Unit), Type::Unit)),
            ExprKind::Ident(name) => {
                if name == "_" {
                    return Ok((Operand::Const(ConstVal::Nil), unknown_ty()));
                }
                if let Some(v) = self.resolve_var(name) {
                    let ty = self.var_ty(v);
                    return Ok((Operand::Var(v), ty));
                }
                if let Some(&gid) = self.global_ids.get(name.as_str()) {
                    let ty = self.globals[gid.0 as usize].ty.clone();
                    let dst = self.ctx().fresh_var(name, ty.clone());
                    self.ctx()
                        .emit(Instr::LoadGlobal { dst, global: gid }, span);
                    return Ok((Operand::Var(dst), ty));
                }
                if let Some(sig) = self.sigs.get(name.as_str()) {
                    let ty = Type::Func(sig.params.clone(), sig.results.clone());
                    return Ok((Operand::Const(ConstVal::Func(sig.id)), ty));
                }
                Err(self.err(format!("unknown identifier `{name}`"), span))
            }
            ExprKind::Unary(op, inner) => match op {
                golite::UnOp::Addr => {
                    // GoLite pointers to primitives/structs are transparent
                    // references: `&x` is `x`.
                    let (o, t) = self.lower_expr(inner)?;
                    Ok((o, Type::Ptr(Box::new(t))))
                }
                golite::UnOp::Deref => {
                    let (o, t) = self.lower_expr(inner)?;
                    let t = match t {
                        Type::Ptr(inner) => *inner,
                        other => other,
                    };
                    Ok((o, t))
                }
                golite::UnOp::Neg | golite::UnOp::Not => {
                    let (o, t) = self.lower_expr(inner)?;
                    let dst = self.ctx().fresh_var("tmp", t.clone());
                    self.ctx().emit(
                        Instr::UnOp {
                            dst,
                            op: *op,
                            src: o,
                        },
                        span,
                    );
                    Ok((Operand::Var(dst), t))
                }
            },
            ExprKind::Binary(op, l, r) => {
                let (lo, lt) = self.lower_expr(l)?;
                let (ro, _) = self.lower_expr(r)?;
                let out_ty = match op {
                    golite::BinOp::Add
                    | golite::BinOp::Sub
                    | golite::BinOp::Mul
                    | golite::BinOp::Div
                    | golite::BinOp::Rem => lt,
                    _ => Type::Bool,
                };
                let dst = self.ctx().fresh_var("tmp", out_ty.clone());
                self.ctx().emit(
                    Instr::BinOp {
                        dst,
                        op: *op,
                        l: lo,
                        r: ro,
                    },
                    span,
                );
                Ok((Operand::Var(dst), out_ty))
            }
            ExprKind::Recv(ch) => {
                let (c, cty) = self.lower_expr(ch)?;
                let elem = cty.chan_elem().cloned().unwrap_or_else(unknown_ty);
                let dst = self.ctx().fresh_var("recv", elem.clone());
                self.ctx().emit(
                    Instr::Recv {
                        dst: Some(dst),
                        ok: None,
                        chan: c,
                    },
                    span,
                );
                Ok((Operand::Var(dst), elem))
            }
            ExprKind::Make { ty, cap } => match ty {
                Type::Chan(elem) => {
                    let cap_op = match cap {
                        Some(c) => self.lower_expr(c)?.0,
                        None => Operand::Const(ConstVal::Int(0)),
                    };
                    let dst = self.ctx().fresh_var("ch", ty.clone());
                    self.ctx().emit(
                        Instr::MakeChan {
                            dst,
                            elem: (**elem).clone(),
                            cap: cap_op,
                        },
                        span,
                    );
                    Ok((Operand::Var(dst), ty.clone()))
                }
                Type::Slice(_) => {
                    let dst = self.ctx().fresh_var("slice", ty.clone());
                    self.ctx()
                        .emit(Instr::MakeSlice { dst, elems: vec![] }, span);
                    Ok((Operand::Var(dst), ty.clone()))
                }
                other => Err(self.err(format!("cannot make({other:?})"), span)),
            },
            ExprKind::Closure {
                params,
                results,
                body,
            } => {
                let fid = self.lower_closure(params, results, body, span)?;
                // Collect the bound operands recorded during closure lowering.
                let captures = self.funcs[fid.0 as usize]
                    .as_ref()
                    .expect("closure lowered")
                    .n_captures;
                let bound: Vec<Operand> = self.closure_bounds.remove(&fid).unwrap_or_default();
                debug_assert_eq!(bound.len(), captures);
                let ty = Type::Func(
                    params.iter().map(|p| p.ty.clone()).collect(),
                    results.clone(),
                );
                let dst = self.ctx().fresh_var("closure", ty.clone());
                self.ctx().emit(
                    Instr::MakeClosure {
                        dst,
                        func: fid,
                        bound,
                    },
                    span,
                );
                Ok((Operand::Var(dst), ty))
            }
            ExprKind::Index { obj, index } => {
                let (o, oty) = self.lower_expr(obj)?;
                let (i, _) = self.lower_expr(index)?;
                let elem = match oty {
                    Type::Slice(t) => *t,
                    _ => unknown_ty(),
                };
                let dst = self.ctx().fresh_var("elem", elem.clone());
                self.ctx().emit(
                    Instr::IndexLoad {
                        dst,
                        obj: o,
                        index: i,
                    },
                    span,
                );
                Ok((Operand::Var(dst), elem))
            }
            ExprKind::Field { obj, name } => {
                let field_ty = self.expr_type(e).unwrap_or_else(unknown_ty);
                let (o, _) = self.lower_expr(obj)?;
                let dst = self.ctx().fresh_var(name, field_ty.clone());
                self.ctx().emit(
                    Instr::FieldLoad {
                        dst,
                        obj: o,
                        field: Symbol::intern(name),
                    },
                    span,
                );
                Ok((Operand::Var(dst), field_ty))
            }
            ExprKind::Composite { ty, fields } => match ty {
                Type::Slice(elem) => {
                    let mut elems = Vec::new();
                    for (_, v) in fields {
                        elems.push(self.lower_expr(v)?.0);
                    }
                    let dst = self.ctx().fresh_var("slice", ty.clone());
                    self.ctx().emit(Instr::MakeSlice { dst, elems }, span);
                    let _ = elem;
                    Ok((Operand::Var(dst), ty.clone()))
                }
                Type::Named(name) => {
                    let mut inits: Vec<(Symbol, Operand)> = Vec::new();
                    let decl_fields: Vec<String> = self
                        .structs
                        .iter()
                        .find(|s| &s.name == name)
                        .map(|s| s.fields.iter().map(|(f, _)| f.clone()).collect())
                        .unwrap_or_default();
                    for (i, (fname, v)) in fields.iter().enumerate() {
                        let op = self.lower_expr(v)?.0;
                        let fname = fname
                            .clone()
                            .or_else(|| decl_fields.get(i).cloned())
                            .unwrap_or_else(|| format!("_{i}"));
                        inits.push((Symbol::intern(&fname), op));
                    }
                    let explicit: Vec<Symbol> = inits.iter().map(|(f, _)| *f).collect();
                    let prim_inits = self.primitive_field_inits(name, &explicit, span);
                    inits.extend(prim_inits);
                    let dst = self.ctx().fresh_var("obj", ty.clone());
                    self.ctx().emit(
                        Instr::MakeStruct {
                            dst,
                            name: Symbol::intern(name),
                            fields: inits,
                        },
                        span,
                    );
                    Ok((Operand::Var(dst), ty.clone()))
                }
                other => Err(self.err(format!("unsupported composite literal {other:?}"), span)),
            },
            ExprKind::Call { callee, .. } => {
                // Value-position call: single result.
                if callee.as_ident() == Some("len") {
                    if let ExprKind::Call { args, .. } = &e.unparen().kind {
                        let (o, _) = self.lower_expr(&args[0])?;
                        let dst = self.ctx().fresh_var("len", Type::Int);
                        self.ctx().emit(Instr::Len { dst, obj: o }, span);
                        return Ok((Operand::Var(dst), Type::Int));
                    }
                }
                let results = self.call_result_types(e);
                let ty = results.first().cloned().unwrap_or_else(unknown_ty);
                let dst = self.ctx().fresh_var("ret", ty.clone());
                self.lower_call_stmt(e, vec![dst])?;
                Ok((Operand::Var(dst), ty))
            }
            ExprKind::Method { .. } => {
                let ty = self.method_result_type(e);
                let dst = self.ctx().fresh_var("ret", ty.clone());
                if !self.try_lower_primitive_method(e, &[dst], span)? {
                    let (func, args) = self.lower_callee(e)?;
                    self.ctx().emit(
                        Instr::Call {
                            dsts: vec![dst],
                            func,
                            args,
                        },
                        span,
                    );
                }
                Ok((Operand::Var(dst), ty))
            }
            ExprKind::Paren(_) => unreachable!("unparen applied"),
        }
    }

    fn method_result_type(&mut self, e: &Expr) -> Type {
        if let ExprKind::Method { recv, name, .. } = &e.unparen().kind {
            if recv.as_ident() == Some("context") {
                return Type::Context;
            }
            if recv.as_ident() == Some("time") && name == "After" {
                return Type::Chan(Box::new(Type::Unit));
            }
            if recv.as_ident() == Some("errors") || name == "Errorf" {
                return Type::Error;
            }
            if let Some(Type::Context) = self.expr_type(recv) {
                return match name.as_str() {
                    "Done" => Type::Chan(Box::new(Type::Unit)),
                    "Err" => Type::Error,
                    _ => unknown_ty(),
                };
            }
        }
        unknown_ty()
    }

    fn lower_closure(
        &mut self,
        params: &[golite::Param],
        results: &[Type],
        body: &golite::Block,
        span: Span,
    ) -> Result<FuncId, LowerError> {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(None);
        let outer_name = self.ctx().name.clone();
        let n = self.closure_counter;
        self.closure_counter += 1;
        let mut ctx = FuncCtx::new(format!("{outer_name}$closure{n}"), id, true, span);
        ctx.results = results.to_vec();
        self.ctxs.push(ctx);
        for p in params {
            let v = self.ctx().declare(&p.name, p.ty.clone());
            self.ctx().params.push(v);
        }
        self.lower_block(body)?;
        self.ctx().terminate(Terminator::Return(vec![]), span);
        let ctx = self.ctxs.pop().expect("pushed above");
        // Record bound operands (parent vars of the captures) for the
        // MakeClosure in the enclosing function.
        let bound: Vec<Operand> = ctx
            .captures
            .iter()
            .map(|(_, _, parent_var)| Operand::Var(*parent_var))
            .collect();
        self.closure_bounds.insert(id, bound);
        self.funcs[id.0 as usize] = Some(ctx.into_function());
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_ok(src: &str) -> Module {
        lower_source(src).unwrap_or_else(|e| panic!("lowering failed: {e}"))
    }

    #[test]
    fn lowers_figure1_shape() {
        let m = lower_ok(
            r#"
func Exec(ctx context.Context) error {
    outDone := make(chan error)
    go func() {
        outDone <- StdCopy()
    }()
    select {
    case err := <-outDone:
        return err
    case <-ctx.Done():
        return ctx.Err()
    }
}

func StdCopy() error {
    return nil
}
"#,
        );
        let exec = m.func_by_name("Exec").unwrap();
        // The closure was lifted.
        assert!(m.funcs.iter().any(|f| f.is_closure));
        // Entry block has MakeChan, MakeClosure, Go.
        let entry = exec.block(BlockId(0));
        assert!(entry
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::MakeChan { .. })));
        assert!(entry.instrs.iter().any(|i| matches!(i, Instr::Go { .. })));
        assert!(matches!(entry.term, Terminator::Select { .. }));
        // The closure captured outDone and sends on it.
        let closure = m.funcs.iter().find(|f| f.is_closure).unwrap();
        assert_eq!(closure.n_captures, 1);
        assert!(closure
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::Send { .. })));
    }

    #[test]
    fn mutex_methods_become_instrs() {
        let m = lower_ok("func f() {\n var mu sync.Mutex\n mu.Lock()\n mu.Unlock()\n}");
        let f = m.func_by_name("f").unwrap();
        let instrs: Vec<&Instr> = f.blocks.iter().flat_map(|b| &b.instrs).collect();
        assert!(instrs.iter().any(|i| matches!(i, Instr::MakeMutex { .. })));
        assert!(instrs
            .iter()
            .any(|i| matches!(i, Instr::Lock { read: false, .. })));
        assert!(instrs
            .iter()
            .any(|i| matches!(i, Instr::Unlock { read: false, .. })));
    }

    #[test]
    fn defer_unlock_uses_helper() {
        let m = lower_ok("func f() {\n var mu sync.Mutex\n mu.Lock()\n defer mu.Unlock()\n}");
        let f = m.func_by_name("f").unwrap();
        let has_defer = f.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(
                i,
                Instr::DeferCall {
                    func: FuncRef::Static(_),
                    ..
                }
            )
        });
        assert!(has_defer);
        assert!(m.funcs.iter().any(|f| f.name == "__unlock"));
    }

    #[test]
    fn defer_close_uses_helper() {
        let m = lower_ok("func f(ch chan int) {\n defer close(ch)\n}");
        assert!(m.funcs.iter().any(|f| f.name == "__close"));
    }

    #[test]
    fn select_lowering_produces_cases() {
        let m = lower_ok(
            "func f(a chan int, b chan int) {\n select {\n case v := <-a:\n  _ = v\n case b <- 1:\n default:\n }\n}",
        );
        let f = m.func_by_name("f").unwrap();
        let select = f
            .blocks
            .iter()
            .find_map(|b| match &b.term {
                Terminator::Select { cases, default } => Some((cases.clone(), *default)),
                _ => None,
            })
            .expect("select terminator");
        assert_eq!(select.0.len(), 2);
        assert!(select.1.is_some());
    }

    #[test]
    fn for_range_over_channel_desugars_to_comma_ok() {
        let m = lower_ok("func f(ch chan int) {\n for v := range ch {\n  _ = v\n }\n}");
        let f = m.func_by_name("f").unwrap();
        let has_ok_recv = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::Recv { ok: Some(_), .. }));
        assert!(has_ok_recv);
    }

    #[test]
    fn waitgroup_ops_lowered() {
        let m = lower_ok(
            "func f() {\n var wg sync.WaitGroup\n wg.Add(1)\n go func() {\n  wg.Done()\n }()\n wg.Wait()\n}",
        );
        let f = m.func_by_name("f").unwrap();
        let instrs: Vec<&Instr> = f.blocks.iter().flat_map(|b| &b.instrs).collect();
        assert!(instrs.iter().any(|i| matches!(i, Instr::WgAdd { .. })));
        assert!(instrs.iter().any(|i| matches!(i, Instr::WgWait { .. })));
        let closure = m.funcs.iter().find(|f| f.is_closure).unwrap();
        assert!(closure
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::WgDone { .. })));
    }

    #[test]
    fn context_with_cancel_desugars() {
        let m = lower_ok(
            "func f() {\n ctx, cancel := context.WithCancel(context.Background())\n defer cancel()\n <-ctx.Done()\n}",
        );
        let f = m.func_by_name("f").unwrap();
        let instrs: Vec<&Instr> = f.blocks.iter().flat_map(|b| &b.instrs).collect();
        assert!(instrs.iter().any(|i| matches!(i, Instr::MakeChan { .. })));
        assert!(instrs
            .iter()
            .any(|i| matches!(i, Instr::MakeClosure { .. })));
        assert!(instrs.iter().any(|i| matches!(i, Instr::Recv { .. })));
    }

    #[test]
    fn fatal_lowering() {
        let m = lower_ok("func TestX(t *testing.T) {\n t.Fatalf(\"boom\")\n}");
        let f = m.func_by_name("TestX").unwrap();
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::Fatal)));
    }

    #[test]
    fn globals_and_init() {
        let m = lower_ok("var count int = 3\nfunc f() int {\n return count\n}");
        assert_eq!(m.globals.len(), 1);
        assert!(m.func_by_name("__init").is_some());
        let f = m.func_by_name("f").unwrap();
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::LoadGlobal { .. })));
    }

    #[test]
    fn external_calls_are_opaque() {
        let m = lower_ok("func f() {\n DoSomething(1, 2)\n}");
        let f = m.func_by_name("f").unwrap();
        assert!(f.blocks.iter().flat_map(|b| &b.instrs).any(
            |i| matches!(i, Instr::Call { func: FuncRef::External(n), .. } if n == "DoSomething")
        ));
    }

    #[test]
    fn nested_closures_capture_transitively() {
        let m = lower_ok(
            "func f() {\n ch := make(chan int)\n go func() {\n  go func() {\n   ch <- 1\n  }()\n }()\n <-ch\n}",
        );
        let closures: Vec<&Function> = m.funcs.iter().filter(|f| f.is_closure).collect();
        assert_eq!(closures.len(), 2);
        for c in closures {
            assert_eq!(c.n_captures, 1, "each closure level captures ch");
        }
    }

    #[test]
    fn break_and_continue_in_loops() {
        let m = lower_ok(
            "func f(n int) {\n for i := 0; i < n; i++ {\n  if i == 2 {\n   continue\n  }\n  if i == 5 {\n   break\n  }\n }\n}",
        );
        assert!(m.func_by_name("f").is_some());
    }

    #[test]
    fn time_after_spawns_timer() {
        let m = lower_ok(
            "func f(ch chan int) {\n select {\n case <-ch:\n case <-time.After(100):\n }\n}",
        );
        assert!(m.funcs.iter().any(|f| f.name == "__timer"));
        let f = m.func_by_name("f").unwrap();
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::Go { .. })));
    }

    #[test]
    fn errors_on_unknown_identifier() {
        assert!(lower_source("func f() {\n x = 1\n}").is_err());
        assert!(lower_source("func f() {\n y := undefined_var\n}").is_err());
    }

    #[test]
    fn instr_count_is_positive() {
        let m = lower_ok("func main() {\n x := 1\n _ = x\n}");
        assert!(m.instr_count() > 0);
    }
}
