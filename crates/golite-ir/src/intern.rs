//! A global string interner for IR names.
//!
//! Every name the IR carries — function names, register names, struct and
//! field names, global names, external callee names — is interned once into
//! a process-wide table and handled as a [`Symbol`]: a `Copy` 4-byte id.
//! This removes the `String` clones and hash-of-string lookups that
//! dominated the hot paths at corpus scale (`name_to_func` lookups, field
//! keys in the points-to solver, per-primitive name resolution), while
//! keeping human-readable text one `as_str()` away for diagnostics.
//!
//! Determinism: interning order depends on evaluation order (and, across
//! threads, on scheduling), so the numeric ids are *not* stable between
//! runs. `Symbol` therefore implements `Ord`/`PartialOrd` by comparing the
//! underlying strings, never the ids — anything sorted by `Symbol` sorts
//! exactly as it would have sorted by `String`.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string. Cheap to copy, compare, and hash; resolves to its
/// text via [`Symbol::as_str`] in O(1).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

/// The process-wide intern table. Strings are leaked on first interning so
/// resolution hands out `&'static str`; reads take a shared lock (many
/// concurrent readers), and only the cold interning path takes the
/// exclusive lock.
struct Interner {
    /// text → id for deduplication.
    ids: HashMap<&'static str, u32>,
    /// id → text for resolution.
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            ids: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns a string, returning its symbol. Idempotent: the same text
    /// always maps to the same symbol within one process.
    pub fn intern(text: &str) -> Symbol {
        if let Some(&id) = interner().read().expect("intern table").ids.get(text) {
            return Symbol(id);
        }
        let mut table = interner().write().expect("intern table");
        // Re-check under the write lock: another thread may have interned
        // the same text between our read and write sections.
        if let Some(&id) = table.ids.get(text) {
            return Symbol(id);
        }
        let id = table.strings.len() as u32;
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        table.ids.insert(leaked, id);
        table.strings.push(leaked);
        Symbol(id)
    }

    /// The interned text. O(1); no allocation.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("intern table").strings[self.0 as usize]
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl std::ops::Deref for Symbol {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

/// Orders by text, not by id: interning order varies run to run, so id
/// order would leak nondeterminism into anything sorted by symbol.
impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("hello-intern-test");
        let b = Symbol::intern("hello-intern-test");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello-intern-test");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::intern("intern-test-a");
        let b = Symbol::intern("intern-test-b");
        assert_ne!(a, b);
    }

    #[test]
    fn ordering_follows_text_not_id() {
        // Intern in reverse lexicographic order; Ord must still sort by text.
        let z = Symbol::intern("zz-intern-order");
        let a = Symbol::intern("aa-intern-order");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn compares_against_str_and_string() {
        let s = Symbol::intern("mixed-eq-test");
        assert_eq!(s, "mixed-eq-test");
        assert_eq!("mixed-eq-test", s);
        assert_eq!(s, String::from("mixed-eq-test"));
        assert!(s.starts_with("mixed"), "Deref<Target=str> works");
    }
}
