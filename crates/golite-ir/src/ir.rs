//! The GoLite intermediate representation.
//!
//! A [`Module`] holds one function per GoLite `func` declaration plus one
//! lifted function per closure. Each [`Function`] is a control-flow graph of
//! [`Block`]s; every block carries straight-line [`Instr`]uctions and one
//! [`Terminator`]. This mirrors the role `golang.org/x/tools/go/ssa` plays
//! for the original GCatch: a mid-level IR with explicit channel, mutex, and
//! goroutine operations that the detectors and the simulator both consume.
//!
//! The IR is deliberately *not* SSA: GCatch's path-sensitive enumeration
//! re-executes straight-line code symbolically, so simple registers with
//! reassignment keep lowering and interpretation straightforward while
//! preserving everything the analyses need (creation sites, operation sites,
//! call/spawn structure).

use crate::intern::Symbol;
use golite::{Span, Type};
use std::fmt;

/// Identifies a function in a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifies a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifies a register within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// Identifies a module-level global variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// A program point: instruction `idx` of `block` in `func`. The terminator
/// is addressed by `idx == block.instrs.len()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc {
    /// Containing function.
    pub func: FuncId,
    /// Containing block.
    pub block: BlockId,
    /// Index within the block (terminator = number of instructions).
    pub idx: u32,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}:b{}:{}", self.func.0, self.block.0, self.idx)
    }
}

/// A compile-time constant.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstVal {
    /// Integer constant.
    Int(i64),
    /// Boolean constant.
    Bool(bool),
    /// String constant.
    Str(String),
    /// The unit value `struct{}{}`.
    Unit,
    /// `nil`.
    Nil,
    /// A first-class reference to a function (no captured environment).
    Func(FuncId),
}

/// An instruction operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A register.
    Var(Var),
    /// An inline constant.
    Const(ConstVal),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Operand::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// The constant integer, if this operand is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Operand::Const(ConstVal::Int(v)) => Some(*v),
            _ => None,
        }
    }
}

/// How a call names its target.
#[derive(Debug, Clone, PartialEq)]
pub enum FuncRef {
    /// A statically known function.
    Static(FuncId),
    /// A function value held in a register (closure or function parameter).
    Dynamic(Operand),
    /// A call to a function the module does not define (treated as an
    /// opaque no-op by both the analyses and the simulator).
    External(Symbol),
}

/// Binary operators (same set as the AST).
pub type BinOp = golite::BinOp;
/// Unary operators (`Neg`/`Not` survive lowering).
pub type UnOp = golite::UnOp;

/// A straight-line instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = value`
    Const {
        /// Destination register.
        dst: Var,
        /// The constant.
        value: ConstVal,
    },
    /// `dst = src`
    Copy {
        /// Destination register.
        dst: Var,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op src`
    UnOp {
        /// Destination register.
        dst: Var,
        /// Operator.
        op: UnOp,
        /// Operand.
        src: Operand,
    },
    /// `dst = l op r`
    BinOp {
        /// Destination register.
        dst: Var,
        /// Operator.
        op: BinOp,
        /// Left operand.
        l: Operand,
        /// Right operand.
        r: Operand,
    },
    /// `dst = make(chan elem, cap)` — a channel creation site. GCatch uses
    /// the instruction's [`Loc`] as the channel's static identity.
    MakeChan {
        /// Destination register.
        dst: Var,
        /// Element type.
        elem: Type,
        /// Buffer capacity (0 = unbuffered).
        cap: Operand,
    },
    /// Creation of a mutex (from `var mu sync.Mutex` or a struct field).
    MakeMutex {
        /// Destination register.
        dst: Var,
        /// `true` for `sync.RWMutex`.
        rw: bool,
    },
    /// Creation of a `sync.WaitGroup`.
    MakeWaitGroup {
        /// Destination register.
        dst: Var,
    },
    /// Creation of a `sync.Cond`.
    MakeCond {
        /// Destination register.
        dst: Var,
    },
    /// Creation of a struct object (fields are initialized in order; mutex
    /// and waitgroup fields get fresh primitives).
    MakeStruct {
        /// Destination register.
        dst: Var,
        /// Struct type name.
        name: Symbol,
        /// Explicit field initializers.
        fields: Vec<(Symbol, Operand)>,
    },
    /// Creation of a slice with the given elements.
    MakeSlice {
        /// Destination register.
        dst: Var,
        /// Initial elements.
        elems: Vec<Operand>,
    },
    /// `dst = func bound captured args` — closure creation. Captured
    /// variables become the first arguments of the lifted function.
    MakeClosure {
        /// Destination register.
        dst: Var,
        /// The lifted function.
        func: FuncId,
        /// Captured values, prepended to call arguments.
        bound: Vec<Operand>,
    },
    /// `dst = len(obj)`
    Len {
        /// Destination register.
        dst: Var,
        /// The slice (or string).
        obj: Operand,
    },
    /// `dst = obj[index]`
    IndexLoad {
        /// Destination register.
        dst: Var,
        /// The slice.
        obj: Operand,
        /// The index.
        index: Operand,
    },
    /// `obj[index] = value`
    IndexStore {
        /// The slice.
        obj: Operand,
        /// The index.
        index: Operand,
        /// Stored value.
        value: Operand,
    },
    /// `dst = obj.field`
    FieldLoad {
        /// Destination register.
        dst: Var,
        /// The struct object.
        obj: Operand,
        /// Field name.
        field: Symbol,
    },
    /// `obj.field = value`
    FieldStore {
        /// The struct object.
        obj: Operand,
        /// Field name.
        field: Symbol,
        /// Stored value.
        value: Operand,
    },
    /// `dst = *global`
    LoadGlobal {
        /// Destination register.
        dst: Var,
        /// The global.
        global: GlobalId,
    },
    /// `*global = src`
    StoreGlobal {
        /// The global.
        global: GlobalId,
        /// Stored value.
        src: Operand,
    },
    /// `chan <- value` — may block.
    Send {
        /// The channel.
        chan: Operand,
        /// Sent value.
        value: Operand,
    },
    /// `dst, ok = <-chan` — may block.
    Recv {
        /// Value destination (absent for `<-ch` statements).
        dst: Option<Var>,
        /// Comma-ok destination.
        ok: Option<Var>,
        /// The channel.
        chan: Operand,
    },
    /// `close(chan)`
    Close {
        /// The channel.
        chan: Operand,
    },
    /// `mu.Lock()` / `mu.RLock()` — may block.
    Lock {
        /// The mutex.
        mutex: Operand,
        /// `true` for a reader lock.
        read: bool,
    },
    /// `mu.Unlock()` / `mu.RUnlock()`
    Unlock {
        /// The mutex.
        mutex: Operand,
        /// `true` for a reader unlock.
        read: bool,
    },
    /// `wg.Add(n)`
    WgAdd {
        /// The wait group.
        wg: Operand,
        /// The delta.
        n: Operand,
    },
    /// `wg.Done()`
    WgDone {
        /// The wait group.
        wg: Operand,
    },
    /// `wg.Wait()` — may block.
    WgWait {
        /// The wait group.
        wg: Operand,
    },
    /// `c.Wait()` — may block.
    CondWait {
        /// The condition variable.
        cond: Operand,
    },
    /// `c.Signal()`
    CondSignal {
        /// The condition variable.
        cond: Operand,
    },
    /// `c.Broadcast()`
    CondBroadcast {
        /// The condition variable.
        cond: Operand,
    },
    /// `go f(args)`
    Go {
        /// Spawn target.
        func: FuncRef,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// `dsts = f(args)`
    Call {
        /// Result registers (one per return value used).
        dsts: Vec<Var>,
        /// Call target.
        func: FuncRef,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// `defer f(args)` — arguments evaluated now, call deferred to return.
    DeferCall {
        /// Deferred target.
        func: FuncRef,
        /// Arguments (already evaluated).
        args: Vec<Operand>,
    },
    /// `time.Sleep(n)` — scheduling hint in the simulator, no-op statically.
    Sleep {
        /// Duration in abstract ticks.
        n: Operand,
    },
    /// `t.Fatal(...)` / `t.Fatalf(...)` — stops the current goroutine after
    /// running defers (Go's `runtime.Goexit` semantics).
    Fatal,
    /// `panic(v)`
    Panic {
        /// Panic payload.
        value: Operand,
    },
    /// `print`/`println` — observable output in the simulator.
    Print {
        /// Printed operands.
        args: Vec<Operand>,
    },
    /// No operation (kept so instruction indices stay stable).
    Nop,
}

impl Instr {
    /// Whether this instruction can block the executing goroutine.
    pub fn can_block(&self) -> bool {
        matches!(
            self,
            Instr::Send { .. }
                | Instr::Recv { .. }
                | Instr::Lock { .. }
                | Instr::WgWait { .. }
                | Instr::CondWait { .. }
        )
    }

    /// Whether this is a synchronization operation on a channel or mutex —
    /// the primitives GCatch's constraint system models.
    pub fn is_modeled_sync_op(&self) -> bool {
        matches!(
            self,
            Instr::Send { .. }
                | Instr::Recv { .. }
                | Instr::Close { .. }
                | Instr::Lock { .. }
                | Instr::Unlock { .. }
        )
    }
}

/// One communication case of a `select` terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectOp {
    /// `case ch <- value:`
    Send {
        /// The channel.
        chan: Operand,
        /// Sent value.
        value: Operand,
    },
    /// `case dst, ok := <-ch:`
    Recv {
        /// Value destination.
        dst: Option<Var>,
        /// Comma-ok destination.
        ok: Option<Var>,
        /// The channel.
        chan: Operand,
    },
}

impl SelectOp {
    /// The channel operand of this case.
    pub fn chan(&self) -> &Operand {
        match self {
            SelectOp::Send { chan, .. } | SelectOp::Recv { chan, .. } => chan,
        }
    }
}

/// A select case with its target block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectCase {
    /// The communication operation.
    pub op: SelectOp,
    /// Block to run when this case fires.
    pub target: BlockId,
}

/// The exit of a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a boolean operand.
    Branch {
        /// Condition.
        cond: Operand,
        /// Taken when true.
        then: BlockId,
        /// Taken when false.
        els: BlockId,
    },
    /// Function return.
    Return(Vec<Operand>),
    /// `select` over several channel operations — may block if no `default`.
    Select {
        /// Communication cases.
        cases: Vec<SelectCase>,
        /// `default:` target, if present.
        default: Option<BlockId>,
    },
    /// Block terminator for unreachable-by-construction blocks.
    Unreachable,
}

impl Terminator {
    /// All successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { then, els, .. } => vec![*then, *els],
            Terminator::Return(_) | Terminator::Unreachable => vec![],
            Terminator::Select { cases, default } => {
                let mut out: Vec<BlockId> = cases.iter().map(|c| c.target).collect();
                if let Some(d) = default {
                    out.push(*d);
                }
                out
            }
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// Source spans parallel to `instrs` (synthetic spans allowed).
    pub spans: Vec<Span>,
    /// The block's terminator.
    pub term: Terminator,
    /// Span of the terminator.
    pub term_span: Span,
}

impl Default for Block {
    fn default() -> Self {
        Block::new()
    }
}

impl Block {
    /// An empty block with an [`Terminator::Unreachable`] terminator.
    pub fn new() -> Block {
        Block {
            instrs: Vec::new(),
            spans: Vec::new(),
            term: Terminator::Unreachable,
            term_span: Span::synthetic(),
        }
    }
}

/// A lowered function.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name (lifted closures get `<outer>$closureN`).
    pub name: Symbol,
    /// This function's id within the module.
    pub id: FuncId,
    /// Registers holding the parameters, in order.
    pub params: Vec<Var>,
    /// Number of leading params that are closure captures.
    pub n_captures: usize,
    /// Declared result types.
    pub results: Vec<Type>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Register names (debugging / reports).
    pub var_names: Vec<Symbol>,
    /// Register types as inferred during lowering.
    pub var_types: Vec<Type>,
    /// Whether this function was lifted from a closure expression.
    pub is_closure: bool,
    /// Source span of the declaration.
    pub span: Span,
}

impl Function {
    /// The block with the given id.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.0 as usize]
    }

    /// Iterate over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// The instruction at `loc`, if `loc` addresses an instruction (not a
    /// terminator) in this function.
    pub fn instr_at(&self, loc: Loc) -> Option<&Instr> {
        if loc.func != self.id {
            return None;
        }
        self.blocks
            .get(loc.block.0 as usize)?
            .instrs
            .get(loc.idx as usize)
    }

    /// The declared type of a register.
    pub fn var_type(&self, v: Var) -> &Type {
        &self.var_types[v.0 as usize]
    }

    /// The name of a register.
    pub fn var_name(&self, v: Var) -> &'static str {
        self.var_names[v.0 as usize].as_str()
    }

    /// The name of a register as an interned symbol (no resolution cost).
    pub fn var_symbol(&self, v: Var) -> Symbol {
        self.var_names[v.0 as usize]
    }
}

/// A module-level global variable.
#[derive(Debug, Clone)]
pub struct Global {
    /// Source name.
    pub name: Symbol,
    /// Declared type.
    pub ty: Type,
    /// Id.
    pub id: GlobalId,
}

/// A lowered GoLite program.
#[derive(Debug, Clone)]
pub struct Module {
    /// All functions; indices match [`FuncId`]s.
    pub funcs: Vec<Function>,
    /// Struct declarations carried over from the AST.
    pub structs: Vec<golite::StructDecl>,
    /// Module-level globals.
    pub globals: Vec<Global>,
    /// Map from function name to id (declared functions only). Keyed by
    /// interned symbol: lookups hash 4 bytes, not the whole name.
    name_to_func: std::collections::HashMap<Symbol, FuncId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module {
            funcs: Vec::new(),
            structs: Vec::new(),
            globals: Vec::new(),
            name_to_func: std::collections::HashMap::new(),
        }
    }

    /// Adds a function, registering its name if it is not a lifted closure.
    /// The function is moved into the module — no clone, and the name
    /// registration copies a 4-byte symbol instead of the name text.
    pub fn add_func(&mut self, mut f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        f.id = id;
        if !f.is_closure {
            self.name_to_func.insert(f.name, id);
        }
        self.funcs.push(f);
        id
    }

    /// Looks up a declared (non-closure) function by name.
    pub fn func_by_name(&self, name: &str) -> Option<&Function> {
        self.name_to_func
            .get(&Symbol::intern(name))
            .map(|id| &self.funcs[id.0 as usize])
    }

    /// Looks up a declared (non-closure) function by interned name,
    /// skipping the intern-table round trip.
    pub fn func_by_symbol(&self, name: Symbol) -> Option<&Function> {
        self.name_to_func
            .get(&name)
            .map(|id| &self.funcs[id.0 as usize])
    }

    /// The function with the given id.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Looks up a struct declaration.
    pub fn struct_decl(&self, name: &str) -> Option<&golite::StructDecl> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Total number of IR instructions (a coarse size metric used by the
    /// scaling experiments).
    pub fn instr_count(&self) -> usize {
        self.funcs
            .iter()
            .map(|f| f.blocks.iter().map(|b| b.instrs.len() + 1).sum::<usize>())
            .sum()
    }
}

impl Default for Module {
    fn default() -> Self {
        Module::new()
    }
}

/// Pretty-prints a function's CFG into `out` (append-only; callers dumping
/// many functions reuse one buffer instead of allocating per call).
pub fn dump_function_into(f: &Function, out: &mut String) {
    use fmt::Write as _;
    let _ = writeln!(out, "func {} (id {}) params={:?}", f.name, f.id.0, f.params);
    for (bid, block) in f.iter_blocks() {
        let _ = writeln!(out, " b{}:", bid.0);
        for (i, instr) in block.instrs.iter().enumerate() {
            let _ = writeln!(out, "   {i:3}: {instr:?}");
        }
        let _ = writeln!(out, "   term: {:?}", block.term);
    }
}

/// Pretty-prints a function's CFG for debugging.
pub fn dump_function(f: &Function) -> String {
    let mut out = String::new();
    dump_function_into(f, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Operand::Const(ConstVal::Bool(true)),
            then: BlockId(1),
            els: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Terminator::Return(vec![]).successors().is_empty());
        let s = Terminator::Select {
            cases: vec![SelectCase {
                op: SelectOp::Recv {
                    dst: None,
                    ok: None,
                    chan: Operand::Var(Var(0)),
                },
                target: BlockId(3),
            }],
            default: Some(BlockId(4)),
        };
        assert_eq!(s.successors(), vec![BlockId(3), BlockId(4)]);
    }

    #[test]
    fn blocking_classification() {
        let send = Instr::Send {
            chan: Operand::Var(Var(0)),
            value: Operand::Const(ConstVal::Int(1)),
        };
        assert!(send.can_block());
        assert!(send.is_modeled_sync_op());
        let close = Instr::Close {
            chan: Operand::Var(Var(0)),
        };
        assert!(!close.can_block());
        assert!(close.is_modeled_sync_op());
        let wait = Instr::WgWait {
            wg: Operand::Var(Var(0)),
        };
        assert!(wait.can_block());
        assert!(
            !wait.is_modeled_sync_op(),
            "WaitGroup is deliberately unmodeled (§5.2)"
        );
    }

    #[test]
    fn module_name_lookup_skips_closures() {
        let mut m = Module::new();
        let f = Function {
            name: "main".into(),
            id: FuncId(0),
            params: vec![],
            n_captures: 0,
            results: vec![],
            blocks: vec![Block::new()],
            var_names: vec![],
            var_types: vec![],
            is_closure: false,
            span: Span::synthetic(),
        };
        m.add_func(f.clone());
        let mut c = f;
        c.name = Symbol::intern("main$closure0");
        c.is_closure = true;
        m.add_func(c);
        assert!(m.func_by_name("main").is_some());
        assert!(m.func_by_name("main$closure0").is_none());
    }
}
