//! # golite-ir — CFG IR and static analyses for GoLite
//!
//! This crate replaces the `golang.org/x/tools/go/ssa`, `go/pointer`, and
//! `go/callgraph` packages the original GCatch builds on:
//!
//! * [`ir`] — a mid-level control-flow-graph IR with explicit channel,
//!   mutex, wait-group, goroutine-spawn, and defer operations;
//! * [`mod@lower`] — AST → IR lowering, including closure lifting and
//!   desugaring of the `context`/`time`/`testing` vocabulary;
//! * [`alias`] — Andersen-style points-to analysis with an on-the-fly call
//!   graph (closures resolve precisely; the paper's documented alias
//!   imprecisions are reproduced deliberately);
//! * [`dom`] — dominators and post-dominators used by GFix's safety checks.
//!
//! # Examples
//!
//! ```
//! let src = "
//! func main() {
//!     ch := make(chan int)
//!     go func() {
//!         ch <- 1
//!     }()
//!     <-ch
//! }
//! ";
//! let module = golite_ir::lower_source(src).unwrap();
//! let analysis = golite_ir::analyze(&module);
//! assert_eq!(module.funcs.len(), 2); // main + lifted closure
//! assert!(analysis.call_sites().iter().any(|cs| matches!(cs.kind, golite_ir::CallKind::Go)));
//! ```

#![warn(missing_docs)]

pub mod alias;
pub mod diff;
pub mod dom;
pub mod intern;
pub mod ir;
pub mod lower;

pub use alias::{
    analyze, analyze_with_mode, AbstractObject, AliasMode, AliasStats, Analysis, CallKind, CallSite,
};
pub use diff::{changed_funcs, module_shape, ModuleShape};
pub use dom::{predecessors, reachable_blocks, Dominators, PostDominators};
pub use intern::Symbol;
pub use ir::*;
pub use lower::{lower, lower_source, LowerError};
