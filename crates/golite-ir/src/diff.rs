//! Function-granular module diffing for incremental re-analysis.
//!
//! The serve daemon keeps per-module analysis artifacts warm across
//! requests; when an edited module comes back, it needs to know *which
//! functions* actually changed so only the channels whose analysis can
//! observe the edit are recomputed. This module provides the shape the
//! daemon caches ([`ModuleShape`]) and the comparison ([`changed_funcs`]).
//!
//! A function fingerprint must cover everything that can influence a
//! detection result anchored in that function, including data the CFG dump
//! omits:
//!
//! * the instruction/terminator structure ([`dump_function_into`]);
//! * every source span — reports carry line/column positions, so a purely
//!   positional shift (same code, new lines) must read as a change;
//! * the [`FuncId`] — replayed reports embed `Loc`s, which are only valid
//!   if the function kept its id;
//! * register names and types — reports name primitives after the first
//!   variable bound to them.
//!
//! Fingerprints are position-*sensitive* on purpose: an edit that shifts a
//! function without changing it still dirties that function (its spans
//! moved), but never dirties functions above the edit.

use crate::intern::Symbol;
use crate::ir::{dump_function_into, FuncId, Function, Module};
use golite::Span;
use std::collections::HashMap;

/// 64-bit FNV-1a over a byte slice, continuing from `h`.
fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;

fn fnv_u32(h: u64, v: u32) -> u64 {
    fnv(h, &v.to_le_bytes())
}

fn fnv_span(mut h: u64, s: &Span) -> u64 {
    h = fnv_u32(h, s.start);
    h = fnv_u32(h, s.end);
    h = fnv_u32(h, s.line);
    fnv_u32(h, s.col)
}

fn fnv_symbol(h: u64, s: Symbol) -> u64 {
    fnv(h, s.as_str().as_bytes())
}

/// Fingerprint of one function: id, name, signature, register metadata,
/// the full CFG dump, and every source span.
pub fn function_fingerprint(f: &Function, scratch: &mut String) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv_u32(h, f.id.0);
    h = fnv_symbol(h, f.name);
    h = fnv_u32(h, f.params.len() as u32);
    h = fnv_u32(h, f.n_captures as u32);
    h = fnv(h, if f.is_closure { b"c" } else { b"f" });
    h = fnv(h, format!("{:?}", f.results).as_bytes());
    for &name in &f.var_names {
        h = fnv_symbol(h, name);
    }
    h = fnv(h, format!("{:?}", f.var_types).as_bytes());
    scratch.clear();
    dump_function_into(f, scratch);
    h = fnv(h, scratch.as_bytes());
    h = fnv_span(h, &f.span);
    for block in &f.blocks {
        for span in &block.spans {
            h = fnv_span(h, span);
        }
        h = fnv_span(h, &block.term_span);
    }
    h
}

/// Everything the differ needs to compare two lowered versions of one
/// module: per-function fingerprints plus a hash of the module-level
/// items (globals, struct declarations, function roster).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleShape {
    /// Fingerprint per function, keyed by id.
    pub funcs: HashMap<FuncId, u64>,
    /// Hash of everything outside function bodies: globals, structs, and
    /// the function roster (count + names in id order). Two shapes with
    /// different toplevel hashes are incomparable.
    pub toplevel: u64,
    /// Combined fingerprint of the whole shape (toplevel + every function
    /// in id order) — the module identity the daemon reports in `status`.
    pub fingerprint: u64,
}

/// Computes the diffable shape of a lowered module.
pub fn module_shape(module: &Module) -> ModuleShape {
    let mut toplevel = FNV_OFFSET;
    toplevel = fnv_u32(toplevel, module.funcs.len() as u32);
    for f in &module.funcs {
        toplevel = fnv_symbol(toplevel, f.name);
    }
    for g in &module.globals {
        toplevel = fnv_symbol(toplevel, g.name);
        toplevel = fnv(toplevel, format!("{:?}", g.ty).as_bytes());
        toplevel = fnv_u32(toplevel, g.id.0);
    }
    toplevel = fnv(toplevel, format!("{:?}", module.structs).as_bytes());

    let mut scratch = String::new();
    let mut funcs = HashMap::with_capacity(module.funcs.len());
    let mut fingerprint = toplevel;
    for f in &module.funcs {
        let fp = function_fingerprint(f, &mut scratch);
        fingerprint = fnv(fingerprint, &fp.to_le_bytes());
        funcs.insert(f.id, fp);
    }
    ModuleShape {
        funcs,
        toplevel,
        fingerprint,
    }
}

/// Function-granular diff of two shapes of the *same* module path.
///
/// Returns the ids (in the new module) of functions whose fingerprint
/// differs from the old shape, including functions the old shape did not
/// have. Returns `None` when the shapes are incomparable — the toplevel
/// items differ, or the old shape had a function the new one lost — in
/// which case the caller must fall back to a full re-analysis.
pub fn changed_funcs(old: &ModuleShape, new: &ModuleShape) -> Option<Vec<FuncId>> {
    if old.toplevel != new.toplevel {
        return None;
    }
    if old.funcs.keys().any(|id| !new.funcs.contains_key(id)) {
        return None;
    }
    let mut changed: Vec<FuncId> = new
        .funcs
        .iter()
        .filter(|(id, fp)| old.funcs.get(id) != Some(fp))
        .map(|(&id, _)| id)
        .collect();
    changed.sort_unstable();
    Some(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_source;

    const BASE: &str = r#"
package main

func helper(n int) int {
    return n + 1
}

func main() {
    ch := make(chan int, 1)
    ch <- helper(1)
    <-ch
}
"#;

    #[test]
    fn identical_sources_have_no_changes() {
        let a = module_shape(&lower_source(BASE).unwrap());
        let b = module_shape(&lower_source(BASE).unwrap());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(changed_funcs(&a, &b), Some(Vec::new()));
    }

    #[test]
    fn body_edit_changes_exactly_that_function() {
        let a = module_shape(&lower_source(BASE).unwrap());
        let edited = BASE.replace("return n + 1", "return n + 2");
        let new_module = lower_source(&edited).unwrap();
        let b = module_shape(&new_module);
        let changed = changed_funcs(&a, &b).expect("comparable shapes");
        assert_eq!(changed.len(), 1);
        let f = new_module.func(changed[0]);
        assert_eq!(f.name.as_str(), "helper");
    }

    #[test]
    fn positional_shift_dirties_shifted_functions_only() {
        // A comment added above `main` shifts `main`'s spans but leaves
        // `helper` (declared first) untouched.
        let a = module_shape(&lower_source(BASE).unwrap());
        let edited = BASE.replace("func main()", "// note\nfunc main()");
        let new_module = lower_source(&edited).unwrap();
        let b = module_shape(&new_module);
        let changed = changed_funcs(&a, &b).expect("comparable shapes");
        assert!(!changed.is_empty(), "shifted spans must read as changes");
        assert!(changed
            .iter()
            .all(|&id| new_module.func(id).name.as_str() != "helper"));
    }

    #[test]
    fn toplevel_change_is_incomparable() {
        let a = module_shape(&lower_source(BASE).unwrap());
        let edited = format!("{BASE}\nfunc extra() {{\n}}\n");
        let b = module_shape(&lower_source(&edited).unwrap());
        assert_eq!(changed_funcs(&a, &b), None, "roster change: full rerun");
    }
}
