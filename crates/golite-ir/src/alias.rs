//! Andersen-style points-to analysis with on-the-fly call-graph
//! construction.
//!
//! This replaces the `golang.org/x/tools/go/pointer` and `go/callgraph`
//! packages the original GCatch builds on. The analysis is flow- and
//! context-insensitive, field-sensitive per struct allocation site, and
//! resolves closures precisely through `MakeClosure` bindings.
//!
//! Two imprecisions of the original toolchain are reproduced *deliberately*,
//! because the paper's §5.2 false-positive census attributes 17 BMOC false
//! positives to them:
//!
//! * a channel **sent through another channel** is not tracked: `Recv`
//!   destinations get an empty points-to set, so the receiving side's
//!   operations cannot be matched to the sending side's channel;
//! * a channel **stored into a slice** and loaded back by index is not
//!   tracked: `IndexLoad` destinations get an empty points-to set.
//!
//! Dynamic calls whose operand has an empty points-to set fall back to
//! arity matching over all module functions (the CHA-style behavior of the
//! paper's call-graph package); call sites that end up with more than one
//! candidate are marked [`ambiguous`](CallSite::ambiguous), and GCatch
//! ignores their targets exactly as §5.1 of the paper describes.

use crate::ir::*;
use std::collections::{HashMap, HashSet, VecDeque};

/// An abstract heap object, identified by its creation site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AbstractObject {
    /// A channel created by `make(chan ..)` at the given site.
    Chan(Loc),
    /// A mutex created at the given site.
    Mutex(Loc),
    /// A wait group created at the given site.
    WaitGroup(Loc),
    /// A condition variable created at the given site.
    Cond(Loc),
    /// A struct object allocated at the given site.
    Struct(Loc),
    /// A slice allocated at the given site.
    Slice(Loc),
    /// A closure created at the given site.
    Closure {
        /// The lifted function.
        func: FuncId,
        /// The `MakeClosure` site.
        site: Loc,
    },
    /// A plain function constant.
    Func(FuncId),
}

impl AbstractObject {
    /// The target function, if this object is callable.
    pub fn callee(&self) -> Option<FuncId> {
        match self {
            AbstractObject::Closure { func, .. } => Some(*func),
            AbstractObject::Func(func) => Some(*func),
            _ => None,
        }
    }
}

/// A node in the points-to constraint graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Node {
    /// A function-local register.
    Var(FuncId, Var),
    /// A module global.
    Global(GlobalId),
    /// A field of a struct allocation site.
    Field(Loc, u32),
    /// The i-th return value of a function.
    Ret(FuncId, u32),
}

/// What kind of invocation a call site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// Ordinary call.
    Call,
    /// `go` spawn.
    Go,
    /// `defer`red call.
    Defer,
}

/// A resolved call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The calling function.
    pub caller: FuncId,
    /// Location of the call instruction.
    pub loc: Loc,
    /// Call, go, or defer.
    pub kind: CallKind,
    /// Candidate callees.
    pub targets: Vec<FuncId>,
    /// External callee name, when the target is not in the module.
    pub external: Option<String>,
    /// True when the targets came from arity matching with more than one
    /// candidate; GCatch ignores such sites (paper §5.1).
    pub ambiguous: bool,
}

/// Results of the combined points-to / call-graph analysis.
#[derive(Debug)]
pub struct Analysis {
    points_to: HashMap<(FuncId, Var), HashSet<AbstractObject>>,
    /// All call sites, in deterministic order.
    pub call_sites: Vec<CallSite>,
    /// callee → call-site indices.
    callers_of: HashMap<FuncId, Vec<usize>>,
    /// caller → call-site indices.
    calls_in: HashMap<FuncId, Vec<usize>>,
    /// Memoized transitive-reachability sets (queried heavily by the
    /// detectors and GFix's dispatcher). Lock-guarded so a shared `Analysis`
    /// can serve the parallel per-channel detector workers.
    reach_cache: std::sync::RwLock<HashMap<FuncId, std::sync::Arc<HashSet<FuncId>>>>,
}

impl Analysis {
    /// The points-to set of a register.
    pub fn points_to(&self, func: FuncId, var: Var) -> impl Iterator<Item = &AbstractObject> {
        self.points_to.get(&(func, var)).into_iter().flatten()
    }

    /// The points-to set of an operand (constants resolve to function
    /// objects or nothing).
    pub fn operand_points_to(&self, func: FuncId, op: &Operand) -> Vec<AbstractObject> {
        match op {
            Operand::Var(v) => {
                let mut objs: Vec<AbstractObject> = self.points_to(func, *v).copied().collect();
                objs.sort_unstable();
                objs
            }
            Operand::Const(ConstVal::Func(f)) => vec![AbstractObject::Func(*f)],
            Operand::Const(_) => vec![],
        }
    }

    /// Whether two operands may alias (share at least one abstract object).
    pub fn may_alias(&self, f1: FuncId, op1: &Operand, f2: FuncId, op2: &Operand) -> bool {
        let a = self.operand_points_to(f1, op1);
        if a.is_empty() {
            return false;
        }
        let b = self.operand_points_to(f2, op2);
        a.iter().any(|o| b.contains(o))
    }

    /// Call sites inside `func`.
    pub fn calls_in(&self, func: FuncId) -> impl Iterator<Item = &CallSite> {
        self.calls_in
            .get(&func)
            .into_iter()
            .flatten()
            .map(move |&i| &self.call_sites[i])
    }

    /// Call sites that may target `func`.
    pub fn callers_of(&self, func: FuncId) -> impl Iterator<Item = &CallSite> {
        self.callers_of
            .get(&func)
            .into_iter()
            .flatten()
            .map(move |&i| &self.call_sites[i])
    }

    /// Functions transitively reachable from `root` through unambiguous
    /// call/go/defer edges (including `root`). Memoized.
    pub fn reachable_from(&self, root: FuncId) -> std::sync::Arc<HashSet<FuncId>> {
        if let Some(cached) = self.reach_cache.read().expect("reach cache").get(&root) {
            return cached.clone();
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(root);
        queue.push_back(root);
        while let Some(f) = queue.pop_front() {
            for cs in self.calls_in(f) {
                if cs.ambiguous {
                    continue;
                }
                for &t in &cs.targets {
                    if seen.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
        }
        let rc = std::sync::Arc::new(seen);
        self.reach_cache
            .write()
            .expect("reach cache")
            .insert(root, rc.clone());
        rc
    }
}

/// Runs the analysis over a module.
pub fn analyze(module: &Module) -> Analysis {
    Solver::new(module).run()
}

struct Solver<'m> {
    module: &'m Module,
    pts: HashMap<Node, HashSet<AbstractObject>>,
    /// Simple inclusion edges src → dsts.
    copy_edges: HashMap<Node, Vec<Node>>,
    /// Worklist of nodes whose sets grew.
    worklist: VecDeque<Node>,
    /// Field names interned per struct type.
    field_ids: HashMap<String, u32>,
    /// Dynamic call sites awaiting resolution: (caller, loc, kind, operand node, args, dsts).
    dyn_calls: Vec<DynCall>,
    /// Already-installed (dyn-call-index, callee) bindings.
    installed: HashSet<(usize, FuncId)>,
    /// Field loads awaiting struct objects: (base node, field, destination).
    deferred_field_loads: Vec<(Node, u32, Node)>,
    /// Field stores awaiting struct objects: (base node, field, value, fn).
    deferred_field_stores: Vec<(Node, u32, Operand, FuncId)>,
    call_sites: Vec<CallSite>,
}

struct DynCall {
    caller: FuncId,
    loc: Loc,
    kind: CallKind,
    op_node: Option<Node>,
    const_target: Option<FuncId>,
    args: Vec<Operand>,
    dsts: Vec<Var>,
}

impl<'m> Solver<'m> {
    fn new(module: &'m Module) -> Solver<'m> {
        Solver {
            module,
            pts: HashMap::new(),
            copy_edges: HashMap::new(),
            worklist: VecDeque::new(),
            field_ids: HashMap::new(),
            dyn_calls: Vec::new(),
            installed: HashSet::new(),
            deferred_field_loads: Vec::new(),
            deferred_field_stores: Vec::new(),
            call_sites: Vec::new(),
        }
    }

    fn field_id(&mut self, name: &str) -> u32 {
        let next = self.field_ids.len() as u32;
        *self.field_ids.entry(name.to_string()).or_insert(next)
    }

    fn add_obj(&mut self, node: Node, obj: AbstractObject) {
        if self.pts.entry(node).or_default().insert(obj) {
            self.worklist.push_back(node);
        }
    }

    fn add_edge(&mut self, src: Node, dst: Node) {
        let edges = self.copy_edges.entry(src).or_default();
        if !edges.contains(&dst) {
            edges.push(dst);
            // Propagate current contents immediately.
            let objs: Vec<AbstractObject> =
                self.pts.get(&src).into_iter().flatten().copied().collect();
            for o in objs {
                self.add_obj(dst, o);
            }
        }
    }

    fn operand_node(&mut self, func: FuncId, op: &Operand) -> Option<Node> {
        match op {
            Operand::Var(v) => Some(Node::Var(func, *v)),
            Operand::Const(_) => None,
        }
    }

    /// Links an operand into a destination node (constant functions become
    /// direct objects).
    fn flow(&mut self, func: FuncId, src: &Operand, dst: Node) {
        match src {
            Operand::Var(v) => self.add_edge(Node::Var(func, *v), dst),
            Operand::Const(ConstVal::Func(f)) => self.add_obj(dst, AbstractObject::Func(*f)),
            Operand::Const(_) => {}
        }
    }

    fn run(mut self) -> Analysis {
        // Phase 1: seed constraints from every instruction.
        for function in &self.module.funcs {
            let fid = function.id;
            for (bid, block) in function.iter_blocks() {
                for (idx, instr) in block.instrs.iter().enumerate() {
                    let loc = Loc {
                        func: fid,
                        block: bid,
                        idx: idx as u32,
                    };
                    self.seed_instr(fid, loc, instr);
                }
                // Select terminators bind received values — which we do not
                // track (channel-through-channel imprecision), so nothing to
                // seed for them.
                if let Terminator::Return(vals) = &block.term {
                    for (i, v) in vals.iter().enumerate() {
                        self.flow(fid, &v.clone(), Node::Ret(fid, i as u32));
                    }
                }
            }
        }

        // Phase 2: fixpoint — propagate sets and resolve dynamic calls.
        loop {
            while let Some(node) = self.worklist.pop_front() {
                let objs: Vec<AbstractObject> =
                    self.pts.get(&node).into_iter().flatten().copied().collect();
                let dsts = self.copy_edges.get(&node).cloned().unwrap_or_default();
                for dst in dsts {
                    for &o in &objs {
                        self.add_obj(dst, o);
                    }
                }
            }
            // Re-evaluate field constraints against the current struct sets
            // (add_edge/flow are idempotent, so this is safe to repeat).
            for i in 0..self.deferred_field_loads.len() {
                let (base, f, dst) = self.deferred_field_loads[i];
                let structs: Vec<Loc> = self
                    .pts
                    .get(&base)
                    .into_iter()
                    .flatten()
                    .filter_map(|o| match o {
                        AbstractObject::Struct(loc) => Some(*loc),
                        _ => None,
                    })
                    .collect();
                for s in structs {
                    self.add_edge(Node::Field(s, f), dst);
                }
            }
            for i in 0..self.deferred_field_stores.len() {
                let (base, f, value, fid) = self.deferred_field_stores[i].clone();
                let structs: Vec<Loc> = self
                    .pts
                    .get(&base)
                    .into_iter()
                    .flatten()
                    .filter_map(|o| match o {
                        AbstractObject::Struct(loc) => Some(*loc),
                        _ => None,
                    })
                    .collect();
                for s in structs {
                    self.flow(fid, &value, Node::Field(s, f));
                }
            }
            // Resolve dynamic calls with newly discovered callees.
            let mut changed = false;
            for i in 0..self.dyn_calls.len() {
                let (op_node, const_target) =
                    (self.dyn_calls[i].op_node, self.dyn_calls[i].const_target);
                let mut callees: Vec<(FuncId, bool)> = Vec::new();
                if let Some(f) = const_target {
                    callees.push((f, false));
                }
                if let Some(node) = op_node {
                    let objs: Vec<AbstractObject> =
                        self.pts.get(&node).into_iter().flatten().copied().collect();
                    for o in objs {
                        match o {
                            AbstractObject::Closure { func, .. } => callees.push((func, true)),
                            AbstractObject::Func(func) => callees.push((func, false)),
                            _ => {}
                        }
                    }
                }
                for (callee, via_closure) in callees {
                    if self.installed.insert((i, callee)) {
                        self.install_binding(i, callee, via_closure);
                        changed = true;
                    }
                }
            }
            if !changed && self.worklist.is_empty() {
                break;
            }
        }

        // Phase 3: materialize call sites.
        for i in 0..self.dyn_calls.len() {
            let dc = &self.dyn_calls[i];
            let mut targets: Vec<FuncId> = self
                .installed
                .iter()
                .filter(|(j, _)| *j == i)
                .map(|(_, f)| *f)
                .collect();
            targets.sort_unstable();
            targets.dedup();
            let mut ambiguous = false;
            if targets.is_empty() {
                // CHA-style arity fallback (paper's workaround source).
                let arity = dc.args.len();
                targets = self
                    .module
                    .funcs
                    .iter()
                    .filter(|f| f.params.len() - f.n_captures == arity && f.is_closure)
                    .map(|f| f.id)
                    .collect();
                ambiguous = targets.len() > 1;
            }
            self.call_sites.push(CallSite {
                caller: dc.caller,
                loc: dc.loc,
                kind: dc.kind,
                targets,
                external: None,
                ambiguous,
            });
        }

        let mut callers_of: HashMap<FuncId, Vec<usize>> = HashMap::new();
        let mut calls_in: HashMap<FuncId, Vec<usize>> = HashMap::new();
        self.call_sites.sort_by_key(|cs| cs.loc);
        for (i, cs) in self.call_sites.iter().enumerate() {
            calls_in.entry(cs.caller).or_default().push(i);
            for &t in &cs.targets {
                callers_of.entry(t).or_default().push(i);
            }
        }

        let mut points_to = HashMap::new();
        for (node, objs) in &self.pts {
            if let Node::Var(f, v) = node {
                points_to.insert((*f, *v), objs.clone());
            }
        }

        Analysis {
            points_to,
            call_sites: self.call_sites,
            callers_of,
            calls_in,
            reach_cache: std::sync::RwLock::new(HashMap::new()),
        }
    }

    fn seed_instr(&mut self, fid: FuncId, loc: Loc, instr: &Instr) {
        match instr {
            Instr::MakeChan { dst, .. } => {
                self.add_obj(Node::Var(fid, *dst), AbstractObject::Chan(loc));
            }
            Instr::MakeMutex { dst, .. } => {
                self.add_obj(Node::Var(fid, *dst), AbstractObject::Mutex(loc));
            }
            Instr::MakeWaitGroup { dst } => {
                self.add_obj(Node::Var(fid, *dst), AbstractObject::WaitGroup(loc));
            }
            Instr::MakeCond { dst } => {
                self.add_obj(Node::Var(fid, *dst), AbstractObject::Cond(loc));
            }
            Instr::MakeStruct { dst, fields, .. } => {
                self.add_obj(Node::Var(fid, *dst), AbstractObject::Struct(loc));
                for (fname, op) in fields {
                    let f = self.field_id(fname);
                    self.flow(fid, op, Node::Field(loc, f));
                }
            }
            Instr::MakeSlice { dst, .. } => {
                // Slice contents are deliberately untracked (paper §5.2).
                self.add_obj(Node::Var(fid, *dst), AbstractObject::Slice(loc));
            }
            Instr::MakeClosure { dst, func, bound } => {
                self.add_obj(
                    Node::Var(fid, *dst),
                    AbstractObject::Closure {
                        func: *func,
                        site: loc,
                    },
                );
                // Bind captures directly to the closure's leading params.
                let callee = self.module.func(*func);
                for (i, b) in bound.iter().enumerate() {
                    if let Some(&param) = callee.params.get(i) {
                        self.flow(fid, b, Node::Var(*func, param));
                    }
                }
            }
            Instr::Copy { dst, src } => {
                self.flow(fid, src, Node::Var(fid, *dst));
            }
            Instr::FieldLoad { dst, obj, field } => {
                // Complex constraint: for each struct object the base may
                // point to, the field node flows into the destination.
                // Re-evaluated every fixpoint round (idempotent).
                let f = self.field_id(field);
                if let Some(base) = self.operand_node(fid, obj) {
                    self.deferred_field_loads
                        .push((base, f, Node::Var(fid, *dst)));
                }
            }
            Instr::FieldStore { obj, field, value } => {
                let f = self.field_id(field);
                if let Some(base) = self.operand_node(fid, obj) {
                    self.deferred_field_stores
                        .push((base, f, value.clone(), fid));
                }
            }
            Instr::LoadGlobal { dst, global } => {
                self.add_edge(Node::Global(*global), Node::Var(fid, *dst));
            }
            Instr::StoreGlobal { global, src } => {
                self.flow(fid, src, Node::Global(*global));
            }
            Instr::Call { dsts, func, args } => {
                self.seed_call(fid, loc, CallKind::Call, func, args, dsts);
            }
            Instr::Go { func, args } => {
                self.seed_call(fid, loc, CallKind::Go, func, args, &[]);
            }
            Instr::DeferCall { func, args } => {
                self.seed_call(fid, loc, CallKind::Defer, func, args, &[]);
            }
            // Recv and IndexLoad destinations: intentionally no constraints
            // (reproduces the paper's alias-analysis false positives).
            _ => {}
        }
    }

    fn seed_call(
        &mut self,
        fid: FuncId,
        loc: Loc,
        kind: CallKind,
        func: &FuncRef,
        args: &[Operand],
        dsts: &[Var],
    ) {
        match func {
            FuncRef::Static(callee) => {
                self.install_static(fid, *callee, args, dsts, 0);
                self.call_sites.push(CallSite {
                    caller: fid,
                    loc,
                    kind,
                    targets: vec![*callee],
                    external: None,
                    ambiguous: false,
                });
            }
            FuncRef::External(name) => {
                self.call_sites.push(CallSite {
                    caller: fid,
                    loc,
                    kind,
                    targets: vec![],
                    external: Some(name.clone()),
                    ambiguous: false,
                });
            }
            FuncRef::Dynamic(op) => {
                let op_node = self.operand_node(fid, op);
                let const_target = match op {
                    Operand::Const(ConstVal::Func(f)) => Some(*f),
                    _ => None,
                };
                self.dyn_calls.push(DynCall {
                    caller: fid,
                    loc,
                    kind,
                    op_node,
                    const_target,
                    args: args.to_vec(),
                    dsts: dsts.to_vec(),
                });
            }
        }
    }

    /// Installs parameter/return bindings for a static call.
    fn install_static(
        &mut self,
        caller: FuncId,
        callee: FuncId,
        args: &[Operand],
        dsts: &[Var],
        skip_params: usize,
    ) {
        let callee_fn = self.module.func(callee);
        for (i, a) in args.iter().enumerate() {
            if let Some(&param) = callee_fn.params.get(skip_params + i) {
                self.flow(caller, a, Node::Var(callee, param));
            }
        }
        for (i, &d) in dsts.iter().enumerate() {
            self.add_edge(Node::Ret(callee, i as u32), Node::Var(caller, d));
        }
    }

    /// Installs bindings for a dynamic call resolved to `callee`.
    fn install_binding(&mut self, dyn_idx: usize, callee: FuncId, via_closure: bool) {
        let dc = &self.dyn_calls[dyn_idx];
        let (caller, args, dsts) = (dc.caller, dc.args.clone(), dc.dsts.clone());
        let skip = if via_closure {
            self.module.func(callee).n_captures
        } else {
            0
        };
        self.install_static(caller, callee, &args, &dsts, skip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_source;

    fn analyze_src(src: &str) -> (Module, Analysis) {
        let m = lower_source(src).expect("lowering");
        let a = analyze(&m);
        (m, a)
    }

    /// Finds the first instruction in `func` matching the predicate.
    fn find_instr<'m>(
        m: &'m Module,
        func: &str,
        pred: impl Fn(&Instr) -> bool,
    ) -> (Loc, &'m Instr) {
        let f = m.func_by_name(func).unwrap();
        for (bid, block) in f.iter_blocks() {
            for (idx, instr) in block.instrs.iter().enumerate() {
                if pred(instr) {
                    return (
                        Loc {
                            func: f.id,
                            block: bid,
                            idx: idx as u32,
                        },
                        instr,
                    );
                }
            }
        }
        panic!("no matching instruction in {func}");
    }

    #[test]
    fn channel_flows_through_call() {
        let (m, a) = analyze_src(
            "func worker(ch chan int) {\n ch <- 1\n}\nfunc main() {\n ch := make(chan int)\n go worker(ch)\n <-ch\n}",
        );
        let (make_loc, _) = find_instr(&m, "main", |i| matches!(i, Instr::MakeChan { .. }));
        let worker = m.func_by_name("worker").unwrap();
        let pts: Vec<AbstractObject> = a.points_to(worker.id, worker.params[0]).copied().collect();
        assert_eq!(pts, vec![AbstractObject::Chan(make_loc)]);
    }

    #[test]
    fn closure_capture_aliases_parent_channel() {
        let (m, a) = analyze_src(
            "func main() {\n ch := make(chan int)\n go func() {\n  ch <- 1\n }()\n <-ch\n}",
        );
        let closure = m.funcs.iter().find(|f| f.is_closure).unwrap();
        let main = m.func_by_name("main").unwrap();
        let send = closure
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .find(|i| matches!(i, Instr::Send { .. }))
            .unwrap();
        let Instr::Send { chan, .. } = send else {
            unreachable!()
        };
        let (recv_loc, recv) = find_instr(&m, "main", |i| matches!(i, Instr::Recv { .. }));
        let _ = recv_loc;
        let Instr::Recv { chan: rchan, .. } = recv else {
            unreachable!()
        };
        assert!(a.may_alias(closure.id, chan, main.id, rchan));
    }

    #[test]
    fn channel_through_channel_is_untracked() {
        // The paper's alias FP source: a channel received from another
        // channel has an unknown points-to set.
        let (m, a) = analyze_src(
            "func main() {\n carrier := make(chan chan int)\n inner := make(chan int)\n carrier <- inner\n got := <-carrier\n <-got\n}",
        );
        let main = m.func_by_name("main").unwrap();
        // `got` is the Recv destination; its points-to set must be empty.
        let (_, recv) = find_instr(&m, "main", |i| {
            matches!(i, Instr::Recv { dst: Some(_), .. })
        });
        let Instr::Recv { dst: Some(got), .. } = recv else {
            unreachable!()
        };
        assert_eq!(a.points_to(main.id, *got).count(), 0);
    }

    #[test]
    fn slice_element_is_untracked() {
        let (m, a) =
            analyze_src("func main() {\n chans := []chan int{}\n ch := chans[0]\n <-ch\n}");
        let main = m.func_by_name("main").unwrap();
        let (_, load) = find_instr(&m, "main", |i| matches!(i, Instr::IndexLoad { .. }));
        let Instr::IndexLoad { dst, .. } = load else {
            unreachable!()
        };
        assert_eq!(a.points_to(main.id, *dst).count(), 0);
    }

    #[test]
    fn struct_field_is_tracked() {
        let (m, a) = analyze_src(
            "type Box struct {\n ch chan int\n}\nfunc main() {\n b := Box{ch: make(chan int)}\n c := b.ch\n <-c\n}",
        );
        let main = m.func_by_name("main").unwrap();
        let (make_loc, _) = find_instr(&m, "main", |i| matches!(i, Instr::MakeChan { .. }));
        let c = main
            .var_names
            .iter()
            .position(|n| n == "c")
            .map(|i| Var(i as u32))
            .unwrap();
        let pts: Vec<AbstractObject> = a.points_to(main.id, c).copied().collect();
        assert_eq!(pts, vec![AbstractObject::Chan(make_loc)]);
    }

    #[test]
    fn go_call_site_resolves_closure_precisely() {
        let (m, a) = analyze_src(
            "func main() {\n ch := make(chan int)\n go func() {\n  ch <- 1\n }()\n <-ch\n}",
        );
        let main = m.func_by_name("main").unwrap();
        let closure = m.funcs.iter().find(|f| f.is_closure).unwrap();
        let go_sites: Vec<&CallSite> = a
            .calls_in(main.id)
            .filter(|cs| matches!(cs.kind, CallKind::Go))
            .collect();
        assert_eq!(go_sites.len(), 1);
        assert_eq!(go_sites[0].targets, vec![closure.id]);
        assert!(!go_sites[0].ambiguous);
    }

    #[test]
    fn reachability_follows_call_chain() {
        let (m, a) = analyze_src(
            "func leaf() {\n}\nfunc mid() {\n leaf()\n}\nfunc main() {\n mid()\n}\nfunc unrelated() {\n}",
        );
        let main = m.func_by_name("main").unwrap().id;
        let reach = a.reachable_from(main);
        assert!(reach.contains(&m.func_by_name("mid").unwrap().id));
        assert!(reach.contains(&m.func_by_name("leaf").unwrap().id));
        assert!(!reach.contains(&m.func_by_name("unrelated").unwrap().id));
    }

    #[test]
    fn globals_propagate() {
        let (m, a) = analyze_src(
            "var shared chan int\nfunc setup() {\n shared = make(chan int)\n}\nfunc use() {\n <-shared\n}",
        );
        let use_fn = m.func_by_name("use").unwrap();
        let (_, recv) = find_instr(&m, "use", |i| matches!(i, Instr::Recv { .. }));
        let Instr::Recv { chan, .. } = recv else {
            unreachable!()
        };
        let pts = a.operand_points_to(use_fn.id, chan);
        assert_eq!(pts.len(), 1, "global channel must be tracked");
        assert!(matches!(pts[0], AbstractObject::Chan(_)));
    }

    #[test]
    fn function_value_parameter_resolves() {
        let (m, a) = analyze_src(
            "func run(f func()) {\n f()\n}\nfunc task() {\n}\nfunc main() {\n run(task)\n}",
        );
        let run = m.func_by_name("run").unwrap();
        let task = m.func_by_name("task").unwrap();
        let dyn_sites: Vec<&CallSite> = a
            .calls_in(run.id)
            .filter(|cs| cs.external.is_none())
            .collect();
        assert_eq!(dyn_sites.len(), 1);
        assert_eq!(dyn_sites[0].targets, vec![task.id]);
    }

    #[test]
    fn external_calls_are_recorded() {
        let (_, a) = analyze_src("func main() {\n Mystery()\n}");
        let ext: Vec<&CallSite> = a
            .call_sites
            .iter()
            .filter(|cs| cs.external.is_some())
            .collect();
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].external.as_deref(), Some("Mystery"));
    }
}
