//! Andersen-style points-to analysis with on-the-fly call-graph
//! construction — eager (whole-module) or demand-driven (per component).
//!
//! This replaces the `golang.org/x/tools/go/pointer` and `go/callgraph`
//! packages the original GCatch builds on. The analysis is flow- and
//! context-insensitive, field-sensitive per struct allocation site, and
//! resolves closures precisely through `MakeClosure` bindings.
//!
//! Two imprecisions of the original toolchain are reproduced *deliberately*,
//! because the paper's §5.2 false-positive census attributes 17 BMOC false
//! positives to them:
//!
//! * a channel **sent through another channel** is not tracked: `Recv`
//!   destinations get an empty points-to set, so the receiving side's
//!   operations cannot be matched to the sending side's channel;
//! * a channel **stored into a slice** and loaded back by index is not
//!   tracked: `IndexLoad` destinations get an empty points-to set.
//!
//! Dynamic calls whose operand has an empty points-to set fall back to
//! arity matching over all module functions (the CHA-style behavior of the
//! paper's call-graph package); call sites that end up with more than one
//! candidate are marked [`ambiguous`](CallSite::ambiguous), and GCatch
//! ignores their targets exactly as §5.1 of the paper describes.
//!
//! # Demand-driven mode
//!
//! [`AliasMode::Demand`] partitions the module into *reference components*:
//! the connected components of the syntactic reference graph over functions
//! and globals, where an edge joins two elements whenever a value could
//! flow between them (static call/go/defer, `MakeClosure` lifting, a
//! function-constant mention, or a global load/store). Every points-to
//! constraint the eager solver would install stays inside one component —
//! flows between functions are themselves mediated by those same syntactic
//! edges — so solving a component in isolation yields exactly the eager
//! solution restricted to it. Components are solved lazily, at most once,
//! behind [`std::sync::OnceLock`]s, so parallel detector shards share
//! results; functions whose component is never demanded (no sync ops, no
//! dynamic calls — the bulk of a realistic corpus) are never solved at all.
//! Verdicts are identical in both modes by construction; only the work
//! differs.

use crate::intern::Symbol;
use crate::ir::*;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// An abstract heap object, identified by its creation site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AbstractObject {
    /// A channel created by `make(chan ..)` at the given site.
    Chan(Loc),
    /// A mutex created at the given site.
    Mutex(Loc),
    /// A wait group created at the given site.
    WaitGroup(Loc),
    /// A condition variable created at the given site.
    Cond(Loc),
    /// A struct object allocated at the given site.
    Struct(Loc),
    /// A slice allocated at the given site.
    Slice(Loc),
    /// A closure created at the given site.
    Closure {
        /// The lifted function.
        func: FuncId,
        /// The `MakeClosure` site.
        site: Loc,
    },
    /// A plain function constant.
    Func(FuncId),
}

impl AbstractObject {
    /// The target function, if this object is callable.
    pub fn callee(&self) -> Option<FuncId> {
        match self {
            AbstractObject::Closure { func, .. } => Some(*func),
            AbstractObject::Func(func) => Some(*func),
            _ => None,
        }
    }
}

/// A node in the points-to constraint graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Node {
    /// A function-local register.
    Var(FuncId, Var),
    /// A module global.
    Global(GlobalId),
    /// A field of a struct allocation site (field names are interned, so
    /// the symbol itself is the field key — no per-solver intern table).
    Field(Loc, Symbol),
    /// The i-th return value of a function.
    Ret(FuncId, u32),
}

/// What kind of invocation a call site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// Ordinary call.
    Call,
    /// `go` spawn.
    Go,
    /// `defer`red call.
    Defer,
}

/// A resolved call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The calling function.
    pub caller: FuncId,
    /// Location of the call instruction.
    pub loc: Loc,
    /// Call, go, or defer.
    pub kind: CallKind,
    /// Candidate callees.
    pub targets: Vec<FuncId>,
    /// External callee name, when the target is not in the module.
    pub external: Option<Symbol>,
    /// True when the targets came from arity matching with more than one
    /// candidate; GCatch ignores such sites (paper §5.1).
    pub ambiguous: bool,
}

/// How the points-to analysis schedules its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AliasMode {
    /// Solve the whole module up front (the original behavior).
    Eager,
    /// Partition into reference components and solve each lazily, on first
    /// demand. Identical results; work proportional to what the detectors
    /// actually query.
    #[default]
    Demand,
}

impl AliasMode {
    /// Parses a CLI value.
    pub fn parse(s: &str) -> Option<AliasMode> {
        match s {
            "eager" => Some(AliasMode::Eager),
            "demand" => Some(AliasMode::Demand),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            AliasMode::Eager => "eager",
            AliasMode::Demand => "demand",
        }
    }
}

/// Work counters for the alias layer (surfaced as telemetry by the
/// detector session).
#[derive(Debug, Clone, Copy, Default)]
pub struct AliasStats {
    /// Points-to solves performed: one per solved component in demand
    /// mode, exactly 1 in eager mode.
    pub queries_solved: u64,
    /// Functions whose component was never demanded, and were therefore
    /// never solved (always 0 in eager mode).
    pub functions_skipped: u64,
}

/// Fully solved points-to + call-graph state (eager mode, and the shape a
/// demand component solve produces for its slice).
#[derive(Debug)]
struct Solved {
    /// Sorted points-to sets per register (sorted so iteration order never
    /// depends on hash state).
    points_to: HashMap<(FuncId, Var), Vec<AbstractObject>>,
    /// All call sites, sorted by location.
    call_sites: Vec<CallSite>,
    /// callee → call-site indices.
    callers_of: HashMap<FuncId, Vec<usize>>,
    /// caller → call-site indices.
    calls_in: HashMap<FuncId, Vec<usize>>,
}

/// One reference component of the demand engine.
#[derive(Debug)]
struct Component {
    /// Member functions, ascending.
    funcs: Vec<FuncId>,
    /// Whether any member has a dynamic call (such components must be
    /// solved before the call graph is complete).
    has_dyn_calls: bool,
}

/// The solved slice of one component.
#[derive(Debug)]
struct CompSolved {
    /// Sorted points-to sets for the component's registers.
    points_to: HashMap<(FuncId, Var), Vec<AbstractObject>>,
    /// Dynamic call sites per member function, sorted by location.
    dyn_sites_in: HashMap<FuncId, Vec<CallSite>>,
}

/// The merged whole-module call-site view (built on first demand of
/// [`Analysis::call_sites`] / [`Analysis::callers_of`]).
#[derive(Debug)]
struct FullSites {
    sites: Vec<CallSite>,
    callers_of: HashMap<FuncId, Vec<usize>>,
}

/// Demand-driven engine state.
#[derive(Debug)]
struct DemandState {
    /// Component index per function.
    comp_of_func: Vec<u32>,
    /// All components.
    comps: Vec<Component>,
    /// Lazily solved component slices (OnceLock: solved at most once, then
    /// shared by every detector shard).
    solved: Vec<OnceLock<CompSolved>>,
    /// Syntactic (static + external) call sites per function, sorted by
    /// location; materialized in one cheap scan, no points-to needed.
    static_sites_in: HashMap<FuncId, Vec<CallSite>>,
    /// Merged whole-module call-site view, built only if demanded.
    full: OnceLock<FullSites>,
    /// Number of component solves performed.
    solves: AtomicU64,
}

/// Mode-specific state behind [`Analysis`].
#[derive(Debug)]
enum ModeState {
    Eager(Solved),
    Demand(DemandState),
}

/// Results of the combined points-to / call-graph analysis.
///
/// Borrows the module it analyzed: the demand engine lowers components
/// lazily from the IR on first query.
#[derive(Debug)]
pub struct Analysis<'m> {
    module: &'m Module,
    mode: ModeState,
    /// Memoized transitive-reachability sets (queried heavily by the
    /// detectors and GFix's dispatcher). Lock-guarded so a shared `Analysis`
    /// can serve the parallel per-channel detector workers.
    reach_cache: RwLock<HashMap<FuncId, Arc<HashSet<FuncId>>>>,
    /// Reverse call-graph adjacency (callee → callers), built once on the
    /// first [`Analysis::reaching`] query from the same unambiguous edges
    /// [`Analysis::reachable_from`] walks forward.
    rev_adj: OnceLock<HashMap<FuncId, Vec<FuncId>>>,
    /// Memoized reverse-reachability sets (who can reach a target).
    reaching_cache: RwLock<HashMap<FuncId, Arc<HashSet<FuncId>>>>,
}

/// Iterator over a function's call sites, unified across both engine
/// modes.
pub struct CallSiteIter<'a> {
    inner: CallSiteIterInner<'a>,
}

enum CallSiteIterInner<'a> {
    /// Indices into a shared site vector (eager engine, full demand view).
    Indexed {
        sites: &'a [CallSite],
        idx: std::slice::Iter<'a, usize>,
    },
    /// Two loc-sorted slices merged on the fly (demand engine: syntactic
    /// sites + the component's dynamic sites).
    Merge {
        a: &'a [CallSite],
        b: &'a [CallSite],
        i: usize,
        j: usize,
    },
}

impl<'a> Iterator for CallSiteIter<'a> {
    type Item = &'a CallSite;
    fn next(&mut self) -> Option<&'a CallSite> {
        match &mut self.inner {
            CallSiteIterInner::Indexed { sites, idx } => idx.next().map(|&i| &sites[i]),
            CallSiteIterInner::Merge { a, b, i, j } => {
                let take_a = match (a.get(*i), b.get(*j)) {
                    (Some(x), Some(y)) => x.loc <= y.loc,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => return None,
                };
                if take_a {
                    *i += 1;
                    Some(&a[*i - 1])
                } else {
                    *j += 1;
                    Some(&b[*j - 1])
                }
            }
        }
    }
}

const NO_SITES: &[CallSite] = &[];
const NO_INDICES: &[usize] = &[];

impl<'m> Analysis<'m> {
    /// The points-to set of a register (sorted, deterministic order).
    pub fn points_to(&self, func: FuncId, var: Var) -> impl Iterator<Item = &AbstractObject> {
        let set: Option<&Vec<AbstractObject>> = match &self.mode {
            ModeState::Eager(s) => s.points_to.get(&(func, var)),
            ModeState::Demand(d) => d
                .comp_solved(self.module, d.comp_of_func[func.0 as usize] as usize)
                .points_to
                .get(&(func, var)),
        };
        set.into_iter().flatten()
    }

    /// The points-to set of an operand (constants resolve to function
    /// objects or nothing).
    pub fn operand_points_to(&self, func: FuncId, op: &Operand) -> Vec<AbstractObject> {
        match op {
            Operand::Var(v) => self.points_to(func, *v).copied().collect(),
            Operand::Const(ConstVal::Func(f)) => vec![AbstractObject::Func(*f)],
            Operand::Const(_) => vec![],
        }
    }

    /// Whether two operands may alias (share at least one abstract object).
    pub fn may_alias(&self, f1: FuncId, op1: &Operand, f2: FuncId, op2: &Operand) -> bool {
        let a = self.operand_points_to(f1, op1);
        if a.is_empty() {
            return false;
        }
        let b = self.operand_points_to(f2, op2);
        a.iter().any(|o| b.contains(o))
    }

    /// All call sites in the module, in deterministic (location) order.
    /// In demand mode this forces the components that contain dynamic
    /// calls (and only those) to be solved.
    pub fn call_sites(&self) -> &[CallSite] {
        match &self.mode {
            ModeState::Eager(s) => &s.call_sites,
            ModeState::Demand(d) => &d.full(self.module).sites,
        }
    }

    /// Call sites inside `func`. In demand mode this solves `func`'s
    /// component only if the component contains dynamic calls; purely
    /// static callers answer from the syntactic site table.
    pub fn calls_in(&self, func: FuncId) -> CallSiteIter<'_> {
        match &self.mode {
            ModeState::Eager(s) => CallSiteIter {
                inner: CallSiteIterInner::Indexed {
                    sites: &s.call_sites,
                    idx: s
                        .calls_in
                        .get(&func)
                        .map_or(NO_INDICES, Vec::as_slice)
                        .iter(),
                },
            },
            ModeState::Demand(d) => {
                let statics = d
                    .static_sites_in
                    .get(&func)
                    .map(Vec::as_slice)
                    .unwrap_or(NO_SITES);
                let comp = d.comp_of_func[func.0 as usize] as usize;
                let dyns = if d.comps[comp].has_dyn_calls {
                    d.comp_solved(self.module, comp)
                        .dyn_sites_in
                        .get(&func)
                        .map(Vec::as_slice)
                        .unwrap_or(NO_SITES)
                } else {
                    NO_SITES
                };
                CallSiteIter {
                    inner: CallSiteIterInner::Merge {
                        a: statics,
                        b: dyns,
                        i: 0,
                        j: 0,
                    },
                }
            }
        }
    }

    /// Call sites that may target `func` (whole-module question: demand
    /// mode builds the merged view, solving dynamic-call components).
    pub fn callers_of(&self, func: FuncId) -> CallSiteIter<'_> {
        match &self.mode {
            ModeState::Eager(s) => CallSiteIter {
                inner: CallSiteIterInner::Indexed {
                    sites: &s.call_sites,
                    idx: s
                        .callers_of
                        .get(&func)
                        .map_or(NO_INDICES, Vec::as_slice)
                        .iter(),
                },
            },
            ModeState::Demand(d) => {
                let full = d.full(self.module);
                CallSiteIter {
                    inner: CallSiteIterInner::Indexed {
                        sites: &full.sites,
                        idx: full
                            .callers_of
                            .get(&func)
                            .map_or(NO_INDICES, Vec::as_slice)
                            .iter(),
                    },
                }
            }
        }
    }

    /// Functions transitively reachable from `root` through unambiguous
    /// call/go/defer edges (including `root`). Memoized.
    pub fn reachable_from(&self, root: FuncId) -> Arc<HashSet<FuncId>> {
        if let Some(cached) = self.reach_cache.read().expect("reach cache").get(&root) {
            return cached.clone();
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(root);
        queue.push_back(root);
        while let Some(f) = queue.pop_front() {
            for cs in self.calls_in(f) {
                if cs.ambiguous {
                    continue;
                }
                for &t in &cs.targets {
                    if seen.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
        }
        let rc = Arc::new(seen);
        self.reach_cache
            .write()
            .expect("reach cache")
            .insert(root, rc.clone());
        rc
    }

    /// Functions that can transitively reach `target` through the same
    /// unambiguous call/go/defer edges [`Analysis::reachable_from`] walks
    /// (including `target`). Memoized; the inverse adjacency is built once
    /// on first use, so `f ∈ reaching(t) ⟺ t ∈ reachable_from(f)` at a
    /// per-query cost proportional to the caller slice instead of the
    /// whole module.
    pub fn reaching(&self, target: FuncId) -> Arc<HashSet<FuncId>> {
        if let Some(cached) = self
            .reaching_cache
            .read()
            .expect("reaching cache")
            .get(&target)
        {
            return cached.clone();
        }
        let rev = self.rev_adj.get_or_init(|| {
            let mut rev: HashMap<FuncId, Vec<FuncId>> = HashMap::new();
            for f in &self.module.funcs {
                for cs in self.calls_in(f.id) {
                    if cs.ambiguous {
                        continue;
                    }
                    for &t in &cs.targets {
                        rev.entry(t).or_default().push(f.id);
                    }
                }
            }
            rev
        });
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(target);
        queue.push_back(target);
        while let Some(f) = queue.pop_front() {
            if let Some(callers) = rev.get(&f) {
                for &c in callers {
                    if seen.insert(c) {
                        queue.push_back(c);
                    }
                }
            }
        }
        let rc = Arc::new(seen);
        self.reaching_cache
            .write()
            .expect("reaching cache")
            .insert(target, rc.clone());
        rc
    }

    /// Work counters for this analysis so far.
    pub fn alias_stats(&self) -> AliasStats {
        match &self.mode {
            ModeState::Eager(_) => AliasStats {
                queries_solved: 1,
                functions_skipped: 0,
            },
            ModeState::Demand(d) => {
                let skipped: u64 = d
                    .comps
                    .iter()
                    .zip(&d.solved)
                    .filter(|(_, s)| s.get().is_none())
                    .map(|(c, _)| c.funcs.len() as u64)
                    .sum();
                AliasStats {
                    queries_solved: d.solves.load(Ordering::Relaxed),
                    functions_skipped: skipped,
                }
            }
        }
    }
}

/// Runs the analysis over a module in the default (demand-driven) mode.
pub fn analyze(module: &Module) -> Analysis<'_> {
    analyze_with_mode(module, AliasMode::default())
}

/// Runs the analysis over a module with an explicit scheduling mode. Both
/// modes produce identical answers to every query; they differ only in
/// when (and whether) each function's constraints are solved.
pub fn analyze_with_mode(module: &Module, mode: AliasMode) -> Analysis<'_> {
    let mode = match mode {
        AliasMode::Eager => ModeState::Eager(Solver::new(module).run(None)),
        AliasMode::Demand => ModeState::Demand(DemandState::build(module)),
    };
    Analysis {
        module,
        mode,
        reach_cache: RwLock::new(HashMap::new()),
        rev_adj: OnceLock::new(),
        reaching_cache: RwLock::new(HashMap::new()),
    }
}

/// Union-find over functions + globals (path-halving, union by index).
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// Calls `visit` for every function constant mentioned by an operand.
fn func_consts_in_operand(op: &Operand, visit: &mut impl FnMut(FuncId)) {
    if let Operand::Const(ConstVal::Func(f)) = op {
        visit(*f);
    }
}

/// Calls `visit` for every function constant mentioned by an instruction.
fn func_consts_in_instr(instr: &Instr, visit: &mut impl FnMut(FuncId)) {
    let mut each = |op: &Operand| func_consts_in_operand(op, visit);
    match instr {
        Instr::Const { value, .. } => {
            if let ConstVal::Func(f) = value {
                visit(*f);
            }
        }
        Instr::Copy { src, .. } => each(src),
        Instr::UnOp { src, .. } => each(src),
        Instr::BinOp { l, r, .. } => {
            each(l);
            each(r);
        }
        Instr::MakeChan { cap, .. } => each(cap),
        Instr::MakeStruct { fields, .. } => fields.iter().for_each(|(_, op)| each(op)),
        Instr::MakeSlice { elems, .. } => elems.iter().for_each(&mut each),
        Instr::MakeClosure { bound, .. } => bound.iter().for_each(&mut each),
        Instr::Len { obj, .. } => each(obj),
        Instr::IndexLoad { obj, index, .. } => {
            each(obj);
            each(index);
        }
        Instr::IndexStore { obj, index, value } => {
            each(obj);
            each(index);
            each(value);
        }
        Instr::FieldLoad { obj, .. } => each(obj),
        Instr::FieldStore { obj, value, .. } => {
            each(obj);
            each(value);
        }
        Instr::StoreGlobal { src, .. } => each(src),
        Instr::Send { chan, value } => {
            each(chan);
            each(value);
        }
        Instr::Recv { chan, .. } | Instr::Close { chan } => each(chan),
        Instr::Lock { mutex, .. } | Instr::Unlock { mutex, .. } => each(mutex),
        Instr::WgAdd { wg, n } => {
            each(wg);
            each(n);
        }
        Instr::WgDone { wg } | Instr::WgWait { wg } => each(wg),
        Instr::CondWait { cond } | Instr::CondSignal { cond } | Instr::CondBroadcast { cond } => {
            each(cond)
        }
        Instr::Go { func, args } | Instr::DeferCall { func, args } => {
            if let FuncRef::Dynamic(op) = func {
                each(op);
            }
            args.iter().for_each(&mut each);
        }
        Instr::Call { func, args, .. } => {
            if let FuncRef::Dynamic(op) = func {
                each(op);
            }
            args.iter().for_each(&mut each);
        }
        Instr::Sleep { n } => each(n),
        Instr::Panic { value } => each(value),
        Instr::Print { args } => args.iter().for_each(&mut each),
        Instr::MakeMutex { .. }
        | Instr::MakeWaitGroup { .. }
        | Instr::MakeCond { .. }
        | Instr::LoadGlobal { .. }
        | Instr::Fatal
        | Instr::Nop => {}
    }
}

/// Calls `visit` for every function constant mentioned by a terminator.
fn func_consts_in_term(term: &Terminator, visit: &mut impl FnMut(FuncId)) {
    let mut each = |op: &Operand| func_consts_in_operand(op, visit);
    match term {
        Terminator::Jump(_) | Terminator::Unreachable => {}
        Terminator::Branch { cond, .. } => each(cond),
        Terminator::Return(vals) => vals.iter().for_each(&mut each),
        Terminator::Select { cases, .. } => {
            for c in cases {
                match &c.op {
                    SelectOp::Send { chan, value } => {
                        each(chan);
                        each(value);
                    }
                    SelectOp::Recv { chan, .. } => each(chan),
                }
            }
        }
    }
}

impl DemandState {
    /// One cheap syntactic pass over the module: build the reference
    /// components, materialize static/external call sites, and note which
    /// components contain dynamic calls. No points-to constraints are
    /// solved here.
    fn build(module: &Module) -> DemandState {
        let nf = module.funcs.len();
        let ng = module.globals.len();
        let mut uf = UnionFind::new(nf + ng);
        let mut static_sites_in: HashMap<FuncId, Vec<CallSite>> = HashMap::new();
        let mut func_has_dyn = vec![false; nf];

        for function in &module.funcs {
            let fid = function.id;
            for (bid, block) in function.iter_blocks() {
                for (idx, instr) in block.instrs.iter().enumerate() {
                    let loc = Loc {
                        func: fid,
                        block: bid,
                        idx: idx as u32,
                    };
                    match instr {
                        Instr::Call { func, .. }
                        | Instr::Go { func, .. }
                        | Instr::DeferCall { func, .. } => {
                            let kind = match instr {
                                Instr::Go { .. } => CallKind::Go,
                                Instr::DeferCall { .. } => CallKind::Defer,
                                _ => CallKind::Call,
                            };
                            match func {
                                FuncRef::Static(t) => {
                                    uf.union(fid.0, t.0);
                                    static_sites_in.entry(fid).or_default().push(CallSite {
                                        caller: fid,
                                        loc,
                                        kind,
                                        targets: vec![*t],
                                        external: None,
                                        ambiguous: false,
                                    });
                                }
                                FuncRef::External(name) => {
                                    static_sites_in.entry(fid).or_default().push(CallSite {
                                        caller: fid,
                                        loc,
                                        kind,
                                        targets: vec![],
                                        external: Some(*name),
                                        ambiguous: false,
                                    });
                                }
                                FuncRef::Dynamic(_) => func_has_dyn[fid.0 as usize] = true,
                            }
                        }
                        Instr::MakeClosure { func, .. } => uf.union(fid.0, func.0),
                        Instr::LoadGlobal { global, .. } | Instr::StoreGlobal { global, .. } => {
                            uf.union(fid.0, nf as u32 + global.0)
                        }
                        _ => {}
                    }
                    func_consts_in_instr(instr, &mut |t| uf.union(fid.0, t.0));
                }
                func_consts_in_term(&block.term, &mut |t| uf.union(fid.0, t.0));
            }
        }

        // Densify component ids (function members only; globals ride along
        // through the union-find but need no per-component bookkeeping).
        let mut comp_ids: HashMap<u32, u32> = HashMap::new();
        let mut comps: Vec<Component> = Vec::new();
        let mut comp_of_func = vec![0u32; nf];
        for f in 0..nf as u32 {
            let root = uf.find(f);
            let comp = *comp_ids.entry(root).or_insert_with(|| {
                comps.push(Component {
                    funcs: Vec::new(),
                    has_dyn_calls: false,
                });
                comps.len() as u32 - 1
            });
            comp_of_func[f as usize] = comp;
            comps[comp as usize].funcs.push(FuncId(f));
            if func_has_dyn[f as usize] {
                comps[comp as usize].has_dyn_calls = true;
            }
        }

        let solved = (0..comps.len()).map(|_| OnceLock::new()).collect();
        DemandState {
            comp_of_func,
            comps,
            solved,
            static_sites_in,
            full: OnceLock::new(),
            solves: AtomicU64::new(0),
        }
    }

    /// The solved slice of a component, computed on first demand.
    fn comp_solved(&self, module: &Module, comp: usize) -> &CompSolved {
        self.solved[comp].get_or_init(|| {
            self.solves.fetch_add(1, Ordering::Relaxed);
            let filter: HashSet<FuncId> = self.comps[comp].funcs.iter().copied().collect();
            let solved = Solver::new(module).run(Some(&filter));
            // Keep only the dynamic call sites: static/external sites are
            // already materialized syntactically for every function.
            let mut dyn_sites_in: HashMap<FuncId, Vec<CallSite>> = HashMap::new();
            for cs in solved.call_sites {
                if matches!(
                    module.func(cs.caller).instr_at(cs.loc),
                    Some(
                        Instr::Call {
                            func: FuncRef::Dynamic(_),
                            ..
                        } | Instr::Go {
                            func: FuncRef::Dynamic(_),
                            ..
                        } | Instr::DeferCall {
                            func: FuncRef::Dynamic(_),
                            ..
                        }
                    )
                ) {
                    dyn_sites_in.entry(cs.caller).or_default().push(cs);
                }
            }
            for sites in dyn_sites_in.values_mut() {
                sites.sort_by_key(|cs| cs.loc);
            }
            CompSolved {
                points_to: solved.points_to,
                dyn_sites_in,
            }
        })
    }

    /// The merged whole-module call-site view; solves every component that
    /// contains dynamic calls (and only those).
    fn full(&self, module: &Module) -> &FullSites {
        self.full.get_or_init(|| {
            let mut sites: Vec<CallSite> = Vec::new();
            for f in &module.funcs {
                if let Some(s) = self.static_sites_in.get(&f.id) {
                    sites.extend(s.iter().cloned());
                }
            }
            for comp in 0..self.comps.len() {
                if self.comps[comp].has_dyn_calls {
                    let cs = self.comp_solved(module, comp);
                    for per_func in cs.dyn_sites_in.values() {
                        sites.extend(per_func.iter().cloned());
                    }
                }
            }
            sites.sort_by_key(|cs| cs.loc);
            let mut callers_of: HashMap<FuncId, Vec<usize>> = HashMap::new();
            for (i, cs) in sites.iter().enumerate() {
                for &t in &cs.targets {
                    callers_of.entry(t).or_default().push(i);
                }
            }
            FullSites { sites, callers_of }
        })
    }
}

struct Solver<'m> {
    module: &'m Module,
    pts: HashMap<Node, HashSet<AbstractObject>>,
    /// Simple inclusion edges src → dsts.
    copy_edges: HashMap<Node, Vec<Node>>,
    /// Worklist of nodes whose sets grew.
    worklist: VecDeque<Node>,
    /// Dynamic call sites awaiting resolution: (caller, loc, kind, operand node, args, dsts).
    dyn_calls: Vec<DynCall>,
    /// Already-installed (dyn-call-index, callee) bindings.
    installed: HashSet<(usize, FuncId)>,
    /// Field loads awaiting struct objects: (base node, field, destination).
    deferred_field_loads: Vec<(Node, Symbol, Node)>,
    /// Field stores awaiting struct objects: (base node, field, value, fn).
    deferred_field_stores: Vec<(Node, Symbol, Operand, FuncId)>,
    call_sites: Vec<CallSite>,
}

struct DynCall {
    caller: FuncId,
    loc: Loc,
    kind: CallKind,
    op_node: Option<Node>,
    const_target: Option<FuncId>,
    args: Vec<Operand>,
    dsts: Vec<Var>,
}

impl<'m> Solver<'m> {
    fn new(module: &'m Module) -> Solver<'m> {
        Solver {
            module,
            pts: HashMap::new(),
            copy_edges: HashMap::new(),
            worklist: VecDeque::new(),
            dyn_calls: Vec::new(),
            installed: HashSet::new(),
            deferred_field_loads: Vec::new(),
            deferred_field_stores: Vec::new(),
            call_sites: Vec::new(),
        }
    }

    fn add_obj(&mut self, node: Node, obj: AbstractObject) {
        if self.pts.entry(node).or_default().insert(obj) {
            self.worklist.push_back(node);
        }
    }

    fn add_edge(&mut self, src: Node, dst: Node) {
        let edges = self.copy_edges.entry(src).or_default();
        if !edges.contains(&dst) {
            edges.push(dst);
            // Propagate current contents immediately.
            let objs: Vec<AbstractObject> =
                self.pts.get(&src).into_iter().flatten().copied().collect();
            for o in objs {
                self.add_obj(dst, o);
            }
        }
    }

    fn operand_node(&mut self, func: FuncId, op: &Operand) -> Option<Node> {
        match op {
            Operand::Var(v) => Some(Node::Var(func, *v)),
            Operand::Const(_) => None,
        }
    }

    /// Links an operand into a destination node (constant functions become
    /// direct objects).
    fn flow(&mut self, func: FuncId, src: &Operand, dst: Node) {
        match src {
            Operand::Var(v) => self.add_edge(Node::Var(func, *v), dst),
            Operand::Const(ConstVal::Func(f)) => self.add_obj(dst, AbstractObject::Func(*f)),
            Operand::Const(_) => {}
        }
    }

    /// Seeds and solves the constraint system. With `filter = None` every
    /// function is seeded (eager whole-module run); with a filter only the
    /// given functions are — the demand engine's per-component slice, whose
    /// answers coincide with the eager run's answers for those functions
    /// because constraint edges never cross reference components.
    fn run(mut self, filter: Option<&HashSet<FuncId>>) -> Solved {
        // Phase 1: seed constraints from every (selected) instruction.
        for function in &self.module.funcs {
            let fid = function.id;
            if let Some(keep) = filter {
                if !keep.contains(&fid) {
                    continue;
                }
            }
            for (bid, block) in function.iter_blocks() {
                for (idx, instr) in block.instrs.iter().enumerate() {
                    let loc = Loc {
                        func: fid,
                        block: bid,
                        idx: idx as u32,
                    };
                    self.seed_instr(fid, loc, instr);
                }
                // Select terminators bind received values — which we do not
                // track (channel-through-channel imprecision), so nothing to
                // seed for them.
                if let Terminator::Return(vals) = &block.term {
                    for (i, v) in vals.iter().enumerate() {
                        self.flow(fid, &v.clone(), Node::Ret(fid, i as u32));
                    }
                }
            }
        }

        // Phase 2: fixpoint — propagate sets and resolve dynamic calls.
        loop {
            while let Some(node) = self.worklist.pop_front() {
                let objs: Vec<AbstractObject> =
                    self.pts.get(&node).into_iter().flatten().copied().collect();
                let dsts = self.copy_edges.get(&node).cloned().unwrap_or_default();
                for dst in dsts {
                    for &o in &objs {
                        self.add_obj(dst, o);
                    }
                }
            }
            // Re-evaluate field constraints against the current struct sets
            // (add_edge/flow are idempotent, so this is safe to repeat).
            for i in 0..self.deferred_field_loads.len() {
                let (base, f, dst) = self.deferred_field_loads[i];
                let structs: Vec<Loc> = self
                    .pts
                    .get(&base)
                    .into_iter()
                    .flatten()
                    .filter_map(|o| match o {
                        AbstractObject::Struct(loc) => Some(*loc),
                        _ => None,
                    })
                    .collect();
                for s in structs {
                    self.add_edge(Node::Field(s, f), dst);
                }
            }
            for i in 0..self.deferred_field_stores.len() {
                let (base, f, value, fid) = self.deferred_field_stores[i].clone();
                let structs: Vec<Loc> = self
                    .pts
                    .get(&base)
                    .into_iter()
                    .flatten()
                    .filter_map(|o| match o {
                        AbstractObject::Struct(loc) => Some(*loc),
                        _ => None,
                    })
                    .collect();
                for s in structs {
                    self.flow(fid, &value, Node::Field(s, f));
                }
            }
            // Resolve dynamic calls with newly discovered callees.
            let mut changed = false;
            for i in 0..self.dyn_calls.len() {
                let (op_node, const_target) =
                    (self.dyn_calls[i].op_node, self.dyn_calls[i].const_target);
                let mut callees: Vec<(FuncId, bool)> = Vec::new();
                if let Some(f) = const_target {
                    callees.push((f, false));
                }
                if let Some(node) = op_node {
                    let objs: Vec<AbstractObject> =
                        self.pts.get(&node).into_iter().flatten().copied().collect();
                    for o in objs {
                        match o {
                            AbstractObject::Closure { func, .. } => callees.push((func, true)),
                            AbstractObject::Func(func) => callees.push((func, false)),
                            _ => {}
                        }
                    }
                }
                for (callee, via_closure) in callees {
                    if self.installed.insert((i, callee)) {
                        self.install_binding(i, callee, via_closure);
                        changed = true;
                    }
                }
            }
            if !changed && self.worklist.is_empty() {
                break;
            }
        }

        // Phase 3: materialize call sites.
        for i in 0..self.dyn_calls.len() {
            let dc = &self.dyn_calls[i];
            let mut targets: Vec<FuncId> = self
                .installed
                .iter()
                .filter(|(j, _)| *j == i)
                .map(|(_, f)| *f)
                .collect();
            targets.sort_unstable();
            targets.dedup();
            let mut ambiguous = false;
            if targets.is_empty() {
                // CHA-style arity fallback (paper's workaround source).
                // Whole-module metadata by design, even in a restricted
                // run: the fallback installs no bindings, so it cannot leak
                // points-to facts across components.
                let arity = dc.args.len();
                targets = self
                    .module
                    .funcs
                    .iter()
                    .filter(|f| f.params.len() - f.n_captures == arity && f.is_closure)
                    .map(|f| f.id)
                    .collect();
                ambiguous = targets.len() > 1;
            }
            self.call_sites.push(CallSite {
                caller: dc.caller,
                loc: dc.loc,
                kind: dc.kind,
                targets,
                external: None,
                ambiguous,
            });
        }

        let mut callers_of: HashMap<FuncId, Vec<usize>> = HashMap::new();
        let mut calls_in: HashMap<FuncId, Vec<usize>> = HashMap::new();
        self.call_sites.sort_by_key(|cs| cs.loc);
        for (i, cs) in self.call_sites.iter().enumerate() {
            calls_in.entry(cs.caller).or_default().push(i);
            for &t in &cs.targets {
                callers_of.entry(t).or_default().push(i);
            }
        }

        let mut points_to = HashMap::new();
        for (node, objs) in &self.pts {
            if let Node::Var(f, v) = node {
                let mut sorted: Vec<AbstractObject> = objs.iter().copied().collect();
                sorted.sort_unstable();
                points_to.insert((*f, *v), sorted);
            }
        }

        Solved {
            points_to,
            call_sites: self.call_sites,
            callers_of,
            calls_in,
        }
    }

    fn seed_instr(&mut self, fid: FuncId, loc: Loc, instr: &Instr) {
        match instr {
            Instr::MakeChan { dst, .. } => {
                self.add_obj(Node::Var(fid, *dst), AbstractObject::Chan(loc));
            }
            Instr::MakeMutex { dst, .. } => {
                self.add_obj(Node::Var(fid, *dst), AbstractObject::Mutex(loc));
            }
            Instr::MakeWaitGroup { dst } => {
                self.add_obj(Node::Var(fid, *dst), AbstractObject::WaitGroup(loc));
            }
            Instr::MakeCond { dst } => {
                self.add_obj(Node::Var(fid, *dst), AbstractObject::Cond(loc));
            }
            Instr::MakeStruct { dst, fields, .. } => {
                self.add_obj(Node::Var(fid, *dst), AbstractObject::Struct(loc));
                for (fname, op) in fields {
                    self.flow(fid, op, Node::Field(loc, *fname));
                }
            }
            Instr::MakeSlice { dst, .. } => {
                // Slice contents are deliberately untracked (paper §5.2).
                self.add_obj(Node::Var(fid, *dst), AbstractObject::Slice(loc));
            }
            Instr::MakeClosure { dst, func, bound } => {
                self.add_obj(
                    Node::Var(fid, *dst),
                    AbstractObject::Closure {
                        func: *func,
                        site: loc,
                    },
                );
                // Bind captures directly to the closure's leading params.
                let callee = self.module.func(*func);
                for (i, b) in bound.iter().enumerate() {
                    if let Some(&param) = callee.params.get(i) {
                        self.flow(fid, b, Node::Var(*func, param));
                    }
                }
            }
            Instr::Copy { dst, src } => {
                self.flow(fid, src, Node::Var(fid, *dst));
            }
            Instr::FieldLoad { dst, obj, field } => {
                // Complex constraint: for each struct object the base may
                // point to, the field node flows into the destination.
                // Re-evaluated every fixpoint round (idempotent).
                if let Some(base) = self.operand_node(fid, obj) {
                    self.deferred_field_loads
                        .push((base, *field, Node::Var(fid, *dst)));
                }
            }
            Instr::FieldStore { obj, field, value } => {
                if let Some(base) = self.operand_node(fid, obj) {
                    self.deferred_field_stores
                        .push((base, *field, value.clone(), fid));
                }
            }
            Instr::LoadGlobal { dst, global } => {
                self.add_edge(Node::Global(*global), Node::Var(fid, *dst));
            }
            Instr::StoreGlobal { global, src } => {
                self.flow(fid, src, Node::Global(*global));
            }
            Instr::Call { dsts, func, args } => {
                self.seed_call(fid, loc, CallKind::Call, func, args, dsts);
            }
            Instr::Go { func, args } => {
                self.seed_call(fid, loc, CallKind::Go, func, args, &[]);
            }
            Instr::DeferCall { func, args } => {
                self.seed_call(fid, loc, CallKind::Defer, func, args, &[]);
            }
            // Recv and IndexLoad destinations: intentionally no constraints
            // (reproduces the paper's alias-analysis false positives).
            _ => {}
        }
    }

    fn seed_call(
        &mut self,
        fid: FuncId,
        loc: Loc,
        kind: CallKind,
        func: &FuncRef,
        args: &[Operand],
        dsts: &[Var],
    ) {
        match func {
            FuncRef::Static(callee) => {
                self.install_static(fid, *callee, args, dsts, 0);
                self.call_sites.push(CallSite {
                    caller: fid,
                    loc,
                    kind,
                    targets: vec![*callee],
                    external: None,
                    ambiguous: false,
                });
            }
            FuncRef::External(name) => {
                self.call_sites.push(CallSite {
                    caller: fid,
                    loc,
                    kind,
                    targets: vec![],
                    external: Some(*name),
                    ambiguous: false,
                });
            }
            FuncRef::Dynamic(op) => {
                let op_node = self.operand_node(fid, op);
                let const_target = match op {
                    Operand::Const(ConstVal::Func(f)) => Some(*f),
                    _ => None,
                };
                self.dyn_calls.push(DynCall {
                    caller: fid,
                    loc,
                    kind,
                    op_node,
                    const_target,
                    args: args.to_vec(),
                    dsts: dsts.to_vec(),
                });
            }
        }
    }

    /// Installs parameter/return bindings for a static call.
    fn install_static(
        &mut self,
        caller: FuncId,
        callee: FuncId,
        args: &[Operand],
        dsts: &[Var],
        skip_params: usize,
    ) {
        let callee_fn = self.module.func(callee);
        for (i, a) in args.iter().enumerate() {
            if let Some(&param) = callee_fn.params.get(skip_params + i) {
                self.flow(caller, a, Node::Var(callee, param));
            }
        }
        for (i, &d) in dsts.iter().enumerate() {
            self.add_edge(Node::Ret(callee, i as u32), Node::Var(caller, d));
        }
    }

    /// Installs bindings for a dynamic call resolved to `callee`.
    fn install_binding(&mut self, dyn_idx: usize, callee: FuncId, via_closure: bool) {
        let dc = &self.dyn_calls[dyn_idx];
        let (caller, args, dsts) = (dc.caller, dc.args.clone(), dc.dsts.clone());
        let skip = if via_closure {
            self.module.func(callee).n_captures
        } else {
            0
        };
        self.install_static(caller, callee, &args, &dsts, skip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_source;

    /// Test helper: both modes must agree, so tests run their assertions
    /// against each. The module must outlive the analysis, hence the
    /// callback shape.
    fn with_both_modes(src: &str, check: impl Fn(&Module, &Analysis<'_>)) {
        let m = lower_source(src).expect("lowering");
        for mode in [AliasMode::Eager, AliasMode::Demand] {
            let a = analyze_with_mode(&m, mode);
            check(&m, &a);
        }
    }

    /// Finds the first instruction in `func` matching the predicate.
    fn find_instr<'m>(
        m: &'m Module,
        func: &str,
        pred: impl Fn(&Instr) -> bool,
    ) -> (Loc, &'m Instr) {
        let f = m.func_by_name(func).unwrap();
        for (bid, block) in f.iter_blocks() {
            for (idx, instr) in block.instrs.iter().enumerate() {
                if pred(instr) {
                    return (
                        Loc {
                            func: f.id,
                            block: bid,
                            idx: idx as u32,
                        },
                        instr,
                    );
                }
            }
        }
        panic!("no matching instruction in {func}");
    }

    #[test]
    fn channel_flows_through_call() {
        with_both_modes(
            "func worker(ch chan int) {\n ch <- 1\n}\nfunc main() {\n ch := make(chan int)\n go worker(ch)\n <-ch\n}",
            |m, a| {
                let (make_loc, _) = find_instr(m, "main", |i| matches!(i, Instr::MakeChan { .. }));
                let worker = m.func_by_name("worker").unwrap();
                let pts: Vec<AbstractObject> =
                    a.points_to(worker.id, worker.params[0]).copied().collect();
                assert_eq!(pts, vec![AbstractObject::Chan(make_loc)]);
            },
        );
    }

    #[test]
    fn closure_capture_aliases_parent_channel() {
        with_both_modes(
            "func main() {\n ch := make(chan int)\n go func() {\n  ch <- 1\n }()\n <-ch\n}",
            |m, a| {
                let closure = m.funcs.iter().find(|f| f.is_closure).unwrap();
                let main = m.func_by_name("main").unwrap();
                let send = closure
                    .blocks
                    .iter()
                    .flat_map(|b| &b.instrs)
                    .find(|i| matches!(i, Instr::Send { .. }))
                    .unwrap();
                let Instr::Send { chan, .. } = send else {
                    unreachable!()
                };
                let (_, recv) = find_instr(m, "main", |i| matches!(i, Instr::Recv { .. }));
                let Instr::Recv { chan: rchan, .. } = recv else {
                    unreachable!()
                };
                assert!(a.may_alias(closure.id, chan, main.id, rchan));
            },
        );
    }

    #[test]
    fn channel_through_channel_is_untracked() {
        // The paper's alias FP source: a channel received from another
        // channel has an unknown points-to set.
        with_both_modes(
            "func main() {\n carrier := make(chan chan int)\n inner := make(chan int)\n carrier <- inner\n got := <-carrier\n <-got\n}",
            |m, a| {
                let main = m.func_by_name("main").unwrap();
                // `got` is the Recv destination; its points-to set must be empty.
                let (_, recv) = find_instr(m, "main", |i| {
                    matches!(i, Instr::Recv { dst: Some(_), .. })
                });
                let Instr::Recv { dst: Some(got), .. } = recv else {
                    unreachable!()
                };
                assert_eq!(a.points_to(main.id, *got).count(), 0);
            },
        );
    }

    #[test]
    fn slice_element_is_untracked() {
        with_both_modes(
            "func main() {\n chans := []chan int{}\n ch := chans[0]\n <-ch\n}",
            |m, a| {
                let main = m.func_by_name("main").unwrap();
                let (_, load) = find_instr(m, "main", |i| matches!(i, Instr::IndexLoad { .. }));
                let Instr::IndexLoad { dst, .. } = load else {
                    unreachable!()
                };
                assert_eq!(a.points_to(main.id, *dst).count(), 0);
            },
        );
    }

    #[test]
    fn struct_field_is_tracked() {
        with_both_modes(
            "type Box struct {\n ch chan int\n}\nfunc main() {\n b := Box{ch: make(chan int)}\n c := b.ch\n <-c\n}",
            |m, a| {
                let main = m.func_by_name("main").unwrap();
                let (make_loc, _) = find_instr(m, "main", |i| matches!(i, Instr::MakeChan { .. }));
                let c = main
                    .var_names
                    .iter()
                    .position(|n| *n == "c")
                    .map(|i| Var(i as u32))
                    .unwrap();
                let pts: Vec<AbstractObject> = a.points_to(main.id, c).copied().collect();
                assert_eq!(pts, vec![AbstractObject::Chan(make_loc)]);
            },
        );
    }

    #[test]
    fn go_call_site_resolves_closure_precisely() {
        with_both_modes(
            "func main() {\n ch := make(chan int)\n go func() {\n  ch <- 1\n }()\n <-ch\n}",
            |m, a| {
                let main = m.func_by_name("main").unwrap();
                let closure = m.funcs.iter().find(|f| f.is_closure).unwrap();
                let go_sites: Vec<&CallSite> = a
                    .calls_in(main.id)
                    .filter(|cs| matches!(cs.kind, CallKind::Go))
                    .collect();
                assert_eq!(go_sites.len(), 1);
                assert_eq!(go_sites[0].targets, vec![closure.id]);
                assert!(!go_sites[0].ambiguous);
            },
        );
    }

    #[test]
    fn reachability_follows_call_chain() {
        with_both_modes(
            "func leaf() {\n}\nfunc mid() {\n leaf()\n}\nfunc main() {\n mid()\n}\nfunc unrelated() {\n}",
            |m, a| {
                let main = m.func_by_name("main").unwrap().id;
                let reach = a.reachable_from(main);
                assert!(reach.contains(&m.func_by_name("mid").unwrap().id));
                assert!(reach.contains(&m.func_by_name("leaf").unwrap().id));
                assert!(!reach.contains(&m.func_by_name("unrelated").unwrap().id));
            },
        );
    }

    #[test]
    fn globals_propagate() {
        with_both_modes(
            "var shared chan int\nfunc setup() {\n shared = make(chan int)\n}\nfunc use() {\n <-shared\n}",
            |m, a| {
                let use_fn = m.func_by_name("use").unwrap();
                let (_, recv) = find_instr(m, "use", |i| matches!(i, Instr::Recv { .. }));
                let Instr::Recv { chan, .. } = recv else {
                    unreachable!()
                };
                let pts = a.operand_points_to(use_fn.id, chan);
                assert_eq!(pts.len(), 1, "global channel must be tracked");
                assert!(matches!(pts[0], AbstractObject::Chan(_)));
            },
        );
    }

    #[test]
    fn function_value_parameter_resolves() {
        with_both_modes(
            "func run(f func()) {\n f()\n}\nfunc task() {\n}\nfunc main() {\n run(task)\n}",
            |m, a| {
                let run = m.func_by_name("run").unwrap();
                let task = m.func_by_name("task").unwrap();
                let dyn_sites: Vec<&CallSite> = a
                    .calls_in(run.id)
                    .filter(|cs| cs.external.is_none())
                    .collect();
                assert_eq!(dyn_sites.len(), 1);
                assert_eq!(dyn_sites[0].targets, vec![task.id]);
            },
        );
    }

    #[test]
    fn external_calls_are_recorded() {
        with_both_modes("func main() {\n Mystery()\n}", |_, a| {
            let ext: Vec<&CallSite> = a
                .call_sites()
                .iter()
                .filter(|cs| cs.external.is_some())
                .collect();
            assert_eq!(ext.len(), 1);
            assert_eq!(ext[0].external.map(|s| s.as_str()), Some("Mystery"));
        });
    }

    #[test]
    fn demand_mode_skips_unreferenced_functions() {
        // `ballast` has no sync ops and only static calls: in demand mode
        // its component must never be solved by a points-to query against
        // `main`'s component.
        let m = lower_source(
            "func ballastLeaf() {\n}\nfunc ballast() {\n ballastLeaf()\n}\nfunc main() {\n ch := make(chan int)\n go func() {\n  ch <- 1\n }()\n <-ch\n}",
        )
        .expect("lowering");
        let a = analyze_with_mode(&m, AliasMode::Demand);
        let main = m.func_by_name("main").unwrap();
        let (_, recv) = find_instr(&m, "main", |i| matches!(i, Instr::Recv { .. }));
        let Instr::Recv { chan, .. } = recv else {
            unreachable!()
        };
        assert_eq!(a.operand_points_to(main.id, chan).len(), 1);
        let stats = a.alias_stats();
        assert_eq!(stats.queries_solved, 1, "only main's component solved");
        assert_eq!(
            stats.functions_skipped, 2,
            "ballast + ballastLeaf never solved"
        );
        // Reachability over static calls must not force a solve either.
        let ballast = m.func_by_name("ballast").unwrap().id;
        assert!(a
            .reachable_from(ballast)
            .contains(&m.func_by_name("ballastLeaf").unwrap().id));
        assert_eq!(a.alias_stats().queries_solved, 1);
    }

    #[test]
    fn demand_and_eager_call_sites_are_identical() {
        let src = "func run(f func()) {\n f()\n}\nfunc task() {\n}\nfunc util() {\n Mystery()\n}\nfunc main() {\n run(task)\n util()\n}";
        let m = lower_source(src).expect("lowering");
        let eager = analyze_with_mode(&m, AliasMode::Eager);
        let demand = analyze_with_mode(&m, AliasMode::Demand);
        let fmt = |cs: &CallSite| {
            format!(
                "{}:{:?}:{:?}:{:?}:{:?}:{}",
                cs.loc, cs.kind, cs.caller, cs.targets, cs.external, cs.ambiguous
            )
        };
        let a: Vec<String> = eager.call_sites().iter().map(fmt).collect();
        let b: Vec<String> = demand.call_sites().iter().map(fmt).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn eager_stats_report_single_solve() {
        let m = lower_source("func main() {\n}").expect("lowering");
        let a = analyze_with_mode(&m, AliasMode::Eager);
        let stats = a.alias_stats();
        assert_eq!(stats.queries_solved, 1);
        assert_eq!(stats.functions_skipped, 0);
    }
}
