//! Property tests: printing a randomly generated AST yields source that
//! reparses, and the printer is a fixed point (print ∘ parse ∘ print = print).

use golite::ast::*;
use golite::token::Span;
use golite::{parse, print_program};
use proptest::prelude::*;

fn e(kind: ExprKind) -> Expr {
    Expr { kind, span: Span::synthetic(), id: NodeId(0) }
}

fn s(kind: StmtKind) -> Stmt {
    Stmt { kind, span: Span::synthetic(), id: NodeId(0) }
}

fn ident_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("x".to_string()),
        Just("y".to_string()),
        Just("ch".to_string()),
        Just("done".to_string()),
        Just("n".to_string()),
        Just("ok2".to_string()),
    ]
}

fn type_strategy() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::Int),
        Just(Type::Bool),
        Just(Type::String),
        Just(Type::Error),
        Just(Type::Unit),
        Just(Type::Mutex),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|t| Type::Chan(Box::new(t))),
            inner.clone().prop_map(|t| Type::Ptr(Box::new(t))),
            inner.prop_map(|t| Type::Slice(Box::new(t))),
        ]
    })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|v| e(ExprKind::Int(v))),
        any::<bool>().prop_map(|b| e(ExprKind::Bool(b))),
        Just(e(ExprKind::Nil)),
        Just(e(ExprKind::UnitLit)),
        ident_strategy().prop_map(|n| e(ExprKind::Ident(n))),
        Just(e(ExprKind::Str("msg".into()))),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), binop_strategy()).prop_map(|(l, r, op)| e(
                ExprKind::Binary(op, Box::new(l), Box::new(r))
            )),
            inner.clone().prop_map(|x| e(ExprKind::Unary(UnOp::Not, Box::new(x)))),
            inner.clone().prop_map(|x| e(ExprKind::Recv(Box::new(x)))),
            (ident_strategy(), proptest::collection::vec(inner.clone(), 0..3)).prop_map(
                |(name, args)| e(ExprKind::Call {
                    callee: Box::new(e(ExprKind::Ident(name))),
                    args
                })
            ),
            inner.prop_map(|x| e(ExprKind::Paren(Box::new(x)))),
        ]
    })
}

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Eq),
        Just(BinOp::Lt),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        (ident_strategy(), expr_strategy())
            .prop_map(|(n, rhs)| s(StmtKind::Define { names: vec![n], rhs })),
        (ident_strategy(), expr_strategy()).prop_map(|(n, rhs)| s(StmtKind::Assign {
            lhs: vec![e(ExprKind::Ident(n))],
            op: AssignOp::Assign,
            rhs
        })),
        (ident_strategy(), expr_strategy())
            .prop_map(|(n, v)| s(StmtKind::Send { chan: e(ExprKind::Ident(n)), value: v })),
        ident_strategy().prop_map(|n| s(StmtKind::Close(e(ExprKind::Ident(n))))),
        expr_strategy().prop_map(|x| s(StmtKind::Return(vec![x]))),
        Just(s(StmtKind::Break)),
        Just(s(StmtKind::Continue)),
        (ident_strategy(), type_strategy())
            .prop_map(|(n, ty)| s(StmtKind::VarDecl { name: n, ty, init: None })),
    ];
    simple.prop_recursive(3, 16, 4, |inner| {
        let block = proptest::collection::vec(inner.clone(), 0..4)
            .prop_map(|stmts| Block { stmts, span: Span::synthetic() });
        prop_oneof![
            (expr_strategy(), block.clone()).prop_map(|(cond, then)| s(StmtKind::If {
                cond,
                then,
                els: None
            })),
            block.clone().prop_map(|body| s(StmtKind::For {
                init: None,
                cond: None,
                post: None,
                body
            })),
            (expr_strategy(), block).prop_map(|(cond, body)| s(StmtKind::For {
                init: None,
                cond: Some(cond),
                post: None,
                body
            })),
        ]
    })
}

fn program_strategy() -> impl Strategy<Value = Program> {
    proptest::collection::vec(stmt_strategy(), 0..8).prop_map(|stmts| Program {
        package: "main".into(),
        imports: vec![],
        decls: vec![Decl::Func(FuncDecl {
            name: "main".into(),
            params: vec![],
            results: vec![],
            body: Block { stmts, span: Span::synthetic() },
            span: Span::synthetic(),
            id: NodeId(0),
        })],
        next_node_id: 1,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any printed program reparses successfully.
    #[test]
    fn printed_programs_reparse(prog in program_strategy()) {
        let printed = print_program(&prog);
        let reparsed = parse(&printed);
        prop_assert!(reparsed.is_ok(), "printed program failed to reparse:\n{printed}\nerror: {:?}", reparsed.err());
    }

    /// print ∘ parse is a fixed point on printed output.
    #[test]
    fn printer_is_fixed_point(prog in program_strategy()) {
        let once = print_program(&prog);
        let reparsed = parse(&once).expect("must reparse");
        let twice = print_program(&reparsed);
        prop_assert_eq!(once, twice);
    }
}
