//! Property tests: printing a randomly generated AST yields source that
//! reparses, and the printer is a fixed point (print ∘ parse ∘ print =
//! print). Random ASTs come from a hand-rolled seeded generator (the
//! workspace carries no external property-testing dependency).

use golite::ast::*;
use golite::token::Span;
use golite::{parse, print_program};
use prng::Prng;

const CASES: u64 = 256;

fn e(kind: ExprKind) -> Expr {
    Expr {
        kind,
        span: Span::synthetic(),
        id: NodeId(0),
    }
}

fn s(kind: StmtKind) -> Stmt {
    Stmt {
        kind,
        span: Span::synthetic(),
        id: NodeId(0),
    }
}

fn gen_ident(rng: &mut Prng) -> String {
    rng.pick(&["x", "y", "ch", "done", "n", "ok2"]).to_string()
}

fn gen_type(rng: &mut Prng, depth: usize) -> Type {
    let leaf = |rng: &mut Prng| match rng.gen_range(0..6usize) {
        0 => Type::Int,
        1 => Type::Bool,
        2 => Type::String,
        3 => Type::Error,
        4 => Type::Unit,
        _ => Type::Mutex,
    };
    if depth == 0 || rng.gen_bool(0.5) {
        return leaf(rng);
    }
    let inner = gen_type(rng, depth - 1);
    match rng.gen_range(0..3usize) {
        0 => Type::Chan(Box::new(inner)),
        1 => Type::Ptr(Box::new(inner)),
        _ => Type::Slice(Box::new(inner)),
    }
}

fn gen_binop(rng: &mut Prng) -> BinOp {
    *rng.pick(&[
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Eq,
        BinOp::Lt,
        BinOp::And,
        BinOp::Or,
    ])
}

fn gen_expr(rng: &mut Prng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.4) {
        return match rng.gen_range(0..6usize) {
            0 => e(ExprKind::Int(rng.gen_range(0i64..1000))),
            1 => e(ExprKind::Bool(rng.gen_bool(0.5))),
            2 => e(ExprKind::Nil),
            3 => e(ExprKind::UnitLit),
            4 => e(ExprKind::Ident(gen_ident(rng))),
            _ => e(ExprKind::Str("msg".into())),
        };
    }
    match rng.gen_range(0..5usize) {
        0 => {
            let l = gen_expr(rng, depth - 1);
            let r = gen_expr(rng, depth - 1);
            e(ExprKind::Binary(gen_binop(rng), Box::new(l), Box::new(r)))
        }
        1 => e(ExprKind::Unary(
            UnOp::Not,
            Box::new(gen_expr(rng, depth - 1)),
        )),
        2 => e(ExprKind::Recv(Box::new(gen_expr(rng, depth - 1)))),
        3 => {
            let n_args = rng.gen_range(0..3usize);
            let args = (0..n_args).map(|_| gen_expr(rng, depth - 1)).collect();
            e(ExprKind::Call {
                callee: Box::new(e(ExprKind::Ident(gen_ident(rng)))),
                args,
            })
        }
        _ => e(ExprKind::Paren(Box::new(gen_expr(rng, depth - 1)))),
    }
}

fn gen_block(rng: &mut Prng, depth: usize, max_stmts: usize) -> Block {
    let n = rng.gen_range(0..=max_stmts);
    Block {
        stmts: (0..n).map(|_| gen_stmt(rng, depth)).collect(),
        span: Span::synthetic(),
    }
}

fn gen_stmt(rng: &mut Prng, depth: usize) -> Stmt {
    if depth == 0 || rng.gen_bool(0.6) {
        return match rng.gen_range(0..8usize) {
            0 => s(StmtKind::Define {
                names: vec![gen_ident(rng)],
                rhs: gen_expr(rng, 3),
            }),
            1 => s(StmtKind::Assign {
                lhs: vec![e(ExprKind::Ident(gen_ident(rng)))],
                op: AssignOp::Assign,
                rhs: gen_expr(rng, 3),
            }),
            2 => s(StmtKind::Send {
                chan: e(ExprKind::Ident(gen_ident(rng))),
                value: gen_expr(rng, 3),
            }),
            3 => s(StmtKind::Close(e(ExprKind::Ident(gen_ident(rng))))),
            4 => s(StmtKind::Return(vec![gen_expr(rng, 3)])),
            5 => s(StmtKind::Break),
            6 => s(StmtKind::Continue),
            _ => s(StmtKind::VarDecl {
                name: gen_ident(rng),
                ty: gen_type(rng, 3),
                init: None,
            }),
        };
    }
    match rng.gen_range(0..3usize) {
        0 => s(StmtKind::If {
            cond: gen_expr(rng, 3),
            then: gen_block(rng, depth - 1, 3),
            els: None,
        }),
        1 => s(StmtKind::For {
            init: None,
            cond: None,
            post: None,
            body: gen_block(rng, depth - 1, 3),
        }),
        _ => s(StmtKind::For {
            init: None,
            cond: Some(gen_expr(rng, 3)),
            post: None,
            body: gen_block(rng, depth - 1, 3),
        }),
    }
}

fn gen_program(rng: &mut Prng) -> Program {
    let n = rng.gen_range(0..8usize);
    let stmts = (0..n).map(|_| gen_stmt(rng, 3)).collect();
    Program {
        package: "main".into(),
        imports: vec![],
        decls: vec![Decl::Func(FuncDecl {
            name: "main".into(),
            params: vec![],
            results: vec![],
            body: Block {
                stmts,
                span: Span::synthetic(),
            },
            span: Span::synthetic(),
            id: NodeId(0),
        })],
        next_node_id: 1,
    }
}

/// Any printed program reparses successfully.
#[test]
fn printed_programs_reparse() {
    for seed in 0..CASES {
        let prog = gen_program(&mut Prng::seed_from_u64(seed));
        let printed = print_program(&prog);
        let reparsed = parse(&printed);
        assert!(
            reparsed.is_ok(),
            "seed {seed}: printed program failed to reparse:\n{printed}\nerror: {:?}",
            reparsed.err()
        );
    }
}

/// print ∘ parse is a fixed point on printed output.
#[test]
fn printer_is_fixed_point() {
    for seed in 0..CASES {
        let prog = gen_program(&mut Prng::seed_from_u64(seed));
        let once = print_program(&prog);
        let reparsed = parse(&once).expect("must reparse");
        let twice = print_program(&reparsed);
        assert_eq!(once, twice, "seed {seed}: printer not a fixed point");
    }
}
