//! Token definitions for the GoLite lexer.
//!
//! GoLite keeps Go's token inventory for the subset of the language that the
//! GCatch/GFix analyses reason about: declarations, control flow, goroutines,
//! channels, `select`, `defer`, and the `sync`/`testing`/`context` vocabulary.

use std::fmt;

/// A half-open byte range into the source text, plus 1-based line/column of
/// the start position.
///
/// Spans survive parsing so that detectors can report source locations and so
/// that GFix can compute minimal line-based diffs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based source line of `start`.
    pub line: u32,
    /// 1-based source column of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a span covering `start..end` at the given line/column.
    pub fn new(start: u32, end: u32, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// A span that covers both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
            col: if other.line < self.line {
                other.col
            } else {
                self.col
            },
        }
    }

    /// The zero span, used for synthesized nodes that have no source text.
    pub fn synthetic() -> Span {
        Span::default()
    }

    /// Whether this span was synthesized rather than read from source.
    pub fn is_synthetic(&self) -> bool {
        *self == Span::default()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// A ident token.
    Ident(String),
    /// A int token.
    Int(i64),
    /// A str token.
    Str(String),

    // Keywords.
    /// `package`
    Package,
    /// `import`
    Import,
    /// `func`
    Func,
    /// `var`
    Var,
    /// `const`
    Const,
    /// `type`
    Type,
    /// `struct`
    Struct,
    /// `interface`
    Interface,
    /// `map`
    Map,
    /// `chan`
    Chan,
    /// `go`
    Go,
    /// `defer`
    Defer,
    /// `return`
    Return,
    /// `if`
    If,
    /// `else`
    Else,
    /// `for`
    For,
    /// `range`
    Range,
    /// `select`
    Select,
    /// `switch`
    Switch,
    /// `case`
    Case,
    /// `default`
    Default,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `close`
    Close,
    /// `make`
    Make,
    /// `panic`
    Panic,
    /// `true`
    True,
    /// `false`
    False,
    /// `nil`
    Nil,

    // Operators and punctuation.
    /// <-
    Arrow,
    /// :=
    Define,
    /// =
    Assign,
    /// +
    Plus,
    /// -
    Minus,
    /// *
    Star,
    /// /
    Slash,
    /// %
    Percent,
    /// &
    Amp,
    /// &&
    AndAnd,
    /// ||
    OrOr,
    /// !
    Not,
    /// ==
    Eq,
    /// !=
    Ne,
    /// <
    Lt,
    /// <=
    Le,
    /// >
    Gt,
    /// >=
    Ge,
    /// ++
    PlusPlus,
    /// --
    MinusMinus,
    /// +=
    PlusAssign,
    /// -=
    MinusAssign,
    /// `lparen`
    LParen,
    /// `rparen`
    RParen,
    /// `lbrace`
    LBrace,
    /// `rbrace`
    RBrace,
    /// `lbracket`
    LBracket,
    /// `rbracket`
    RBracket,
    /// `comma`
    Comma,
    /// `dot`
    Dot,
    /// `semicolon`
    Semicolon,
    /// `colon`
    Colon,
    /// `underscore`
    Underscore,

    /// End of input.
    /// `eof`
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `word`, if it is a GoLite keyword.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "package" => TokenKind::Package,
            "import" => TokenKind::Import,
            "func" => TokenKind::Func,
            "var" => TokenKind::Var,
            "const" => TokenKind::Const,
            "type" => TokenKind::Type,
            "struct" => TokenKind::Struct,
            "interface" => TokenKind::Interface,
            "map" => TokenKind::Map,
            "chan" => TokenKind::Chan,
            "go" => TokenKind::Go,
            "defer" => TokenKind::Defer,
            "return" => TokenKind::Return,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "for" => TokenKind::For,
            "range" => TokenKind::Range,
            "select" => TokenKind::Select,
            "switch" => TokenKind::Switch,
            "case" => TokenKind::Case,
            "default" => TokenKind::Default,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "close" => TokenKind::Close,
            "make" => TokenKind::Make,
            "panic" => TokenKind::Panic,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "nil" => TokenKind::Nil,
            _ => return None,
        })
    }

    /// Whether a statement can end just before a newline after this token,
    /// mirroring Go's automatic semicolon insertion rule.
    pub fn ends_statement(&self) -> bool {
        matches!(
            self,
            TokenKind::Ident(_)
                | TokenKind::Int(_)
                | TokenKind::Str(_)
                | TokenKind::True
                | TokenKind::False
                | TokenKind::Nil
                | TokenKind::Return
                | TokenKind::Break
                | TokenKind::Continue
                | TokenKind::RParen
                | TokenKind::RBrace
                | TokenKind::RBracket
                | TokenKind::PlusPlus
                | TokenKind::MinusMinus
                | TokenKind::Underscore
        )
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Package => write!(f, "package"),
            TokenKind::Import => write!(f, "import"),
            TokenKind::Func => write!(f, "func"),
            TokenKind::Var => write!(f, "var"),
            TokenKind::Const => write!(f, "const"),
            TokenKind::Type => write!(f, "type"),
            TokenKind::Struct => write!(f, "struct"),
            TokenKind::Interface => write!(f, "interface"),
            TokenKind::Map => write!(f, "map"),
            TokenKind::Chan => write!(f, "chan"),
            TokenKind::Go => write!(f, "go"),
            TokenKind::Defer => write!(f, "defer"),
            TokenKind::Return => write!(f, "return"),
            TokenKind::If => write!(f, "if"),
            TokenKind::Else => write!(f, "else"),
            TokenKind::For => write!(f, "for"),
            TokenKind::Range => write!(f, "range"),
            TokenKind::Select => write!(f, "select"),
            TokenKind::Switch => write!(f, "switch"),
            TokenKind::Case => write!(f, "case"),
            TokenKind::Default => write!(f, "default"),
            TokenKind::Break => write!(f, "break"),
            TokenKind::Continue => write!(f, "continue"),
            TokenKind::Close => write!(f, "close"),
            TokenKind::Make => write!(f, "make"),
            TokenKind::Panic => write!(f, "panic"),
            TokenKind::True => write!(f, "true"),
            TokenKind::False => write!(f, "false"),
            TokenKind::Nil => write!(f, "nil"),
            TokenKind::Arrow => write!(f, "<-"),
            TokenKind::Define => write!(f, ":="),
            TokenKind::Assign => write!(f, "="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Amp => write!(f, "&"),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Not => write!(f, "!"),
            TokenKind::Eq => write!(f, "=="),
            TokenKind::Ne => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::PlusPlus => write!(f, "++"),
            TokenKind::MinusMinus => write!(f, "--"),
            TokenKind::PlusAssign => write!(f, "+="),
            TokenKind::MinusAssign => write!(f, "-="),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Underscore => write!(f, "_"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_covers_channel_vocabulary() {
        for word in ["chan", "go", "select", "defer", "close", "make"] {
            assert!(
                TokenKind::keyword(word).is_some(),
                "{word} must be a keyword"
            );
        }
        assert_eq!(TokenKind::keyword("mutex"), None);
    }

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(0, 4, 1, 1);
        let b = Span::new(10, 12, 2, 3);
        let j = a.to(b);
        assert_eq!(j.start, 0);
        assert_eq!(j.end, 12);
        assert_eq!(j.line, 1);
    }

    #[test]
    fn semicolon_insertion_rule_matches_go() {
        assert!(TokenKind::Ident("x".into()).ends_statement());
        assert!(TokenKind::RParen.ends_statement());
        assert!(TokenKind::Return.ends_statement());
        assert!(!TokenKind::Comma.ends_statement());
        assert!(!TokenKind::Define.ends_statement());
        assert!(!TokenKind::LBrace.ends_statement());
    }

    #[test]
    fn display_round_trips_symbols() {
        assert_eq!(TokenKind::Arrow.to_string(), "<-");
        assert_eq!(TokenKind::Define.to_string(), ":=");
        assert_eq!(TokenKind::Ne.to_string(), "!=");
    }

    #[test]
    fn synthetic_span_is_recognizable() {
        assert!(Span::synthetic().is_synthetic());
        assert!(!Span::new(0, 1, 1, 1).is_synthetic());
    }
}
