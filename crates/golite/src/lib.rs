//! # GoLite — the Go subset analyzed by the GCatch/GFix reproduction
//!
//! The GCatch/GFix paper (ASPLOS '21) analyzes real Go programs through the
//! `go/ast` and `golang.org/x/tools/go/ssa` packages. This crate is the
//! from-scratch replacement for that frontend: a lexer, parser, AST, and
//! canonical printer for *GoLite*, the subset of Go sufficient to express
//! every program pattern the paper reasons about:
//!
//! * goroutines (`go f()`, `go func(){...}()`), closures capturing variables;
//! * buffered and unbuffered channels: `make(chan T, n)`, send, receive,
//!   `close`, comma-ok receives;
//! * `select` with send/receive cases and optional `default`;
//! * `sync.Mutex` / `sync.RWMutex` / `sync.WaitGroup` / `sync.Cond`;
//! * `defer`, `panic`, multi-value returns, `context.WithCancel` /
//!   `ctx.Done()`, `testing.T` with `Fatal`/`Fatalf`;
//! * structs, slices, the usual scalar types and control flow.
//!
//! # Examples
//!
//! Parse the Docker bug from Figure 1 of the paper and print it back:
//!
//! ```
//! let src = r#"
//! func Exec(ctx context.Context) error {
//!     outDone := make(chan error)
//!     go func() {
//!         outDone <- StdCopy()
//!     }()
//!     select {
//!     case err := <-outDone:
//!         return err
//!     case <-ctx.Done():
//!         return ctx.Err()
//!     }
//! }
//!
//! func StdCopy() error {
//!     return nil
//! }
//! "#;
//! let program = golite::parse(src)?;
//! let printed = golite::print_program(&program);
//! assert!(printed.contains("outDone := make(chan error)"));
//! # Ok::<(), golite::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::{
    AssignOp, BinOp, Block, Decl, Expr, ExprKind, FuncDecl, NodeId, Param, Program, SelectCase,
    SelectCaseKind, Stmt, StmtKind, StructDecl, Type, UnOp,
};
pub use lexer::{lex, LexError};
pub use parser::{parse, ParseError};
pub use printer::{print_expr, print_program, print_stmt, print_type};
pub use token::{Span, Token, TokenKind};

/// Computes a line-based diff size between two sources: the number of lines
/// added plus lines removed (a replaced line counts as one removal plus one
/// addition, matching how the paper counts "changed lines of code").
///
/// # Examples
///
/// ```
/// // The Figure 1 patch changes one line.
/// let before = "outDone := make(chan error)\nselect {\n}";
/// let after = "outDone := make(chan error, 1)\nselect {\n}";
/// assert_eq!(golite::diff_lines(before, after), 2); // 1 removed + 1 added
/// ```
pub fn diff_lines(before: &str, after: &str) -> usize {
    let mut a: Vec<&str> = before.lines().collect();
    let mut b: Vec<&str> = after.lines().collect();
    // Trim the common prefix and suffix first: patches touch few lines, so
    // this keeps the quadratic LCS core tiny even for large files.
    let mut prefix = 0;
    while prefix < a.len() && prefix < b.len() && a[prefix] == b[prefix] {
        prefix += 1;
    }
    a.drain(..prefix);
    b.drain(..prefix);
    let mut suffix = 0;
    while suffix < a.len() && suffix < b.len() && a[a.len() - 1 - suffix] == b[b.len() - 1 - suffix]
    {
        suffix += 1;
    }
    a.truncate(a.len() - suffix);
    b.truncate(b.len() - suffix);
    let lcs = lcs_len(&a, &b);
    (a.len() - lcs) + (b.len() - lcs)
}

fn lcs_len(a: &[&str], b: &[&str]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for &la in a {
        for (j, &lb) in b.iter().enumerate() {
            cur[j + 1] = if la == lb {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_lines_identical_is_zero() {
        let s = "a\nb\nc";
        assert_eq!(diff_lines(s, s), 0);
    }

    #[test]
    fn diff_lines_pure_insertion() {
        assert_eq!(diff_lines("a\nc", "a\nb\nc"), 1);
    }

    #[test]
    fn diff_lines_pure_removal() {
        assert_eq!(diff_lines("a\nb\nc", "a\nc"), 1);
    }

    #[test]
    fn diff_lines_replacement_counts_two() {
        assert_eq!(diff_lines("a\nb\nc", "a\nx\nc"), 2);
    }

    #[test]
    fn parse_and_print_are_exposed() {
        let prog = parse("func main() {\n}").unwrap();
        assert_eq!(prog.package, "main");
        assert!(print_program(&prog).contains("func main()"));
    }
}
