//! Lexer for GoLite source text.
//!
//! The lexer follows Go's scanning rules for the GoLite subset, including
//! Go's automatic semicolon insertion: a semicolon token is synthesized at a
//! newline when the previous token could legally end a statement. Line (`//`)
//! and block (`/* */`) comments are skipped.

use crate::token::{Span, Token, TokenKind};

/// An error produced while scanning source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Location of the offending character(s).
    pub span: Span,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

/// Scans `src` into a token stream ending with an [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings or comments and on
/// characters outside the GoLite alphabet.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        tokens: Vec::new(),
    };
    lx.run()?;
    Ok(lx.tokens)
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn here(&self) -> (u32, u32, u32) {
        (self.pos as u32, self.line, self.col)
    }

    fn push(&mut self, kind: TokenKind, start: (u32, u32, u32)) {
        let span = Span::new(start.0, self.pos as u32, start.1, start.2);
        self.tokens.push(Token { kind, span });
    }

    fn maybe_insert_semicolon(&mut self) {
        if let Some(last) = self.tokens.last() {
            if last.kind.ends_statement() {
                let span = Span::new(self.pos as u32, self.pos as u32, self.line, self.col);
                self.tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    span,
                });
            }
        }
    }

    fn error(&self, message: impl Into<String>, start: (u32, u32, u32)) -> LexError {
        LexError {
            message: message.into(),
            span: Span::new(start.0, self.pos as u32, start.1, start.2),
        }
    }

    fn run(&mut self) -> Result<(), LexError> {
        loop {
            // Skip horizontal whitespace; handle newlines for semicolon insertion.
            loop {
                match self.peek() {
                    b' ' | b'\t' | b'\r' => {
                        self.bump();
                    }
                    b'\n' => {
                        self.maybe_insert_semicolon();
                        self.bump();
                    }
                    b'/' if self.peek2() == b'/' => {
                        while self.peek() != b'\n' && self.peek() != 0 {
                            self.bump();
                        }
                    }
                    b'/' if self.peek2() == b'*' => {
                        let start = self.here();
                        self.bump();
                        self.bump();
                        loop {
                            if self.peek() == 0 {
                                return Err(self.error("unterminated block comment", start));
                            }
                            if self.peek() == b'*' && self.peek2() == b'/' {
                                self.bump();
                                self.bump();
                                break;
                            }
                            self.bump();
                        }
                    }
                    _ => break,
                }
            }

            let start = self.here();
            let c = self.peek();
            if c == 0 {
                self.maybe_insert_semicolon();
                self.push(TokenKind::Eof, start);
                return Ok(());
            }

            match c {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                b'0'..=b'9' => self.number(start)?,
                b'"' => self.string(start)?,
                _ => self.symbol(start)?,
            }
        }
    }

    fn ident(&mut self, start: (u32, u32, u32)) {
        let s0 = self.pos;
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.bump();
        }
        let word = std::str::from_utf8(&self.src[s0..self.pos]).expect("ascii ident");
        let kind = if word == "_" {
            TokenKind::Underscore
        } else {
            TokenKind::keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_string()))
        };
        self.push(kind, start);
    }

    fn number(&mut self, start: (u32, u32, u32)) -> Result<(), LexError> {
        let s0 = self.pos;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[s0..self.pos]).expect("ascii digits");
        let value: i64 = text
            .parse()
            .map_err(|_| self.error(format!("integer literal `{text}` overflows"), start))?;
        self.push(TokenKind::Int(value), start);
        Ok(())
    }

    fn string(&mut self, start: (u32, u32, u32)) -> Result<(), LexError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                0 | b'\n' => return Err(self.error("unterminated string literal", start)),
                b'"' => {
                    self.bump();
                    break;
                }
                b'\\' => {
                    self.bump();
                    let esc = self.bump();
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'\\' => '\\',
                        b'"' => '"',
                        other => {
                            return Err(
                                self.error(format!("unknown escape `\\{}`", other as char), start)
                            )
                        }
                    });
                }
                other => {
                    self.bump();
                    out.push(other as char);
                }
            }
        }
        self.push(TokenKind::Str(out), start);
        Ok(())
    }

    fn symbol(&mut self, start: (u32, u32, u32)) -> Result<(), LexError> {
        let c = self.bump();
        let kind = match c {
            b'<' if self.peek() == b'-' => {
                self.bump();
                TokenKind::Arrow
            }
            b'<' if self.peek() == b'=' => {
                self.bump();
                TokenKind::Le
            }
            b'<' => TokenKind::Lt,
            b'>' if self.peek() == b'=' => {
                self.bump();
                TokenKind::Ge
            }
            b'>' => TokenKind::Gt,
            b':' if self.peek() == b'=' => {
                self.bump();
                TokenKind::Define
            }
            b':' => TokenKind::Colon,
            b'=' if self.peek() == b'=' => {
                self.bump();
                TokenKind::Eq
            }
            b'=' => TokenKind::Assign,
            b'!' if self.peek() == b'=' => {
                self.bump();
                TokenKind::Ne
            }
            b'!' => TokenKind::Not,
            b'+' if self.peek() == b'+' => {
                self.bump();
                TokenKind::PlusPlus
            }
            b'+' if self.peek() == b'=' => {
                self.bump();
                TokenKind::PlusAssign
            }
            b'+' => TokenKind::Plus,
            b'-' if self.peek() == b'-' => {
                self.bump();
                TokenKind::MinusMinus
            }
            b'-' if self.peek() == b'=' => {
                self.bump();
                TokenKind::MinusAssign
            }
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'&' if self.peek() == b'&' => {
                self.bump();
                TokenKind::AndAnd
            }
            b'&' => TokenKind::Amp,
            b'|' if self.peek() == b'|' => {
                self.bump();
                TokenKind::OrOr
            }
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b'.' => TokenKind::Dot,
            b';' => TokenKind::Semicolon,
            other => {
                return Err(self.error(format!("unexpected character `{}`", other as char), start))
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_channel_make() {
        let k = kinds("outDone := make(chan error, 1)");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("outDone".into()),
                TokenKind::Define,
                TokenKind::Make,
                TokenKind::LParen,
                TokenKind::Chan,
                TokenKind::Ident("error".into()),
                TokenKind::Comma,
                TokenKind::Int(1),
                TokenKind::RParen,
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn arrow_vs_less_than() {
        assert_eq!(kinds("a <- b")[1], TokenKind::Arrow);
        assert_eq!(kinds("a < b")[1], TokenKind::Lt);
        assert_eq!(kinds("a <= b")[1], TokenKind::Le);
    }

    #[test]
    fn semicolon_insertion_after_ident_at_newline() {
        let k = kinds("x\ny");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Semicolon,
                TokenKind::Ident("y".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn no_semicolon_after_operator_at_newline() {
        let k = kinds("x :=\n1");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Define,
                TokenKind::Int(1),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("a // trailing\n/* block\nstill block */ b");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Semicolon,
                TokenKind::Ident("b".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let k = kinds(r#""a\nb\"c""#);
        assert_eq!(k[0], TokenKind::Str("a\nb\"c".into()));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\nd\"").is_err());
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("ab\n  cd").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.col, 1);
        // toks[1] is the inserted semicolon.
        assert_eq!(toks[2].span.line, 2);
        assert_eq!(toks[2].span.col, 3);
    }

    #[test]
    fn compound_assignment_ops() {
        assert_eq!(kinds("i++")[1], TokenKind::PlusPlus);
        assert_eq!(kinds("i += 2")[1], TokenKind::PlusAssign);
        assert_eq!(kinds("i -= 2")[1], TokenKind::MinusAssign);
    }

    #[test]
    fn unknown_character_is_error() {
        let err = lex("a # b").unwrap_err();
        assert!(err.message.contains('#'));
    }

    #[test]
    fn underscore_is_blank_token() {
        assert_eq!(kinds("_ = x")[0], TokenKind::Underscore);
    }
}
