//! Abstract syntax tree for GoLite programs.
//!
//! Every node carries a [`Span`] into the original source plus a stable
//! [`NodeId`], so detectors can report precise locations and GFix can address
//! individual statements when synthesizing patches.

use crate::token::Span;
use std::fmt;

/// Identifier of an AST node, unique within one parsed [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A GoLite type expression.
///
/// GoLite resolves the handful of standard-library types the paper's analyses
/// care about (`sync.Mutex`, `context.Context`, `testing.T`, …) into dedicated
/// variants so later phases never need to consult import tables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `string`
    String,
    /// `error` — modeled as a nil-able string.
    Error,
    /// `struct{}` — the empty struct, Go's conventional signal payload.
    Unit,
    /// `chan T`
    Chan(Box<Type>),
    /// `*T`
    Ptr(Box<Type>),
    /// `[]T`
    Slice(Box<Type>),
    /// `sync.Mutex`
    Mutex,
    /// `sync.RWMutex`
    RwMutex,
    /// `sync.WaitGroup`
    WaitGroup,
    /// `sync.Cond`
    Cond,
    /// `context.Context`
    Context,
    /// `*testing.T`
    TestingT,
    /// `func(params) results`
    Func(Vec<Type>, Vec<Type>),
    /// A user-declared struct type, by name.
    Named(String),
}

impl Type {
    /// The element type if `self` is a channel type.
    pub fn chan_elem(&self) -> Option<&Type> {
        match self {
            Type::Chan(t) => Some(t),
            _ => None,
        }
    }

    /// Whether values of this type are synchronization primitives that the
    /// BMOC detector models (channels and mutexes, per §3.4 of the paper).
    pub fn is_modeled_primitive(&self) -> bool {
        matches!(self, Type::Chan(_) | Type::Mutex | Type::RwMutex)
            || matches!(self, Type::Ptr(inner) if inner.is_modeled_primitive())
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Go operator precedence (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Mul | BinOp::Div | BinOp::Rem => 5,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::And => 2,
            BinOp::Or => 1,
        }
    }

    /// The Go surface syntax for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
    /// `&x`
    Addr,
    /// `*x`
    Deref,
}

impl UnOp {
    /// The Go surface syntax for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::Addr => "&",
            UnOp::Deref => "*",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression's payload.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
    /// Stable node identity.
    pub id: NodeId,
}

/// The payload of an [`Expr`].
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are named self-descriptively
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `nil`
    Nil,
    /// `struct{}{}` — the unit value.
    UnitLit,
    /// A variable reference.
    Ident(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `<-ch` used as an expression.
    Recv(Box<Expr>),
    /// A plain function call `f(args)` or call of a closure expression.
    Call { callee: Box<Expr>, args: Vec<Expr> },
    /// A method or package-qualified call `x.Name(args)`.
    ///
    /// Whether `recv` denotes a package (`context.WithCancel`) or a value
    /// (`mu.Lock`) is resolved during IR lowering.
    Method {
        recv: Box<Expr>,
        name: String,
        args: Vec<Expr>,
    },
    /// Struct field access `x.f` (not a call).
    Field { obj: Box<Expr>, name: String },
    /// `make(chan T)` / `make(chan T, n)` / `make([]T, n)`.
    Make { ty: Type, cap: Option<Box<Expr>> },
    /// A function literal.
    Closure {
        params: Vec<Param>,
        results: Vec<Type>,
        body: Block,
    },
    /// `arr[i]`
    Index { obj: Box<Expr>, index: Box<Expr> },
    /// `T{f: v, ...}` struct literal (also `[]T{...}` slice literal via `Slice` type).
    Composite {
        ty: Type,
        fields: Vec<(Option<String>, Expr)>,
    },
    /// Parenthesized expression, kept for faithful reprinting.
    Paren(Box<Expr>),
}

impl Expr {
    /// Strips parentheses.
    pub fn unparen(&self) -> &Expr {
        match &self.kind {
            ExprKind::Paren(inner) => inner.unparen(),
            _ => self,
        }
    }

    /// The identifier name if this expression (ignoring parens) is a bare
    /// variable reference.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.unparen().kind {
            ExprKind::Ident(name) => Some(name),
            _ => None,
        }
    }
}

/// A single function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (`_` allowed).
    pub name: String,
    /// Declared type.
    pub ty: Type,
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Span covering the braces.
    pub span: Span,
}

/// One arm of a `select` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectCase {
    /// What this case waits for.
    pub kind: SelectCaseKind,
    /// The case body.
    pub body: Block,
    /// Span of the `case`/`default` header.
    pub span: Span,
}

/// The communication clause of a [`SelectCase`].
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are named self-descriptively
pub enum SelectCaseKind {
    /// `case v, ok := <-ch:` — either binding may be absent (`case <-ch:`).
    Recv {
        value: Option<String>,
        ok: Option<String>,
        chan: Expr,
    },
    /// `case ch <- v:`
    Send { chan: Expr, value: Expr },
    /// `default:`
    Default,
}

/// Assignment flavors for [`StmtKind::Assign`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
}

/// A statement with source identity.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement's payload.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
    /// Stable node identity.
    pub id: NodeId,
}

/// The payload of a [`Stmt`].
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are named self-descriptively
pub enum StmtKind {
    /// `a, b := rhs` — short variable declaration. Names may be `_`.
    Define { names: Vec<String>, rhs: Expr },
    /// `lhs, ... = rhs` (or `+=`/`-=` with a single target).
    Assign {
        lhs: Vec<Expr>,
        op: AssignOp,
        rhs: Expr,
    },
    /// `var name T [= init]`
    VarDecl {
        name: String,
        ty: Type,
        init: Option<Expr>,
    },
    /// `ch <- v`
    Send { chan: Expr, value: Expr },
    /// An expression evaluated for effect (calls, `<-ch`).
    Expr(Expr),
    /// `go call`
    Go(Expr),
    /// `defer call` (including `defer close(ch)` as a builtin call).
    Defer(Expr),
    /// `close(ch)`
    Close(Expr),
    /// `panic(v)`
    Panic(Expr),
    /// `return exprs`
    Return(Vec<Expr>),
    /// `if cond { .. } [else ..]`
    If {
        cond: Expr,
        then: Block,
        els: Option<Box<Stmt>>,
    },
    /// Three-clause / condition-only / infinite `for`.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        post: Option<Box<Stmt>>,
        body: Block,
    },
    /// `for v := range over { .. }` — `over` may be an int bound or a channel.
    ForRange {
        var: Option<String>,
        over: Expr,
        body: Block,
    },
    /// `select { cases }`
    Select(Vec<SelectCase>),
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `x++` / `x--`
    IncDec { target: Expr, inc: bool },
    /// A nested bare block.
    Block(Block),
}

/// A struct type declaration: `type Name struct { fields }`.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDecl {
    /// The declared type name.
    pub name: String,
    /// Field names and types, in order.
    pub fields: Vec<(String, Type)>,
    /// Span of the whole declaration.
    pub span: Span,
    /// Stable node identity.
    pub id: NodeId,
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Result types (empty for none).
    pub results: Vec<Type>,
    /// The function body.
    pub body: Block,
    /// Span of the whole declaration.
    pub span: Span,
    /// Stable node identity.
    pub id: NodeId,
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// A function.
    Func(FuncDecl),
    /// A struct type.
    Struct(StructDecl),
    /// A package-level `var`.
    #[allow(missing_docs)] // fields are named self-descriptively
    GlobalVar {
        name: String,
        ty: Type,
        init: Option<Expr>,
        span: Span,
        id: NodeId,
    },
}

/// A parsed GoLite source file.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The `package` clause name (defaults to `main`).
    pub package: String,
    /// Imported package paths, kept for faithful reprinting.
    pub imports: Vec<String>,
    /// Top-level declarations in source order.
    pub decls: Vec<Decl>,
    /// Number of [`NodeId`]s allocated while parsing; fresh ids for
    /// synthesized nodes should start here.
    pub next_node_id: u32,
}

impl Program {
    /// Looks up a function declaration by name.
    pub fn func(&self, name: &str) -> Option<&FuncDecl> {
        self.decls.iter().find_map(|d| match d {
            Decl::Func(f) if f.name == name => Some(f),
            _ => None,
        })
    }

    /// Looks up a struct declaration by name.
    pub fn struct_decl(&self, name: &str) -> Option<&StructDecl> {
        self.decls.iter().find_map(|d| match d {
            Decl::Struct(s) if s.name == name => Some(s),
            _ => None,
        })
    }

    /// Iterates over all function declarations.
    pub fn funcs(&self) -> impl Iterator<Item = &FuncDecl> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Func(f) => Some(f),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_orders_match_go() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn chan_elem_extraction() {
        let t = Type::Chan(Box::new(Type::Int));
        assert_eq!(t.chan_elem(), Some(&Type::Int));
        assert_eq!(Type::Int.chan_elem(), None);
    }

    #[test]
    fn modeled_primitives_are_channels_and_mutexes() {
        assert!(Type::Chan(Box::new(Type::Unit)).is_modeled_primitive());
        assert!(Type::Mutex.is_modeled_primitive());
        assert!(Type::Ptr(Box::new(Type::Mutex)).is_modeled_primitive());
        assert!(!Type::WaitGroup.is_modeled_primitive());
        assert!(!Type::Int.is_modeled_primitive());
    }

    #[test]
    fn unparen_and_as_ident() {
        let id = NodeId(0);
        let inner = Expr {
            kind: ExprKind::Ident("ch".into()),
            span: Span::synthetic(),
            id,
        };
        let wrapped = Expr {
            kind: ExprKind::Paren(Box::new(inner)),
            span: Span::synthetic(),
            id: NodeId(1),
        };
        assert_eq!(wrapped.as_ident(), Some("ch"));
    }
}
