//! Recursive-descent parser for GoLite.
//!
//! The grammar is the subset of Go that the GCatch/GFix analyses reason
//! about. Notable Go behaviors preserved here:
//!
//! * automatic semicolon insertion happens in the lexer;
//! * `<-` is not a binary operator, so `ch <- v` parses as a send statement
//!   and `<-ch` as a receive expression;
//! * composite literals are not allowed in `if`/`for` headers (Go's
//!   "composite literal ambiguity" rule), so `if x { ... }` always parses as
//!   a condition followed by a block.

use crate::ast::*;
use crate::lexer::{lex, LexError};
use crate::token::{Span, Token, TokenKind};

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Location of the offending token.
    pub span: Span,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parses a full GoLite source file.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error encountered.
///
/// # Examples
///
/// ```
/// let src = r#"
/// package main
///
/// func main() {
///     done := make(chan int, 1)
///     go func() {
///         done <- 1
///     }()
///     <-done
/// }
/// "#;
/// let prog = golite::parse(src)?;
/// assert!(prog.func("main").is_some());
/// # Ok::<(), golite::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_id: 0,
        no_composite: 0,
        depth: 0,
    };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
    /// Depth of contexts (if/for headers) where composite literals are banned.
    no_composite: u32,
    /// Current recursion depth of the nesting productions (expressions,
    /// blocks, types); capped at [`Parser::MAX_DEPTH`].
    depth: u32,
}

impl Parser {
    fn id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        let i = (self.pos + off).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected `{kind}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            span: self.span(),
        }
    }

    /// Hard cap on recursive-descent depth. Pathological nesting
    /// (`((((…))))`, `chan chan chan …`, thousand-deep blocks) gets a
    /// normal parse error at this depth instead of overflowing the stack,
    /// which no caller could contain. One nesting level costs the whole
    /// expression-precedence chain in stack frames, so the cap is sized
    /// for unoptimized builds on a 2 MiB thread stack (Rust's test-thread
    /// default) with room to spare.
    const MAX_DEPTH: u32 = 80;

    /// Enters one level of a nesting production, failing cleanly past
    /// [`Parser::MAX_DEPTH`]. Every `descend` is paired with a depth
    /// decrement in the guarded wrapper that called it.
    fn descend(&mut self) -> Result<(), ParseError> {
        if self.depth >= Self::MAX_DEPTH {
            return Err(self.err(format!(
                "nesting too deep (more than {} levels)",
                Self::MAX_DEPTH
            )));
        }
        self.depth += 1;
        Ok(())
    }

    fn skip_semis(&mut self) {
        while matches!(self.peek(), TokenKind::Semicolon) {
            self.bump();
        }
    }

    fn end_of_stmt(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            TokenKind::Semicolon => {
                self.bump();
                Ok(())
            }
            TokenKind::RBrace | TokenKind::Eof => Ok(()),
            other => Err(self.err(format!("expected end of statement, found `{other}`"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            TokenKind::Underscore => {
                self.bump();
                Ok("_".to_string())
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    // ---------------------------------------------------------------- program

    fn program(&mut self) -> Result<Program, ParseError> {
        self.skip_semis();
        let mut package = "main".to_string();
        if self.eat(&TokenKind::Package) {
            package = self.ident()?;
            self.end_of_stmt()?;
            self.skip_semis();
        }
        let mut imports = Vec::new();
        while matches!(self.peek(), TokenKind::Import) {
            self.bump();
            if self.eat(&TokenKind::LParen) {
                self.skip_semis();
                while !self.eat(&TokenKind::RParen) {
                    match self.bump().kind {
                        TokenKind::Str(path) => imports.push(path),
                        other => {
                            return Err(self.err(format!("expected import path, found `{other}`")))
                        }
                    }
                    self.skip_semis();
                }
            } else {
                match self.bump().kind {
                    TokenKind::Str(path) => imports.push(path),
                    other => return Err(self.err(format!("expected import path, found `{other}`"))),
                }
            }
            self.end_of_stmt()?;
            self.skip_semis();
        }

        let mut decls = Vec::new();
        loop {
            self.skip_semis();
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Func => decls.push(Decl::Func(self.func_decl()?)),
                TokenKind::Type => decls.push(Decl::Struct(self.struct_decl()?)),
                TokenKind::Var => {
                    let start = self.span();
                    self.bump();
                    let name = self.ident()?;
                    let ty = self.parse_type()?;
                    let init = if self.eat(&TokenKind::Assign) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    let id = self.id();
                    let span = start.to(self.prev_span());
                    self.end_of_stmt()?;
                    decls.push(Decl::GlobalVar {
                        name,
                        ty,
                        init,
                        span,
                        id,
                    });
                }
                other => return Err(self.err(format!("expected declaration, found `{other}`"))),
            }
        }
        Ok(Program {
            package,
            imports,
            decls,
            next_node_id: self.next_id,
        })
    }

    fn struct_decl(&mut self) -> Result<StructDecl, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::Type)?;
        let name = self.ident()?;
        self.expect(&TokenKind::Struct)?;
        self.expect(&TokenKind::LBrace)?;
        self.skip_semis();
        let mut fields = Vec::new();
        while !matches!(self.peek(), TokenKind::RBrace) {
            let mut names = vec![self.ident()?];
            while self.eat(&TokenKind::Comma) {
                names.push(self.ident()?);
            }
            let ty = self.parse_type()?;
            for n in names {
                fields.push((n, ty.clone()));
            }
            self.skip_semis();
        }
        self.expect(&TokenKind::RBrace)?;
        let id = self.id();
        let span = start.to(self.prev_span());
        self.end_of_stmt()?;
        Ok(StructDecl {
            name,
            fields,
            span,
            id,
        })
    }

    fn func_decl(&mut self) -> Result<FuncDecl, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::Func)?;
        let name = self.ident()?;
        let params = self.param_list()?;
        let results = self.result_types()?;
        let body = self.block()?;
        let id = self.id();
        let span = start.to(body.span);
        Ok(FuncDecl {
            name,
            params,
            results,
            body,
            span,
            id,
        })
    }

    fn param_list(&mut self) -> Result<Vec<Param>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::RParen) {
            return Ok(params);
        }
        loop {
            // Collect a run of names sharing one type: `a, b int`.
            let mut names = vec![self.ident()?];
            while self.eat(&TokenKind::Comma) {
                names.push(self.ident()?);
            }
            let ty = self.parse_type()?;
            for n in names {
                params.push(Param {
                    name: n,
                    ty: ty.clone(),
                });
            }
            if self.eat(&TokenKind::Comma) {
                continue;
            }
            self.expect(&TokenKind::RParen)?;
            break;
        }
        Ok(params)
    }

    fn result_types(&mut self) -> Result<Vec<Type>, ParseError> {
        if matches!(self.peek(), TokenKind::LBrace | TokenKind::Semicolon) {
            return Ok(Vec::new());
        }
        if self.eat(&TokenKind::LParen) {
            let mut tys = Vec::new();
            if !self.eat(&TokenKind::RParen) {
                loop {
                    // Allow optional names in result lists: `(n int, err error)`.
                    if matches!(self.peek(), TokenKind::Ident(_))
                        && matches!(
                            self.peek_at(1),
                            TokenKind::Ident(_)
                                | TokenKind::Chan
                                | TokenKind::Star
                                | TokenKind::LBracket
                                | TokenKind::Func
                                | TokenKind::Struct
                        )
                    {
                        self.bump(); // discard the result name
                    }
                    tys.push(self.parse_type()?);
                    if self.eat(&TokenKind::Comma) {
                        continue;
                    }
                    self.expect(&TokenKind::RParen)?;
                    break;
                }
            }
            Ok(tys)
        } else {
            Ok(vec![self.parse_type()?])
        }
    }

    // ------------------------------------------------------------------ types

    fn starts_type(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Ident(_)
                | TokenKind::Chan
                | TokenKind::Star
                | TokenKind::LBracket
                | TokenKind::Func
                | TokenKind::Struct
        )
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        self.descend()?;
        let result = self.parse_type_inner();
        self.depth -= 1;
        result
    }

    fn parse_type_inner(&mut self) -> Result<Type, ParseError> {
        match self.peek().clone() {
            TokenKind::Chan => {
                self.bump();
                let elem = self.parse_type()?;
                Ok(Type::Chan(Box::new(elem)))
            }
            TokenKind::Star => {
                self.bump();
                let inner = self.parse_type()?;
                Ok(Type::Ptr(Box::new(inner)))
            }
            TokenKind::LBracket => {
                self.bump();
                self.expect(&TokenKind::RBracket)?;
                let elem = self.parse_type()?;
                Ok(Type::Slice(Box::new(elem)))
            }
            TokenKind::Struct => {
                self.bump();
                self.expect(&TokenKind::LBrace)?;
                self.expect(&TokenKind::RBrace)?;
                Ok(Type::Unit)
            }
            TokenKind::Func => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mut params = Vec::new();
                if !self.eat(&TokenKind::RParen) {
                    loop {
                        params.push(self.parse_type()?);
                        if self.eat(&TokenKind::Comma) {
                            continue;
                        }
                        self.expect(&TokenKind::RParen)?;
                        break;
                    }
                }
                let results = if self.starts_type() || matches!(self.peek(), TokenKind::LParen) {
                    self.result_types()?
                } else {
                    Vec::new()
                };
                Ok(Type::Func(params, results))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::Dot) {
                    let member = self.ident()?;
                    return self.qualified_type(&name, &member);
                }
                Ok(match name.as_str() {
                    "int" => Type::Int,
                    "bool" => Type::Bool,
                    "string" => Type::String,
                    "error" => Type::Error,
                    _ => Type::Named(name),
                })
            }
            other => Err(self.err(format!("expected type, found `{other}`"))),
        }
    }

    fn qualified_type(&self, pkg: &str, member: &str) -> Result<Type, ParseError> {
        match (pkg, member) {
            ("sync", "Mutex") => Ok(Type::Mutex),
            ("sync", "RWMutex") => Ok(Type::RwMutex),
            ("sync", "WaitGroup") => Ok(Type::WaitGroup),
            ("sync", "Cond") => Ok(Type::Cond),
            ("context", "Context") => Ok(Type::Context),
            ("testing", "T") => Ok(Type::TestingT),
            _ => Ok(Type::Named(format!("{pkg}.{member}"))),
        }
    }

    // ------------------------------------------------------------- statements

    fn block(&mut self) -> Result<Block, ParseError> {
        self.descend()?;
        let result = self.block_inner();
        self.depth -= 1;
        result
    }

    fn block_inner(&mut self) -> Result<Block, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::LBrace)?;
        let saved = self.no_composite;
        self.no_composite = 0;
        let mut stmts = Vec::new();
        loop {
            self.skip_semis();
            if matches!(self.peek(), TokenKind::RBrace) {
                break;
            }
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.err("unexpected end of file inside block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        self.no_composite = saved;
        Ok(Block {
            stmts,
            span: start.to(self.prev_span()),
        })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Var => {
                self.bump();
                let name = self.ident()?;
                let ty = self.parse_type()?;
                let init = if self.eat(&TokenKind::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.finish_stmt(StmtKind::VarDecl { name, ty, init }, start, true)
            }
            TokenKind::Go => {
                self.bump();
                let call = self.expr()?;
                if !matches!(
                    call.unparen().kind,
                    ExprKind::Call { .. } | ExprKind::Method { .. }
                ) {
                    return Err(ParseError {
                        message: "`go` must be followed by a function call".into(),
                        span: call.span,
                    });
                }
                self.finish_stmt(StmtKind::Go(call), start, true)
            }
            TokenKind::Defer => {
                self.bump();
                let call = if matches!(self.peek(), TokenKind::Close) {
                    // `defer close(ch)` — represent close as a builtin call.
                    let cspan = self.span();
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let arg = self.expr()?;
                    self.expect(&TokenKind::RParen)?;
                    let callee = Expr {
                        kind: ExprKind::Ident("close".into()),
                        span: cspan,
                        id: self.id(),
                    };
                    Expr {
                        kind: ExprKind::Call {
                            callee: Box::new(callee),
                            args: vec![arg],
                        },
                        span: cspan.to(self.prev_span()),
                        id: self.id(),
                    }
                } else {
                    self.expr()?
                };
                if !matches!(
                    call.unparen().kind,
                    ExprKind::Call { .. } | ExprKind::Method { .. }
                ) {
                    return Err(ParseError {
                        message: "`defer` must be followed by a function call".into(),
                        span: call.span,
                    });
                }
                self.finish_stmt(StmtKind::Defer(call), start, true)
            }
            TokenKind::Close => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let ch = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.finish_stmt(StmtKind::Close(ch), start, true)
            }
            TokenKind::Panic => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let v = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.finish_stmt(StmtKind::Panic(v), start, true)
            }
            TokenKind::Return => {
                self.bump();
                let mut vals = Vec::new();
                if !matches!(self.peek(), TokenKind::Semicolon | TokenKind::RBrace) {
                    vals.push(self.expr()?);
                    while self.eat(&TokenKind::Comma) {
                        vals.push(self.expr()?);
                    }
                }
                self.finish_stmt(StmtKind::Return(vals), start, true)
            }
            TokenKind::If => self.if_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Select => self.select_stmt(),
            TokenKind::Break => {
                self.bump();
                self.finish_stmt(StmtKind::Break, start, true)
            }
            TokenKind::Continue => {
                self.bump();
                self.finish_stmt(StmtKind::Continue, start, true)
            }
            TokenKind::LBrace => {
                let b = self.block()?;
                self.finish_stmt(StmtKind::Block(b), start, true)
            }
            _ => {
                let s = self.simple_stmt()?;
                self.end_of_stmt()?;
                Ok(s)
            }
        }
    }

    fn finish_stmt(
        &mut self,
        kind: StmtKind,
        start: Span,
        eat_semi: bool,
    ) -> Result<Stmt, ParseError> {
        let span = start.to(self.prev_span());
        let id = self.id();
        if eat_semi {
            self.end_of_stmt()?;
        }
        Ok(Stmt { kind, span, id })
    }

    /// Parses a "simple statement": define, assign, send, inc/dec, or a bare
    /// expression. Does not consume the trailing semicolon.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        let first = self.expr()?;

        match self.peek().clone() {
            TokenKind::Arrow => {
                self.bump();
                let value = self.expr()?;
                let span = start.to(self.prev_span());
                let id = self.id();
                Ok(Stmt {
                    kind: StmtKind::Send { chan: first, value },
                    span,
                    id,
                })
            }
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let inc = matches!(self.peek(), TokenKind::PlusPlus);
                self.bump();
                let span = start.to(self.prev_span());
                let id = self.id();
                Ok(Stmt {
                    kind: StmtKind::IncDec { target: first, inc },
                    span,
                    id,
                })
            }
            TokenKind::Comma
            | TokenKind::Define
            | TokenKind::Assign
            | TokenKind::PlusAssign
            | TokenKind::MinusAssign => {
                let mut lhs = vec![first];
                while self.eat(&TokenKind::Comma) {
                    lhs.push(self.expr()?);
                }
                match self.peek().clone() {
                    TokenKind::Define => {
                        self.bump();
                        let mut names = Vec::with_capacity(lhs.len());
                        for e in &lhs {
                            match e.as_ident() {
                                Some(n) => names.push(n.to_string()),
                                None => {
                                    return Err(ParseError {
                                        message: "left side of `:=` must be identifiers".into(),
                                        span: e.span,
                                    })
                                }
                            }
                        }
                        let rhs = self.expr()?;
                        let span = start.to(self.prev_span());
                        let id = self.id();
                        Ok(Stmt {
                            kind: StmtKind::Define { names, rhs },
                            span,
                            id,
                        })
                    }
                    TokenKind::Assign => {
                        self.bump();
                        let rhs = self.expr()?;
                        let span = start.to(self.prev_span());
                        let id = self.id();
                        Ok(Stmt {
                            kind: StmtKind::Assign {
                                lhs,
                                op: AssignOp::Assign,
                                rhs,
                            },
                            span,
                            id,
                        })
                    }
                    TokenKind::PlusAssign | TokenKind::MinusAssign => {
                        let op = if matches!(self.peek(), TokenKind::PlusAssign) {
                            AssignOp::AddAssign
                        } else {
                            AssignOp::SubAssign
                        };
                        self.bump();
                        if lhs.len() != 1 {
                            return Err(self.err("compound assignment takes exactly one target"));
                        }
                        let rhs = self.expr()?;
                        let span = start.to(self.prev_span());
                        let id = self.id();
                        Ok(Stmt {
                            kind: StmtKind::Assign { lhs, op, rhs },
                            span,
                            id,
                        })
                    }
                    other => Err(self.err(format!("expected `:=` or `=`, found `{other}`"))),
                }
            }
            _ => {
                let span = first.span;
                let id = self.id();
                Ok(Stmt {
                    kind: StmtKind::Expr(first),
                    span,
                    id,
                })
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::If)?;
        self.no_composite += 1;
        let cond = self.expr()?;
        self.no_composite -= 1;
        let then = self.block()?;
        let els = if self.eat(&TokenKind::Else) {
            if matches!(self.peek(), TokenKind::If) {
                Some(Box::new(self.if_stmt()?))
            } else {
                let b = self.block()?;
                let span = b.span;
                let id = self.id();
                Some(Box::new(Stmt {
                    kind: StmtKind::Block(b),
                    span,
                    id,
                }))
            }
        } else {
            None
        };
        let span = start.to(self.prev_span());
        let id = self.id();
        self.skip_semis();
        Ok(Stmt {
            kind: StmtKind::If { cond, then, els },
            span,
            id,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::For)?;

        // `for { ... }` — infinite loop.
        if matches!(self.peek(), TokenKind::LBrace) {
            let body = self.block()?;
            let span = start.to(self.prev_span());
            let id = self.id();
            self.skip_semis();
            return Ok(Stmt {
                kind: StmtKind::For {
                    init: None,
                    cond: None,
                    post: None,
                    body,
                },
                span,
                id,
            });
        }

        // `for range e` / `for v := range e`.
        self.no_composite += 1;
        let result = (|| {
            if matches!(self.peek(), TokenKind::Range) {
                self.bump();
                let over = self.expr()?;
                let body_start = self.span();
                let _ = body_start;
                return Ok(Some((None, over)));
            }
            if let (TokenKind::Ident(v), TokenKind::Define, TokenKind::Range) = (
                self.peek().clone(),
                self.peek_at(1).clone(),
                self.peek_at(2).clone(),
            ) {
                self.bump();
                self.bump();
                self.bump();
                let over = self.expr()?;
                return Ok(Some((Some(v), over)));
            }
            Ok(None)
        })();
        let ranged = match result {
            Ok(r) => r,
            Err(e) => {
                self.no_composite -= 1;
                return Err(e);
            }
        };
        if let Some((var, over)) = ranged {
            self.no_composite -= 1;
            let body = self.block()?;
            let span = start.to(self.prev_span());
            let id = self.id();
            self.skip_semis();
            return Ok(Stmt {
                kind: StmtKind::ForRange { var, over, body },
                span,
                id,
            });
        }

        // Three-clause or condition-only loop. Parse the first clause, then
        // decide based on the delimiter.
        let first: Option<Stmt> = if matches!(self.peek(), TokenKind::Semicolon) {
            None
        } else {
            Some(self.simple_stmt()?)
        };

        let (init, cond, post) = if self.eat(&TokenKind::Semicolon) {
            let cond = if matches!(self.peek(), TokenKind::Semicolon) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&TokenKind::Semicolon)?;
            let post = if matches!(self.peek(), TokenKind::LBrace) {
                None
            } else {
                Some(Box::new(self.simple_stmt()?))
            };
            (first.map(Box::new), cond, post)
        } else {
            // Condition-only: `for cond { ... }`.
            match first {
                Some(Stmt {
                    kind: StmtKind::Expr(e),
                    ..
                }) => (None, Some(e), None),
                _ => return Err(self.err("expected loop condition")),
            }
        };
        self.no_composite -= 1;

        let body = self.block()?;
        let span = start.to(self.prev_span());
        let id = self.id();
        self.skip_semis();
        Ok(Stmt {
            kind: StmtKind::For {
                init,
                cond,
                post,
                body,
            },
            span,
            id,
        })
    }

    fn select_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::Select)?;
        self.expect(&TokenKind::LBrace)?;
        let mut cases = Vec::new();
        loop {
            self.skip_semis();
            if self.eat(&TokenKind::RBrace) {
                break;
            }
            let case_start = self.span();
            let kind = if self.eat(&TokenKind::Default) {
                self.expect(&TokenKind::Colon)?;
                SelectCaseKind::Default
            } else {
                self.expect(&TokenKind::Case)?;
                self.select_comm()?
            };
            // Body: statements until the next `case`/`default`/`}`.
            let mut stmts = Vec::new();
            loop {
                self.skip_semis();
                if matches!(
                    self.peek(),
                    TokenKind::Case | TokenKind::Default | TokenKind::RBrace
                ) {
                    break;
                }
                stmts.push(self.stmt()?);
            }
            let body_span = stmts
                .first()
                .map(|s: &Stmt| s.span.to(stmts.last().unwrap().span))
                .unwrap_or(case_start);
            cases.push(SelectCase {
                kind,
                body: Block {
                    stmts,
                    span: body_span,
                },
                span: case_start,
            });
        }
        let span = start.to(self.prev_span());
        let id = self.id();
        self.skip_semis();
        Ok(Stmt {
            kind: StmtKind::Select(cases),
            span,
            id,
        })
    }

    fn select_comm(&mut self) -> Result<SelectCaseKind, ParseError> {
        // `case <-ch:`
        if matches!(self.peek(), TokenKind::Arrow) {
            self.bump();
            let chan = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            return Ok(SelectCaseKind::Recv {
                value: None,
                ok: None,
                chan,
            });
        }
        // `case v := <-ch:` / `case v, ok := <-ch:`
        let is_recv_bind = matches!(self.peek(), TokenKind::Ident(_) | TokenKind::Underscore)
            && (matches!(self.peek_at(1), TokenKind::Define)
                || (matches!(self.peek_at(1), TokenKind::Comma)
                    && matches!(self.peek_at(2), TokenKind::Ident(_) | TokenKind::Underscore)
                    && matches!(self.peek_at(3), TokenKind::Define)));
        if is_recv_bind {
            let value = self.ident()?;
            let ok = if self.eat(&TokenKind::Comma) {
                Some(self.ident()?)
            } else {
                None
            };
            self.expect(&TokenKind::Define)?;
            self.expect(&TokenKind::Arrow)?;
            let chan = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            return Ok(SelectCaseKind::Recv {
                value: Some(value),
                ok,
                chan,
            });
        }
        // `case ch <- v:`
        let chan = self.expr()?;
        self.expect(&TokenKind::Arrow)?;
        let value = self.expr()?;
        self.expect(&TokenKind::Colon)?;
        Ok(SelectCaseKind::Send { chan, value })
    }

    // ------------------------------------------------------------ expressions

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::OrOr => BinOp::Or,
                TokenKind::AndAnd => BinOp::And,
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            let span = lhs.span.to(rhs.span);
            let id = self.id();
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
                id,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        self.descend()?;
        let result = self.unary_expr_inner();
        self.depth -= 1;
        result
    }

    fn unary_expr_inner(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Not => Some(UnOp::Not),
            TokenKind::Amp => Some(UnOp::Addr),
            TokenKind::Star => Some(UnOp::Deref),
            TokenKind::Arrow => {
                self.bump();
                let inner = self.unary_expr()?;
                let span = start.to(inner.span);
                let id = self.id();
                return Ok(Expr {
                    kind: ExprKind::Recv(Box::new(inner)),
                    span,
                    id,
                });
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let inner = self.unary_expr()?;
            let span = start.to(inner.span);
            let id = self.id();
            return Ok(Expr {
                kind: ExprKind::Unary(op, Box::new(inner)),
                span,
                id,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    self.bump();
                    let args = self.call_args()?;
                    let span = e.span.to(self.prev_span());
                    let id = self.id();
                    // A call on a field access is a method call.
                    e = match e.kind {
                        ExprKind::Field { obj, name } => Expr {
                            kind: ExprKind::Method {
                                recv: obj,
                                name,
                                args,
                            },
                            span,
                            id,
                        },
                        _ => Expr {
                            kind: ExprKind::Call {
                                callee: Box::new(e),
                                args,
                            },
                            span,
                            id,
                        },
                    };
                }
                TokenKind::Dot => {
                    self.bump();
                    let name = self.ident()?;
                    let span = e.span.to(self.prev_span());
                    let id = self.id();
                    e = Expr {
                        kind: ExprKind::Field {
                            obj: Box::new(e),
                            name,
                        },
                        span,
                        id,
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    let span = e.span.to(self.prev_span());
                    let id = self.id();
                    e = Expr {
                        kind: ExprKind::Index {
                            obj: Box::new(e),
                            index: Box::new(index),
                        },
                        span,
                        id,
                    };
                }
                TokenKind::LBrace if self.composite_allowed(&e) => {
                    let name = e
                        .as_ident()
                        .expect("checked by composite_allowed")
                        .to_string();
                    let fields = self.composite_body()?;
                    let span = e.span.to(self.prev_span());
                    let id = self.id();
                    e = Expr {
                        kind: ExprKind::Composite {
                            ty: Type::Named(name),
                            fields,
                        },
                        span,
                        id,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    /// Whether `e {` should be parsed as a composite literal. Mirrors Go's
    /// rule: composite literals of named types are not allowed in `if`/`for`
    /// headers, and only identifiers starting with an uppercase letter (our
    /// corpus convention for struct types) are treated as literal heads.
    fn composite_allowed(&self, e: &Expr) -> bool {
        if self.no_composite > 0 {
            return false;
        }
        match e.as_ident() {
            Some(name) => name.chars().next().is_some_and(|c| c.is_ascii_uppercase()),
            None => false,
        }
    }

    fn composite_body(&mut self) -> Result<Vec<(Option<String>, Expr)>, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        self.skip_semis();
        while !matches!(self.peek(), TokenKind::RBrace) {
            // `name: value` or positional `value`.
            let named = matches!(self.peek(), TokenKind::Ident(_))
                && matches!(self.peek_at(1), TokenKind::Colon);
            if named {
                let name = self.ident()?;
                self.expect(&TokenKind::Colon)?;
                let value = self.expr()?;
                fields.push((Some(name), value));
            } else {
                fields.push((None, self.expr()?));
            }
            if !self.eat(&TokenKind::Comma) {
                self.skip_semis();
                break;
            }
            self.skip_semis();
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(fields)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let saved = self.no_composite;
        self.no_composite = 0;
        let mut args = Vec::new();
        if self.eat(&TokenKind::RParen) {
            self.no_composite = saved;
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat(&TokenKind::Comma) {
                continue;
            }
            self.expect(&TokenKind::RParen)?;
            break;
        }
        self.no_composite = saved;
        Ok(args)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                let id = self.id();
                Ok(Expr {
                    kind: ExprKind::Int(v),
                    span: start,
                    id,
                })
            }
            TokenKind::Str(s) => {
                self.bump();
                let id = self.id();
                Ok(Expr {
                    kind: ExprKind::Str(s),
                    span: start,
                    id,
                })
            }
            TokenKind::True => {
                self.bump();
                let id = self.id();
                Ok(Expr {
                    kind: ExprKind::Bool(true),
                    span: start,
                    id,
                })
            }
            TokenKind::False => {
                self.bump();
                let id = self.id();
                Ok(Expr {
                    kind: ExprKind::Bool(false),
                    span: start,
                    id,
                })
            }
            TokenKind::Nil => {
                self.bump();
                let id = self.id();
                Ok(Expr {
                    kind: ExprKind::Nil,
                    span: start,
                    id,
                })
            }
            TokenKind::Underscore => {
                self.bump();
                let id = self.id();
                Ok(Expr {
                    kind: ExprKind::Ident("_".into()),
                    span: start,
                    id,
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                let id = self.id();
                Ok(Expr {
                    kind: ExprKind::Ident(name),
                    span: start,
                    id,
                })
            }
            TokenKind::Struct => {
                // `struct{}{}` — unit literal.
                self.bump();
                self.expect(&TokenKind::LBrace)?;
                self.expect(&TokenKind::RBrace)?;
                self.expect(&TokenKind::LBrace)?;
                self.expect(&TokenKind::RBrace)?;
                let span = start.to(self.prev_span());
                let id = self.id();
                Ok(Expr {
                    kind: ExprKind::UnitLit,
                    span,
                    id,
                })
            }
            TokenKind::Make => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let ty = self.parse_type()?;
                let cap = if self.eat(&TokenKind::Comma) {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.expect(&TokenKind::RParen)?;
                let span = start.to(self.prev_span());
                let id = self.id();
                Ok(Expr {
                    kind: ExprKind::Make { ty, cap },
                    span,
                    id,
                })
            }
            TokenKind::Func => {
                self.bump();
                let params = self.param_list()?;
                let results = self.result_types()?;
                let saved = self.no_composite;
                self.no_composite = 0;
                let body = self.block()?;
                self.no_composite = saved;
                let span = start.to(self.prev_span());
                let id = self.id();
                Ok(Expr {
                    kind: ExprKind::Closure {
                        params,
                        results,
                        body,
                    },
                    span,
                    id,
                })
            }
            TokenKind::LParen => {
                self.bump();
                let saved = self.no_composite;
                self.no_composite = 0;
                let inner = self.expr()?;
                self.no_composite = saved;
                self.expect(&TokenKind::RParen)?;
                let span = start.to(self.prev_span());
                let id = self.id();
                Ok(Expr {
                    kind: ExprKind::Paren(Box::new(inner)),
                    span,
                    id,
                })
            }
            TokenKind::LBracket => {
                // `[]T{...}` slice literal.
                let ty = self.parse_type()?;
                let fields = self.composite_body()?;
                let span = start.to(self.prev_span());
                let id = self.id();
                Ok(Expr {
                    kind: ExprKind::Composite { ty, fields },
                    span,
                    id,
                })
            }
            other => Err(self.err(format!("expected expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn must(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
    }

    #[test]
    fn parses_figure1_docker_bug() {
        let src = r#"
package main

func Exec(ctx context.Context) (string, error) {
    outDone := make(chan error)
    go func() {
        err := StdCopy()
        outDone <- err
    }()
    select {
    case err := <-outDone:
        if err != nil {
            return "", err
        }
    case <-ctx.Done():
        return "", ctx.Err()
    }
    return "ok", nil
}

func StdCopy() error {
    return nil
}
"#;
        let prog = must(src);
        let exec = prog.func("Exec").unwrap();
        assert_eq!(exec.params.len(), 1);
        assert_eq!(exec.params[0].ty, Type::Context);
        assert_eq!(exec.results.len(), 2);
        // Body: define, go, select, return.
        assert_eq!(exec.body.stmts.len(), 4);
        assert!(matches!(exec.body.stmts[1].kind, StmtKind::Go(_)));
        match &exec.body.stmts[2].kind {
            StmtKind::Select(cases) => {
                assert_eq!(cases.len(), 2);
                assert!(matches!(
                    cases[0].kind,
                    SelectCaseKind::Recv { value: Some(_), .. }
                ));
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_figure3_etcd_bug() {
        let src = r#"
func TestRWDialer(t *testing.T) {
    stop := make(chan struct{})
    go Start(stop)
    conn, err := Dial()
    if err != nil {
        t.Fatalf("dial failed")
    }
    _ = conn
    stop <- struct{}{}
}
"#;
        let prog = must(src);
        let f = prog.func("TestRWDialer").unwrap();
        assert_eq!(f.params[0].ty, Type::Ptr(Box::new(Type::TestingT)));
        let last = f.body.stmts.last().unwrap();
        match &last.kind {
            StmtKind::Send { value, .. } => assert!(matches!(value.kind, ExprKind::UnitLit)),
            other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn parses_figure4_geth_bug() {
        let src = r#"
func Interactive() {
    scheduler := make(chan string)
    go func() {
        for {
            line, err := Input()
            if err != nil {
                close(scheduler)
                return
            }
            scheduler <- line
        }
    }()
    for {
        select {
        case <-abort:
            return
        case _, ok := <-scheduler:
            if !ok {
                return
            }
        }
    }
}
"#;
        let prog = must(src);
        let f = prog.func("Interactive").unwrap();
        assert_eq!(f.body.stmts.len(), 3);
        match &f.body.stmts[2].kind {
            StmtKind::For {
                body, cond: None, ..
            } => match &body.stmts[0].kind {
                StmtKind::Select(cases) => {
                    assert!(matches!(
                        &cases[1].kind,
                        SelectCaseKind::Recv { value: Some(v), ok: Some(_), .. } if v == "_"
                    ));
                }
                other => panic!("expected select, got {other:?}"),
            },
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn send_vs_recv_disambiguation() {
        let prog = must("func f(ch chan int) {\n ch <- 1\n x := <-ch\n _ = x\n}");
        let f = prog.func("f").unwrap();
        assert!(matches!(f.body.stmts[0].kind, StmtKind::Send { .. }));
        match &f.body.stmts[1].kind {
            StmtKind::Define { rhs, .. } => assert!(matches!(rhs.kind, ExprKind::Recv(_))),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn three_clause_for_loop() {
        let prog = must("func f() {\n for i := 0; i < 10; i++ {\n  work(i)\n }\n}");
        let f = prog.func("f").unwrap();
        match &f.body.stmts[0].kind {
            StmtKind::For {
                init: Some(_),
                cond: Some(_),
                post: Some(_),
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn range_loop_over_int() {
        let prog = must("func f(n int) {\n for i := range n {\n  work(i)\n }\n}");
        match &prog.func("f").unwrap().body.stmts[0].kind {
            StmtKind::ForRange { var: Some(v), .. } => assert_eq!(v, "i"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn mutex_methods_parse_as_method_calls() {
        let prog = must("func f() {\n var mu sync.Mutex\n mu.Lock()\n mu.Unlock()\n}");
        let f = prog.func("f").unwrap();
        match &f.body.stmts[1].kind {
            StmtKind::Expr(e) => match &e.kind {
                ExprKind::Method { name, .. } => assert_eq!(name, "Lock"),
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn defer_close_and_defer_closure() {
        let prog =
            must("func f(ch chan int) {\n defer close(ch)\n defer func() {\n  ch <- 1\n }()\n}");
        let f = prog.func("f").unwrap();
        assert!(matches!(f.body.stmts[0].kind, StmtKind::Defer(_)));
        assert!(matches!(f.body.stmts[1].kind, StmtKind::Defer(_)));
    }

    #[test]
    fn go_requires_call() {
        assert!(parse("func f() {\n go 1\n}").is_err());
        assert!(parse("func f(g func()) {\n go g()\n}").is_ok());
    }

    #[test]
    fn struct_decl_and_composite_literal() {
        let src =
            "type Pair struct {\n a int\n b int\n}\nfunc f() Pair {\n return Pair{a: 1, b: 2}\n}";
        let prog = must(src);
        let s = prog.struct_decl("Pair").unwrap();
        assert_eq!(s.fields.len(), 2);
        match &prog.func("f").unwrap().body.stmts[0].kind {
            StmtKind::Return(vals) => {
                assert!(matches!(vals[0].kind, ExprKind::Composite { .. }))
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn composite_banned_in_if_header() {
        // `if x {` must parse the block, not a composite literal, even when
        // a struct named `x`... (uppercase convention: use lowercase here).
        let prog = must("func f(x bool) {\n if x {\n  work()\n }\n}");
        assert!(matches!(
            prog.func("f").unwrap().body.stmts[0].kind,
            StmtKind::If { .. }
        ));
    }

    #[test]
    fn select_with_default() {
        let src = "func f(ch chan int) {\n select {\n case ch <- 1:\n  done()\n default:\n }\n}";
        let prog = must(src);
        match &prog.func("f").unwrap().body.stmts[0].kind {
            StmtKind::Select(cases) => {
                assert_eq!(cases.len(), 2);
                assert!(matches!(cases[0].kind, SelectCaseKind::Send { .. }));
                assert!(matches!(cases[1].kind, SelectCaseKind::Default));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn multi_return_and_multi_assign() {
        let src = "func two() (int, error) {\n return 1, nil\n}\nfunc f() {\n a, err := two()\n _ = a\n _ = err\n}";
        let prog = must(src);
        match &prog.func("f").unwrap().body.stmts[0].kind {
            StmtKind::Define { names, .. } => assert_eq!(names, &["a", "err"]),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn grouped_params_share_type() {
        let prog = must("func f(a, b int, ch chan bool) {\n}");
        let f = prog.func("f").unwrap();
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0].ty, Type::Int);
        assert_eq!(f.params[1].ty, Type::Int);
        assert_eq!(f.params[2].ty, Type::Chan(Box::new(Type::Bool)));
    }

    #[test]
    fn global_var_and_imports() {
        let src = "package main\nimport (\n \"sync\"\n \"testing\"\n)\nvar abort chan struct{}\nfunc f() {\n}";
        let prog = must(src);
        assert_eq!(prog.imports, vec!["sync", "testing"]);
        assert!(matches!(prog.decls[0], Decl::GlobalVar { .. }));
    }

    #[test]
    fn waitgroup_methods() {
        let src = "func f() {\n var wg sync.WaitGroup\n wg.Add(1)\n go func() {\n  wg.Done()\n }()\n wg.Wait()\n}";
        must(src);
    }

    #[test]
    fn channel_in_slice_and_index() {
        let src = "func f(chans []chan int) {\n ch := chans[0]\n <-ch\n}";
        let prog = must(src);
        match &prog.func("f").unwrap().body.stmts[0].kind {
            StmtKind::Define { rhs, .. } => assert!(matches!(rhs.kind, ExprKind::Index { .. })),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn nested_select_in_loop_with_break() {
        let src = "func f(a chan int, stop chan struct{}) {\n for {\n  select {\n  case v := <-a:\n   use(v)\n  case <-stop:\n   return\n  }\n }\n}";
        must(src);
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse("func f() { ch <- }").is_err());
        assert!(parse("func f() { select { case } }").is_err());
        assert!(parse("func { }").is_err());
    }

    /// Pathological nesting must yield a normal parse error — never a
    /// stack overflow, which would abort the process uncatchably.
    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        let depth = 5000;
        let parens = format!(
            "func f(a int) int {{ return {}a{} }}",
            "(".repeat(depth),
            ")".repeat(depth)
        );
        let err = parse(&parens).expect_err("deep parens must fail");
        assert!(err.message.contains("nesting too deep"), "{}", err.message);

        let negs = format!("func f(a int) int {{ return {}a }}", "-".repeat(depth));
        assert!(parse(&negs).is_err(), "deep unary chain must fail");

        let chans = format!("func f(c {} int) {{}}", "chan ".repeat(depth));
        assert!(parse(&chans).is_err(), "deep chan type must fail");

        let blocks = format!(
            "func f() {{ {}{} }}",
            "{ ".repeat(depth),
            "} ".repeat(depth)
        );
        assert!(parse(&blocks).is_err(), "deep blocks must fail");

        // Reasonable nesting (well under the cap) still parses.
        let ok = format!(
            "func f(a int) int {{ return {}a{} }}",
            "(".repeat(50),
            ")".repeat(50)
        );
        assert!(parse(&ok).is_ok(), "shallow nesting must still parse");
    }

    #[test]
    fn if_else_if_chain() {
        let src = "func f(a int) int {\n if a > 1 {\n  return 1\n } else if a > 0 {\n  return 2\n } else {\n  return 3\n }\n}";
        let prog = must(src);
        match &prog.func("f").unwrap().body.stmts[0].kind {
            StmtKind::If { els: Some(e), .. } => {
                assert!(matches!(e.kind, StmtKind::If { .. }))
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn precedence_in_conditions() {
        let src = "func f(a, b int) bool {\n return a+1 < b*2 && b != 0 || a == 3\n}";
        let prog = must(src);
        match &prog.func("f").unwrap().body.stmts[0].kind {
            StmtKind::Return(vals) => match &vals[0].kind {
                ExprKind::Binary(BinOp::Or, _, _) => {}
                other => panic!("expected top-level ||, got {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn context_with_cancel_pattern() {
        let src = "func f() {\n ctx, cancel := context.WithCancel(context.Background())\n defer cancel()\n <-ctx.Done()\n}";
        must(src);
    }
}
