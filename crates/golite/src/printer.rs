//! Canonical source printer for GoLite ASTs.
//!
//! The printer emits `gofmt`-style output (tab indentation, one statement per
//! line). GFix synthesizes patches by transforming the AST and reprinting, so
//! the printer is the ground truth for the "changed lines of code" readability
//! metric (§5.3 of the paper): printing is deterministic, and reprinting an
//! unmodified AST reproduces the same lines, so diffs contain exactly the
//! patched statements.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program as canonical GoLite source.
pub fn print_program(prog: &Program) -> String {
    let mut p = Printer {
        out: String::new(),
        indent: 0,
    };
    p.program(prog);
    p.out
}

/// Renders a single statement (at zero indentation). Useful in bug reports.
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer {
        out: String::new(),
        indent: 0,
    };
    p.stmt(stmt);
    p.out.trim_end().to_string()
}

/// Renders a single expression. Useful in bug reports.
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer {
        out: String::new(),
        indent: 0,
    };
    p.expr(expr);
    p.out
}

/// Renders a type.
pub fn print_type(ty: &Type) -> String {
    let mut p = Printer {
        out: String::new(),
        indent: 0,
    };
    p.ty(ty);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push('\t');
        }
    }

    fn program(&mut self, prog: &Program) {
        let _ = write!(self.out, "package {}", prog.package);
        self.nl();
        if !prog.imports.is_empty() {
            self.nl();
            if prog.imports.len() == 1 {
                let _ = write!(self.out, "import {:?}", prog.imports[0]);
                self.nl();
            } else {
                self.out.push_str("import (");
                self.indent += 1;
                for imp in &prog.imports {
                    self.nl();
                    let _ = write!(self.out, "{imp:?}");
                }
                self.indent -= 1;
                self.nl();
                self.out.push(')');
                self.nl();
            }
        }
        for decl in &prog.decls {
            self.nl();
            match decl {
                Decl::Func(f) => self.func_decl(f),
                Decl::Struct(s) => self.struct_decl(s),
                Decl::GlobalVar { name, ty, init, .. } => {
                    let _ = write!(self.out, "var {name} ");
                    self.ty(ty);
                    if let Some(init) = init {
                        self.out.push_str(" = ");
                        self.expr(init);
                    }
                    self.nl();
                }
            }
        }
    }

    fn struct_decl(&mut self, s: &StructDecl) {
        let _ = write!(self.out, "type {} struct {{", s.name);
        self.indent += 1;
        for (name, ty) in &s.fields {
            self.nl();
            let _ = write!(self.out, "{name} ");
            self.ty(ty);
        }
        self.indent -= 1;
        self.nl();
        self.out.push('}');
        self.nl();
    }

    fn func_decl(&mut self, f: &FuncDecl) {
        let _ = write!(self.out, "func {}", f.name);
        self.signature(&f.params, &f.results);
        self.out.push(' ');
        self.block(&f.body);
        self.nl();
    }

    fn signature(&mut self, params: &[Param], results: &[Type]) {
        self.out.push('(');
        for (i, p) in params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let _ = write!(self.out, "{} ", p.name);
            self.ty(&p.ty);
        }
        self.out.push(')');
        match results.len() {
            0 => {}
            1 => {
                self.out.push(' ');
                self.ty(&results[0]);
            }
            _ => {
                self.out.push_str(" (");
                for (i, t) in results.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.ty(t);
                }
                self.out.push(')');
            }
        }
    }

    fn ty(&mut self, ty: &Type) {
        match ty {
            Type::Int => self.out.push_str("int"),
            Type::Bool => self.out.push_str("bool"),
            Type::String => self.out.push_str("string"),
            Type::Error => self.out.push_str("error"),
            Type::Unit => self.out.push_str("struct{}"),
            Type::Chan(t) => {
                self.out.push_str("chan ");
                self.ty(t);
            }
            Type::Ptr(t) => {
                self.out.push('*');
                self.ty(t);
            }
            Type::Slice(t) => {
                self.out.push_str("[]");
                self.ty(t);
            }
            Type::Mutex => self.out.push_str("sync.Mutex"),
            Type::RwMutex => self.out.push_str("sync.RWMutex"),
            Type::WaitGroup => self.out.push_str("sync.WaitGroup"),
            Type::Cond => self.out.push_str("sync.Cond"),
            Type::Context => self.out.push_str("context.Context"),
            Type::TestingT => self.out.push_str("testing.T"),
            Type::Func(params, results) => {
                self.out.push_str("func(");
                for (i, t) in params.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.ty(t);
                }
                self.out.push(')');
                match results.len() {
                    0 => {}
                    1 => {
                        self.out.push(' ');
                        self.ty(&results[0]);
                    }
                    _ => {
                        self.out.push_str(" (");
                        for (i, t) in results.iter().enumerate() {
                            if i > 0 {
                                self.out.push_str(", ");
                            }
                            self.ty(t);
                        }
                        self.out.push(')');
                    }
                }
            }
            Type::Named(name) => self.out.push_str(name),
        }
    }

    fn block(&mut self, b: &Block) {
        self.out.push('{');
        self.indent += 1;
        for stmt in &b.stmts {
            self.nl();
            self.stmt(stmt);
        }
        self.indent -= 1;
        self.nl();
        self.out.push('}');
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Define { names, rhs } => {
                self.out.push_str(&names.join(", "));
                self.out.push_str(" := ");
                self.expr(rhs);
            }
            StmtKind::Assign { lhs, op, rhs } => {
                for (i, e) in lhs.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(e);
                }
                self.out.push_str(match op {
                    AssignOp::Assign => " = ",
                    AssignOp::AddAssign => " += ",
                    AssignOp::SubAssign => " -= ",
                });
                self.expr(rhs);
            }
            StmtKind::VarDecl { name, ty, init } => {
                let _ = write!(self.out, "var {name} ");
                self.ty(ty);
                if let Some(init) = init {
                    self.out.push_str(" = ");
                    self.expr(init);
                }
            }
            StmtKind::Send { chan, value } => {
                self.expr(chan);
                self.out.push_str(" <- ");
                self.expr(value);
            }
            StmtKind::Expr(e) => self.expr(e),
            StmtKind::Go(call) => {
                self.out.push_str("go ");
                self.expr(call);
            }
            StmtKind::Defer(call) => {
                self.out.push_str("defer ");
                self.expr(call);
            }
            StmtKind::Close(ch) => {
                self.out.push_str("close(");
                self.expr(ch);
                self.out.push(')');
            }
            StmtKind::Panic(v) => {
                self.out.push_str("panic(");
                self.expr(v);
                self.out.push(')');
            }
            StmtKind::Return(vals) => {
                self.out.push_str("return");
                for (i, v) in vals.iter().enumerate() {
                    self.out.push_str(if i == 0 { " " } else { ", " });
                    self.expr(v);
                }
            }
            StmtKind::If { cond, then, els } => {
                self.out.push_str("if ");
                self.expr(cond);
                self.out.push(' ');
                self.block(then);
                if let Some(els) = els {
                    self.out.push_str(" else ");
                    match &els.kind {
                        StmtKind::Block(b) => self.block(b),
                        _ => self.stmt(els),
                    }
                }
            }
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => {
                self.out.push_str("for ");
                match (init, cond, post) {
                    (None, None, None) => {}
                    (None, Some(c), None) => {
                        self.expr(c);
                        self.out.push(' ');
                    }
                    _ => {
                        if let Some(i) = init {
                            self.stmt(i);
                        }
                        self.out.push_str("; ");
                        if let Some(c) = cond {
                            self.expr(c);
                        }
                        self.out.push_str("; ");
                        if let Some(p) = post {
                            self.stmt(p);
                        }
                        self.out.push(' ');
                    }
                }
                self.block(body);
            }
            StmtKind::ForRange { var, over, body } => {
                self.out.push_str("for ");
                if let Some(v) = var {
                    let _ = write!(self.out, "{v} := ");
                }
                self.out.push_str("range ");
                self.expr(over);
                self.out.push(' ');
                self.block(body);
            }
            StmtKind::Select(cases) => {
                self.out.push_str("select {");
                for case in cases {
                    self.nl();
                    match &case.kind {
                        SelectCaseKind::Recv { value, ok, chan } => {
                            self.out.push_str("case ");
                            match (value, ok) {
                                (Some(v), Some(o)) => {
                                    let _ = write!(self.out, "{v}, {o} := ");
                                }
                                (Some(v), None) => {
                                    let _ = write!(self.out, "{v} := ");
                                }
                                _ => {}
                            }
                            self.out.push_str("<-");
                            self.expr(chan);
                            self.out.push(':');
                        }
                        SelectCaseKind::Send { chan, value } => {
                            self.out.push_str("case ");
                            self.expr(chan);
                            self.out.push_str(" <- ");
                            self.expr(value);
                            self.out.push(':');
                        }
                        SelectCaseKind::Default => self.out.push_str("default:"),
                    }
                    self.indent += 1;
                    for stmt in &case.body.stmts {
                        self.nl();
                        self.stmt(stmt);
                    }
                    self.indent -= 1;
                }
                self.nl();
                self.out.push('}');
            }
            StmtKind::Break => self.out.push_str("break"),
            StmtKind::Continue => self.out.push_str("continue"),
            StmtKind::IncDec { target, inc } => {
                self.expr(target);
                self.out.push_str(if *inc { "++" } else { "--" });
            }
            StmtKind::Block(b) => self.block(b),
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Int(v) => {
                let _ = write!(self.out, "{v}");
            }
            ExprKind::Str(s) => {
                let _ = write!(self.out, "{s:?}");
            }
            ExprKind::Bool(b) => {
                let _ = write!(self.out, "{b}");
            }
            ExprKind::Nil => self.out.push_str("nil"),
            ExprKind::UnitLit => self.out.push_str("struct{}{}"),
            ExprKind::Ident(name) => self.out.push_str(name),
            ExprKind::Unary(op, inner) => {
                self.out.push_str(op.symbol());
                self.expr(inner);
            }
            ExprKind::Binary(op, l, r) => {
                self.child_expr(l, op.precedence(), false);
                let _ = write!(self.out, " {} ", op.symbol());
                self.child_expr(r, op.precedence(), true);
            }
            ExprKind::Recv(ch) => {
                self.out.push_str("<-");
                self.expr(ch);
            }
            ExprKind::Call { callee, args } => {
                self.expr(callee);
                self.call_args(args);
            }
            ExprKind::Method { recv, name, args } => {
                self.expr(recv);
                let _ = write!(self.out, ".{name}");
                self.call_args(args);
            }
            ExprKind::Field { obj, name } => {
                self.expr(obj);
                let _ = write!(self.out, ".{name}");
            }
            ExprKind::Make { ty, cap } => {
                self.out.push_str("make(");
                self.ty(ty);
                if let Some(cap) = cap {
                    self.out.push_str(", ");
                    self.expr(cap);
                }
                self.out.push(')');
            }
            ExprKind::Closure {
                params,
                results,
                body,
            } => {
                self.out.push_str("func");
                self.signature(params, results);
                self.out.push(' ');
                self.block(body);
            }
            ExprKind::Index { obj, index } => {
                self.expr(obj);
                self.out.push('[');
                self.expr(index);
                self.out.push(']');
            }
            ExprKind::Composite { ty, fields } => {
                self.ty(ty);
                self.out.push('{');
                for (i, (name, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    if let Some(name) = name {
                        let _ = write!(self.out, "{name}: ");
                    }
                    self.expr(value);
                }
                self.out.push('}');
            }
            ExprKind::Paren(inner) => {
                self.out.push('(');
                self.expr(inner);
                self.out.push(')');
            }
        }
    }

    /// Prints a binary operand, inserting parentheses when the child binds
    /// more loosely than the parent operator (so reparsing preserves shape).
    fn child_expr(&mut self, e: &Expr, parent_prec: u8, is_rhs: bool) {
        let needs_paren = match &e.kind {
            ExprKind::Binary(op, _, _) => {
                op.precedence() < parent_prec || (is_rhs && op.precedence() == parent_prec)
            }
            _ => false,
        };
        if needs_paren {
            self.out.push('(');
            self.expr(e);
            self.out.push(')');
        } else {
            self.expr(e);
        }
    }

    fn call_args(&mut self, args: &[Expr]) {
        self.out.push('(');
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.expr(a);
        }
        self.out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Parse, print, reparse, print again: the two prints must agree, and the
    /// two ASTs must agree modulo spans/ids.
    fn round_trip(src: &str) {
        let p1 = parse(src).unwrap_or_else(|e| panic!("initial parse: {e}"));
        let out1 = print_program(&p1);
        let p2 = parse(&out1).unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{out1}"));
        let out2 = print_program(&p2);
        assert_eq!(out1, out2, "printer must be a fixed point");
    }

    #[test]
    fn round_trips_figure1() {
        round_trip(
            r#"
func Exec(ctx context.Context) (string, error) {
    outDone := make(chan error)
    go func() {
        err := StdCopy()
        outDone <- err
    }()
    select {
    case err := <-outDone:
        if err != nil {
            return "", err
        }
    case <-ctx.Done():
        return "", ctx.Err()
    }
    return "ok", nil
}
"#,
        );
    }

    #[test]
    fn round_trips_control_flow() {
        round_trip(
            "func f(n int) int {\n s := 0\n for i := 0; i < n; i++ {\n  if i%2 == 0 {\n   s += i\n  } else if i > 5 {\n   s -= i\n  } else {\n   continue\n  }\n }\n return s\n}",
        );
    }

    #[test]
    fn round_trips_select_and_defer() {
        round_trip(
            "func f(ch chan int, stop chan struct{}) {\n defer close(ch)\n for {\n  select {\n  case ch <- 1:\n  case <-stop:\n   return\n  default:\n   break\n  }\n }\n}",
        );
    }

    #[test]
    fn round_trips_structs_and_composites() {
        round_trip(
            "type Res struct {\n ok bool\n n int\n}\nfunc f() Res {\n return Res{ok: true, n: 3}\n}",
        );
    }

    #[test]
    fn parens_preserved_for_precedence() {
        let src = "func f(a, b, c int) int {\n return (a + b) * c\n}";
        let prog = parse(src).unwrap();
        let out = print_program(&prog);
        assert!(out.contains("(a + b) * c"), "printed:\n{out}");
        round_trip(src);
    }

    #[test]
    fn print_stmt_for_reports() {
        let prog = parse("func f(ch chan int) {\n ch <- 42\n}").unwrap();
        let stmt = &prog.func("f").unwrap().body.stmts[0];
        assert_eq!(print_stmt(stmt), "ch <- 42");
    }

    #[test]
    fn print_type_formats() {
        assert_eq!(
            print_type(&Type::Chan(Box::new(Type::Unit))),
            "chan struct{}"
        );
        assert_eq!(print_type(&Type::Ptr(Box::new(Type::Mutex))), "*sync.Mutex");
        assert_eq!(
            print_type(&Type::Func(vec![Type::Int], vec![Type::Int, Type::Error])),
            "func(int) (int, error)"
        );
    }

    #[test]
    fn unit_literal_round_trips() {
        round_trip("func f(stop chan struct{}) {\n stop <- struct{}{}\n}");
    }

    #[test]
    fn waitgroup_and_context_round_trip() {
        round_trip(
            "func f() {\n var wg sync.WaitGroup\n wg.Add(1)\n ctx, cancel := context.WithCancel(context.Background())\n defer cancel()\n go func() {\n  wg.Done()\n }()\n wg.Wait()\n <-ctx.Done()\n}",
        );
    }
}
