//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace builds with no external dependencies, so the seeded
//! scheduler exploration ([`golite-sim`]), the corpus generator, and the
//! hand-rolled property tests all draw randomness from this SplitMix64
//! generator. It is *not* cryptographic; it only needs to be fast, seedable,
//! and stable across platforms so every run is reproducible.
//!
//! The API mirrors the small subset of `rand` the codebase used:
//!
//! ```
//! use prng::Prng;
//! let mut rng = Prng::seed_from_u64(42);
//! let i = rng.gen_range(0..10usize);
//! assert!(i < 10);
//! let coin = rng.gen_bool(0.5);
//! let _ = coin;
//! assert_eq!(Prng::seed_from_u64(42).next_u64(), Prng::seed_from_u64(42).next_u64());
//! ```

/// A SplitMix64 generator. Copy it freely; clones continue the sequence
/// independently from the point of the clone.
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a 64-bit seed (name kept from `rand`'s
    /// `SeedableRng` for familiarity).
    pub fn seed_from_u64(seed: u64) -> Prng {
        Prng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform value in the given (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.gen_range(0..items.len())]
    }
}

/// Ranges [`Prng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Prng) -> Self::Output;
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Prng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Prng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Prng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Prng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Prng::seed_from_u64(7);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Prng::seed_from_u64(7);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        let c = Prng::seed_from_u64(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Prng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let x = r.gen_range(0..1u64);
            assert_eq!(x, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Prng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn rough_uniformity() {
        let mut r = Prng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[r.gen_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }
}
